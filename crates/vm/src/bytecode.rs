//! Flat bytecode compiler: lowered [`Module`] → one linear instruction
//! array with resolved jump offsets.
//!
//! The compiler is a single forward pass over the lowered IR. Expressions
//! compile to postfix stack code, which reproduces the tree-walker's
//! evaluation order (and therefore its trap order and cycle-charging
//! order) by construction. The parity-critical encodings:
//!
//! - Every point where the tree-walker charges cycles has a corresponding
//!   instruction that charges the same [`crate::cost::CostModel`] field:
//!   `TickBranch` before `if`/ternary/logic conditions, `WhileHead`/
//!   `ForHead`/`DoHead` at loop heads (which also run the cycle-budget
//!   check, exactly where the tree-walker does), `Binary`/`Unary` carrying
//!   their [`CostKind`], and so on.
//! - The tree-walker checks pointer-ness of a base address *before*
//!   evaluating the next operand (`PtrAdd`, `PtrDiff`, `Mem` places).
//!   A `CheckPtr` instruction is emitted right after the base so a
//!   type-confusion trap fires at the identical program point.
//! - `break`/`continue`/`return` that cross memo/profile regions unwind
//!   them at compile time: the compiler tracks the statically enclosing
//!   regions and emits the matching `MemoExit*`/`ProfileExit` sequence,
//!   innermost first — the same order the tree-walker's `Flow` propagation
//!   visits them.
//! - A memo hit that restores a return value jumps to a per-memo stub
//!   that unwinds the *enclosing* regions and returns, mirroring
//!   `Flow::Return` propagation from `exec_memo`'s hit path.
//!
//! Memo and profile descriptors are not copied into the instruction
//! stream; instructions carry small ids into side tables of borrowed
//! [`LMemo`]/[`LProfile`] references.

use crate::cost::CostModel;
use crate::lower::{
    Coerce, CostKind, LCallee, LExpr, LMemo, LPlace, LProfile, LStmt, Module, WriteCost,
};
use minic::ast::{BinOp, UnOp};
use minic::sema::Builtin;

/// A fused leaf operand of [`Instr::BinaryFast`]: reading it cannot trap
/// and its access charge is folded into the fused instruction's cost.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastArg {
    /// Integer constant (charges nothing, like `PushI`).
    I(i64),
    /// Frame slot (its `var_access` charge is folded in).
    Local(u32),
}

/// One bytecode instruction. Jump operands are absolute indices into
/// [`BcModule::code`].
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// Push an integer constant.
    PushI(i64),
    /// Push a float constant.
    PushF(f64),
    /// Push a function reference.
    PushFn(u32),
    /// Push `Uninit` (missing return value).
    PushUninit,
    /// Discard the top of the operand stack (expression statements).
    Pop,
    /// Read a frame slot (charges `var_access`).
    ReadLocal(u32),
    /// Read a global cell (charges `mem_access`).
    ReadGlobal(u32),
    /// Pop an address, load through it (charges `mem_access`).
    ReadMem,
    /// Fused `PtrAdd` + `ReadMem`: pop index and base, load through
    /// `base + idx * stride`. `cost` pre-sums `int_alu + mem_access`;
    /// no observable point separates the two charges, and the computed
    /// address is statically a pointer.
    PtrAddRead {
        /// Element stride in words.
        stride: i64,
        /// Pre-resolved `int_alu + mem_access`.
        cost: u32,
    },
    /// Fully fused indexed load `base[idx]` where the base is the
    /// address of a frame or global cell and the index is a leaf:
    /// replaces `AddrLocal`/`AddrGlobal` + leaf + `PtrAdd` + `ReadMem`.
    /// `pre_cost` is charged before the index's integer conversion (the
    /// leaf's access charge), `post_cost` after it (`int_alu +
    /// mem_access`), so cycle totals at every trap point match the
    /// unfused sequence.
    ReadIdx {
        /// Base address is a global cell (else a frame slot).
        global: bool,
        /// Global address or frame offset.
        base: u32,
        /// Leaf index operand.
        idx: FastArg,
        /// Element stride in words.
        stride: i64,
        /// Charged before the index conversion (leaf access charge).
        pre_cost: u32,
        /// Charged after it (`int_alu + mem_access`).
        post_cost: u32,
    },
    /// Push the address of a frame cell.
    AddrLocal(u32),
    /// Push the address of a global cell.
    AddrGlobal(u32),
    /// Assert the top of stack is a pointer (normalizing `Int(0)` to the
    /// null pointer), trapping otherwise — the tree-walker's eager
    /// `.as_ptr()?` on base addresses.
    CheckPtr,
    /// Pop index and base, push `base + idx * stride` (charges `int_alu`).
    PtrAdd(i64),
    /// Pop two pointers, push `(a - b) / stride` (charges `int_alu`).
    PtrDiff(i64),
    /// Unary operator with its pre-resolved cycle cost.
    Unary(UnOp, u64),
    /// Binary operator with its pre-resolved cycle cost.
    Binary(BinOp, u64),
    /// Fused binary over two leaf operands: both operand charges and the
    /// operation charge are pre-summed into `cost`. Equivalent to the
    /// unfused sequence — no budget check or probe can observe the
    /// intermediate cycle counts, and leaf reads cannot trap.
    BinaryFast {
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: FastArg,
        /// Right operand.
        b: FastArg,
        /// Pre-resolved total cycle cost.
        cost: u64,
    },
    /// Pop a value, push its truthiness as `Int` (logic tail).
    Truthy,
    /// Charge a pre-resolved cycle cost (one `branch`, before
    /// conditions).
    Tick(u64),
    /// Short-circuit `&&`/`||`: pop the left value; if it decides the
    /// result, push it (as 0/1) and jump to `end`, else fall through to
    /// the right operand.
    ShortCircuit {
        /// true = `&&`, false = `||`.
        and: bool,
        /// Jump target when decided.
        end: u32,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy (ternary / `for` conditions).
    JumpIfFalse(u32),
    /// Pop; jump when truthy (`do..while` back edge).
    JumpIfTrue(u32),
    /// Fused `for`/ternary condition: `Tick(branch)`, [`Instr::BinaryFast`],
    /// and [`Instr::JumpIfFalse`] in one step. `cost` pre-sums the branch
    /// charge with the operand and operator charges — no budget check or
    /// probe can observe the intermediate counts, and leaf reads cannot
    /// trap, so trap and cycle order are unchanged.
    JumpIfFalseCmp {
        /// The comparison (any binary) operator.
        op: BinOp,
        /// Left operand.
        a: FastArg,
        /// Right operand.
        b: FastArg,
        /// Pre-resolved total cycle cost (branch + operands + op).
        cost: u32,
        /// Jump target when falsy.
        target: u32,
    },
    /// Fused `do..while` back edge: `Tick(branch)` + [`Instr::BinaryFast`]
    /// + [`Instr::JumpIfTrue`].
    JumpIfTrueCmp {
        /// The comparison (any binary) operator.
        op: BinOp,
        /// Left operand.
        a: FastArg,
        /// Right operand.
        b: FastArg,
        /// Pre-resolved total cycle cost (branch + operands + op).
        cost: u32,
        /// Jump target when truthy.
        target: u32,
    },
    /// `if` condition: pop, count taken/untaken, jump to `else_target`
    /// when untaken.
    BranchIf {
        /// Dense branch-counter pair index.
        branch_idx: u32,
        /// Jump target when the condition is false.
        else_target: u32,
    },
    /// Fused `if` condition: `Tick(branch)` + [`Instr::BinaryFast`] +
    /// [`Instr::BranchIf`].
    BranchIfCmp {
        /// The comparison (any binary) operator.
        op: BinOp,
        /// Left operand.
        a: FastArg,
        /// Right operand.
        b: FastArg,
        /// Pre-resolved total cycle cost (branch + operands + op).
        cost: u32,
        /// Dense branch-counter pair index.
        branch_idx: u32,
        /// Jump target when the condition is false.
        else_target: u32,
    },
    /// `while` head: cycle-budget check + pre-resolved
    /// `branch + loop_overhead`.
    WhileHead(u64),
    /// `while` condition outcome: pop; on true count the iteration and
    /// fall through, on false jump to `end`.
    LoopCond {
        /// Dense loop-counter index.
        loop_idx: u32,
        /// Jump target on loop exit.
        end: u32,
    },
    /// Fused `while` condition: [`Instr::BinaryFast`] +
    /// [`Instr::LoopCond`] (the branch charge stays in the preceding
    /// [`Instr::WhileHead`]).
    LoopCondCmp {
        /// The comparison (any binary) operator.
        op: BinOp,
        /// Left operand.
        a: FastArg,
        /// Right operand.
        b: FastArg,
        /// Pre-resolved total cycle cost (operands + op).
        cost: u32,
        /// Dense loop-counter index.
        loop_idx: u32,
        /// Jump target on loop exit.
        end: u32,
    },
    /// `for` head: cycle-budget check + pre-resolved `loop_overhead`.
    ForHead(u64),
    /// `do..while` head: cycle-budget check + iteration count +
    /// pre-resolved `loop_overhead`.
    DoHead {
        /// Dense loop-counter index.
        loop_idx: u32,
        /// Pre-resolved `loop_overhead`.
        cost: u64,
    },
    /// Count one iteration of loop `loop_idx` (`for` loops, after the
    /// condition passes).
    LoopCount(u32),
    /// Local declaration initializer: pop, coerce, charge `var_access`,
    /// store directly into the frame slot.
    DeclStore {
        /// Frame offset.
        slot: u32,
        /// Store coercion.
        coerce: Coerce,
    },
    /// Assignment: pop value then address; coerce, charge the write,
    /// store, push the stored value.
    Store {
        /// Store coercion.
        coerce: Coerce,
        /// Write cost class.
        write_cost: WriteCost,
    },
    /// Fused assignment to a frame slot (the address never goes through
    /// the operand stack). `keep` is false in expression-statement
    /// position, where the stored value would be popped immediately.
    StoreLocal {
        /// Frame offset.
        slot: u32,
        /// Store coercion.
        coerce: Coerce,
        /// Write cost class.
        write_cost: WriteCost,
        /// Push the stored value (expression position).
        keep: bool,
    },
    /// Compound-assignment prelude: pop the address, load the old value,
    /// push address back then the old value.
    LoadDupAddr,
    /// Compound-assignment finish: pop rhs, old, address; combine, charge,
    /// store, push the new value.
    AssignOpFin {
        /// The arithmetic operator.
        op: BinOp,
        /// Pre-resolved operation cycle cost.
        cost: u64,
        /// Store coercion.
        coerce: Coerce,
        /// `Some(stride)` for pointer stepping.
        ptr_stride: Option<i64>,
        /// Write cost class.
        write_cost: WriteCost,
    },
    /// `++`/`--`: pop the address, read-modify-write, push old (postfix)
    /// or new (prefix).
    IncDecFin {
        /// +1 or −1.
        delta: i64,
        /// Postfix yields the old value.
        post: bool,
        /// `Some(stride)` when stepping a pointer.
        ptr_stride: Option<i64>,
        /// Write cost class.
        write_cost: WriteCost,
    },
    /// Fused `++`/`--` of a frame slot (no address round-trip through the
    /// operand stack); otherwise identical to `IncDecFin`. `keep` is
    /// false in value-discarding position (expression statements, `for`
    /// steps), where the yielded value would be popped immediately.
    IncDecLocal {
        /// Frame offset.
        slot: u32,
        /// +1 or −1.
        delta: i64,
        /// Postfix yields the old value.
        post: bool,
        /// `Some(stride)` when stepping a pointer.
        ptr_stride: Option<i64>,
        /// Write cost class.
        write_cost: WriteCost,
        /// Push the yielded value (expression position).
        keep: bool,
    },
    /// Pop, apply a store coercion, push (call arguments, return values).
    CoerceVal(Coerce),
    /// Direct call: the callee's arguments are the top `params.len()`
    /// stack values.
    CallFunc(u32),
    /// Builtin call.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Argument count on the stack.
        nargs: u32,
    },
    /// Indirect call: pop the function value, then as `CallFunc`.
    CallIndirect(u32),
    /// Cast to int (charges `int_alu`).
    CastInt,
    /// Cast to float (charges `float_alu`).
    CastFloat,
    /// Pop the return value, pop the frame, resume the caller (or halt
    /// when the frame was `main`'s).
    Ret,
    /// Memo segment entry: probe the table (or forced-miss when
    /// bypassed). On a hit, restore outputs and jump to `hit_target`
    /// (pushing the memoized return value first when the segment
    /// memoizes one); on a miss/bypass, push a runtime region and fall
    /// through to the body.
    MemoEnter {
        /// Index into [`BcModule::memos`].
        id: u32,
        /// Jump target on a hit (the return stub, or past the exit).
        hit_target: u32,
    },
    /// Memo body fell through its end: read outputs, record (unless the
    /// segment memoizes a return value — then the body failed to return
    /// and nothing is recorded), pop the region.
    MemoExitNormal(u32),
    /// Memo region unwound by `return`: read outputs, append the return
    /// value (peeked from the stack) and record when the segment memoizes
    /// one, pop the region.
    MemoExitRet(u32),
    /// Memo region unwound by `break`/`continue`: read outputs (for trap
    /// parity), record nothing, pop the region.
    MemoExitBreak(u32),
    /// Profile probe entry: record the input value set and nesting, push
    /// a region with the entry cycle count.
    ProfileEnter(u32),
    /// Profile probe exit: accumulate body cycles, pop the region.
    ProfileExit(u32),
    /// Fused pair of adjacent *linear* instructions discovered by trace
    /// mining (the operand indexes `SpecCode::pairs`, see
    /// [`crate::specialize`]): executes both halves, then continues at
    /// `pc + 2`. The second instruction of the pair stays in place in the
    /// code array, so a jump that lands between the halves executes the
    /// tail alone — substitution never retargets jumps. Emitted and
    /// executed only by the specialized engine.
    Super2(u32),
    /// Push a value baked in at specialization time (a dominant memo
    /// input folded into a cloned segment body), charging exactly the
    /// access cost of the read it replaces. Emitted and executed only by
    /// the specialized engine.
    PushKnown {
        /// Raw value word (float bits when `float`, else the integer).
        w: u64,
        /// Interpret `w` as float bits.
        float: bool,
        /// The replaced read's pre-resolved charge.
        cost: u32,
    },
}

/// A compiled module: one flat code array plus per-function entry points
/// and side tables for memo/profile descriptors.
#[derive(Debug, Clone)]
pub(crate) struct BcModule<'m> {
    /// All functions' code, concatenated.
    pub(crate) code: Vec<Instr>,
    /// Entry pc per function (parallel to `Module::funcs`).
    pub(crate) entries: Vec<u32>,
    /// Memo descriptors referenced by `MemoEnter`/`MemoExit*` ids.
    pub(crate) memos: Vec<&'m LMemo>,
    /// Pre-resolved `memo_overhead(key_words, out_words)` per memo id.
    pub(crate) memo_cost: Vec<u64>,
    /// Profile descriptors referenced by `ProfileEnter`/`ProfileExit` ids.
    pub(crate) profiles: Vec<&'m LProfile>,
    /// Per memo id, the pc of its `MemoEnter` and of its
    /// `MemoExitNormal` — the body span `specialize` clones.
    pub(crate) memo_spans: Vec<(u32, u32)>,
}

/// Compiles a lowered module to flat bytecode. Cycle charges are
/// resolved against `cost` at compile time (the model is fixed for the
/// lifetime of a run), so the dispatch loop adds immediates instead of
/// re-classifying operations.
pub(crate) fn compile<'m>(module: &'m Module, cost: &CostModel) -> BcModule<'m> {
    let mut bc = BcModule {
        code: Vec::new(),
        entries: Vec::with_capacity(module.funcs.len()),
        memos: Vec::new(),
        memo_cost: Vec::new(),
        profiles: Vec::new(),
        memo_spans: Vec::new(),
    };
    let has_profiler = !module.profile_segments.is_empty();
    for func in &module.funcs {
        let entry = bc.code.len() as u32;
        bc.entries.push(entry);
        let mut cx = FnCx {
            bc: &mut bc,
            cost,
            loops: Vec::new(),
            regions: Vec::new(),
            has_profiler,
        };
        cx.block(&func.body);
        debug_assert!(cx.loops.is_empty(), "unterminated loop context");
        debug_assert!(cx.regions.is_empty(), "unterminated region context");
        // A body that falls off its end returns Uninit; using the value
        // traps, same as the tree-walker.
        cx.emit(Instr::PushUninit);
        cx.emit(Instr::Ret);
    }
    bc
}

/// Statically enclosing memo/profile region (for unwind emission).
#[derive(Debug, Clone, Copy)]
enum StaticRegion {
    Memo(u32),
    Profile(u32),
}

/// Per-loop compile context: where break/continue jumps get patched and
/// how many regions were open at loop entry.
struct LoopCx {
    region_depth: usize,
    break_fixups: Vec<usize>,
    continue_fixups: Vec<usize>,
}

struct FnCx<'a, 'm> {
    bc: &'a mut BcModule<'m>,
    cost: &'a CostModel,
    loops: Vec<LoopCx>,
    regions: Vec<StaticRegion>,
    has_profiler: bool,
}

/// Patches the jump operand of the instruction at `at`.
fn set_target(instr: &mut Instr, target: u32) {
    match instr {
        Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = target,
        Instr::JumpIfFalseCmp { target: t, .. } | Instr::JumpIfTrueCmp { target: t, .. } => {
            *t = target
        }
        Instr::ShortCircuit { end, .. }
        | Instr::LoopCond { end, .. }
        | Instr::LoopCondCmp { end, .. } => *end = target,
        Instr::BranchIf { else_target, .. } | Instr::BranchIfCmp { else_target, .. } => {
            *else_target = target
        }
        Instr::MemoEnter { hit_target, .. } => *hit_target = target,
        other => unreachable!("not a patchable jump: {other:?}"),
    }
}

impl<'m> FnCx<'_, 'm> {
    fn here(&self) -> u32 {
        self.bc.code.len() as u32
    }

    fn op_cost(&self, ck: CostKind) -> u64 {
        match ck {
            CostKind::IntAlu => self.cost.int_alu,
            CostKind::IntMul => self.cost.int_mul,
            CostKind::IntDiv => self.cost.int_div,
            CostKind::FloatAlu => self.cost.float_alu,
            CostKind::FloatMul => self.cost.float_mul,
            CostKind::FloatDiv => self.cost.float_div,
        }
    }

    /// Recognizes a leaf operand eligible for [`Instr::BinaryFast`],
    /// returning it with its evaluation charge.
    fn fast_arg(&self, e: &LExpr) -> Option<(FastArg, u64)> {
        match e {
            LExpr::ConstI(v) => Some((FastArg::I(*v), 0)),
            LExpr::ReadLocal(off) => Some((FastArg::Local(*off), self.cost.var_access)),
            _ => None,
        }
    }

    /// Recognizes a condition that is one binary over leaf operands,
    /// eligible for compare-and-branch fusion. Returns the operator, the
    /// operands, and the pre-summed evaluation charge (`extra` folds in
    /// the branch tick when the caller elides it).
    fn fuse_cond(&self, cond: &LExpr, extra: u64) -> Option<(BinOp, FastArg, FastArg, u32)> {
        if let LExpr::Binary(op, a, b, ck) = cond {
            if let (Some((fa, ca)), Some((fb, cb))) = (self.fast_arg(a), self.fast_arg(b)) {
                let cost = extra + ca + cb + self.op_cost(*ck);
                let cost = u32::try_from(cost).expect("fused condition cost fits in u32");
                return Some((*op, fa, fb, cost));
            }
        }
        None
    }

    /// Emits a `CheckPtr` for a base-address expression unless it
    /// statically evaluates to a `Ptr` value, on which `CheckPtr` charges
    /// nothing and can never trap.
    fn check_ptr(&mut self, base: &LExpr) {
        if !matches!(
            base,
            LExpr::AddrLocal(_) | LExpr::AddrGlobal(_) | LExpr::PtrAdd(..)
        ) {
            self.emit(Instr::CheckPtr);
        }
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.bc.code.push(i);
        self.bc.code.len() - 1
    }

    /// Patches the jump at `at` to land on the next emitted instruction.
    fn patch_here(&mut self, at: usize) {
        let target = self.here();
        set_target(&mut self.bc.code[at], target);
    }

    fn patch_to(&mut self, at: usize, target: u32) {
        set_target(&mut self.bc.code[at], target);
    }

    /// Emits region exits for a `break`/`continue` leaving every region
    /// opened inside the innermost loop, innermost region first — the
    /// order `Flow::Break`/`Flow::Continue` unwinds the tree-walker.
    fn emit_loop_unwind(&mut self, region_depth: usize) {
        let tail: Vec<StaticRegion> = self.regions[region_depth..].to_vec();
        for r in tail.into_iter().rev() {
            match r {
                StaticRegion::Memo(id) => self.emit(Instr::MemoExitBreak(id)),
                StaticRegion::Profile(id) => self.emit(Instr::ProfileExit(id)),
            };
        }
    }

    /// Emits region exits for a `return` leaving every open region of the
    /// current function, innermost first.
    fn emit_return_unwind(&mut self) {
        let tail: Vec<StaticRegion> = self.regions.clone();
        for r in tail.into_iter().rev() {
            match r {
                StaticRegion::Memo(id) => self.emit(Instr::MemoExitRet(id)),
                StaticRegion::Profile(id) => self.emit(Instr::ProfileExit(id)),
            };
        }
    }

    fn block(&mut self, stmts: &'m [LStmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    /// Compiles an expression in value-discarding position (expression
    /// statements, `for` steps): plain stores and `++`/`--` of locals
    /// fuse away the push+`Pop` round trip.
    fn expr_discard(&mut self, e: &'m LExpr) {
        match e {
            LExpr::Assign {
                place: LPlace::Local(slot),
                value,
                coerce,
                write_cost,
            } => {
                self.expr(value);
                self.emit(Instr::StoreLocal {
                    slot: *slot,
                    coerce: *coerce,
                    write_cost: *write_cost,
                    keep: false,
                });
            }
            LExpr::IncDec {
                place: LPlace::Local(slot),
                delta,
                post,
                ptr_stride,
                write_cost,
            } => {
                self.emit(Instr::IncDecLocal {
                    slot: *slot,
                    delta: *delta,
                    post: *post,
                    ptr_stride: *ptr_stride,
                    write_cost: *write_cost,
                    keep: false,
                });
            }
            _ => {
                self.expr(e);
                self.emit(Instr::Pop);
            }
        }
    }

    fn stmt(&mut self, s: &'m LStmt) {
        match s {
            LStmt::Expr(e) => self.expr_discard(e),
            LStmt::Decl { slot, init } => {
                if let Some((e, coerce)) = init {
                    self.expr(e);
                    self.emit(Instr::DeclStore {
                        slot: *slot,
                        coerce: *coerce,
                    });
                }
            }
            LStmt::If {
                cond,
                then_blk,
                else_blk,
                branch_idx,
            } => {
                let bi = if let Some((op, a, b, cost)) = self.fuse_cond(cond, self.cost.branch) {
                    self.emit(Instr::BranchIfCmp {
                        op,
                        a,
                        b,
                        cost,
                        branch_idx: *branch_idx,
                        else_target: 0,
                    })
                } else {
                    self.emit(Instr::Tick(self.cost.branch));
                    self.expr(cond);
                    self.emit(Instr::BranchIf {
                        branch_idx: *branch_idx,
                        else_target: 0,
                    })
                };
                self.block(then_blk);
                if else_blk.is_empty() {
                    self.patch_here(bi);
                } else {
                    let j = self.emit(Instr::Jump(0));
                    self.patch_here(bi);
                    self.block(else_blk);
                    self.patch_here(j);
                }
            }
            LStmt::While {
                cond,
                body,
                loop_idx,
            } => {
                let top = self.here();
                self.emit(Instr::WhileHead(self.cost.branch + self.cost.loop_overhead));
                let lc = if let Some((op, a, b, cost)) = self.fuse_cond(cond, 0) {
                    self.emit(Instr::LoopCondCmp {
                        op,
                        a,
                        b,
                        cost,
                        loop_idx: *loop_idx,
                        end: 0,
                    })
                } else {
                    self.expr(cond);
                    self.emit(Instr::LoopCond {
                        loop_idx: *loop_idx,
                        end: 0,
                    })
                };
                self.loops.push(LoopCx {
                    region_depth: self.regions.len(),
                    break_fixups: Vec::new(),
                    continue_fixups: Vec::new(),
                });
                self.block(body);
                self.emit(Instr::Jump(top));
                let lp = self.loops.pop().expect("loop context");
                let end = self.here();
                self.patch_to(lc, end);
                for f in lp.break_fixups {
                    self.patch_to(f, end);
                }
                // `continue` re-enters at the head (budget check + costs),
                // matching the tree-walker's next-iteration semantics.
                for f in lp.continue_fixups {
                    self.patch_to(f, top);
                }
            }
            LStmt::DoWhile {
                body,
                cond,
                loop_idx,
            } => {
                let top = self.here();
                self.emit(Instr::DoHead {
                    loop_idx: *loop_idx,
                    cost: self.cost.loop_overhead,
                });
                self.loops.push(LoopCx {
                    region_depth: self.regions.len(),
                    break_fixups: Vec::new(),
                    continue_fixups: Vec::new(),
                });
                self.block(body);
                let lp = self.loops.pop().expect("loop context");
                let cont = self.here();
                if let Some((op, a, b, cost)) = self.fuse_cond(cond, self.cost.branch) {
                    self.emit(Instr::JumpIfTrueCmp {
                        op,
                        a,
                        b,
                        cost,
                        target: top,
                    });
                } else {
                    self.emit(Instr::Tick(self.cost.branch));
                    self.expr(cond);
                    self.emit(Instr::JumpIfTrue(top));
                }
                let end = self.here();
                for f in lp.break_fixups {
                    self.patch_to(f, end);
                }
                for f in lp.continue_fixups {
                    self.patch_to(f, cont);
                }
            }
            LStmt::For {
                init,
                cond,
                step,
                body,
                loop_idx,
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                let top = self.here();
                self.emit(Instr::ForHead(self.cost.loop_overhead));
                let mut cond_fix = None;
                if let Some(cond) = cond {
                    cond_fix = Some(
                        if let Some((op, a, b, cost)) = self.fuse_cond(cond, self.cost.branch) {
                            self.emit(Instr::JumpIfFalseCmp {
                                op,
                                a,
                                b,
                                cost,
                                target: 0,
                            })
                        } else {
                            self.emit(Instr::Tick(self.cost.branch));
                            self.expr(cond);
                            self.emit(Instr::JumpIfFalse(0))
                        },
                    );
                }
                self.emit(Instr::LoopCount(*loop_idx));
                self.loops.push(LoopCx {
                    region_depth: self.regions.len(),
                    break_fixups: Vec::new(),
                    continue_fixups: Vec::new(),
                });
                self.block(body);
                let lp = self.loops.pop().expect("loop context");
                let cont = self.here();
                if let Some(step) = step {
                    self.expr_discard(step);
                }
                self.emit(Instr::Jump(top));
                let end = self.here();
                if let Some(cf) = cond_fix {
                    self.patch_to(cf, end);
                }
                for f in lp.break_fixups {
                    self.patch_to(f, end);
                }
                for f in lp.continue_fixups {
                    self.patch_to(f, cont);
                }
            }
            LStmt::Seq(stmts) => self.block(stmts),
            LStmt::Break => {
                let depth = self
                    .loops
                    .last()
                    .expect("break outside loop rejected by sema")
                    .region_depth;
                self.emit_loop_unwind(depth);
                let j = self.emit(Instr::Jump(0));
                self.loops
                    .last_mut()
                    .expect("loop context")
                    .break_fixups
                    .push(j);
            }
            LStmt::Continue => {
                let depth = self
                    .loops
                    .last()
                    .expect("continue outside loop rejected by sema")
                    .region_depth;
                self.emit_loop_unwind(depth);
                let j = self.emit(Instr::Jump(0));
                self.loops
                    .last_mut()
                    .expect("loop context")
                    .continue_fixups
                    .push(j);
            }
            LStmt::Return(v) => {
                match v {
                    None => {
                        self.emit(Instr::PushUninit);
                    }
                    Some((e, coerce)) => {
                        self.expr(e);
                        if *coerce != Coerce::None {
                            self.emit(Instr::CoerceVal(*coerce));
                        }
                    }
                }
                self.emit_return_unwind();
                self.emit(Instr::Ret);
            }
            LStmt::Memo(m) => self.memo(m),
            LStmt::Profile(p) => self.profile(p),
        }
    }

    fn memo(&mut self, m: &'m LMemo) {
        let id = self.bc.memos.len() as u32;
        self.bc.memos.push(m);
        self.bc.memo_cost.push(
            self.cost
                .memo_overhead(m.key_words as usize, m.out_words as usize),
        );
        let enter = self.emit(Instr::MemoEnter { id, hit_target: 0 });
        self.regions.push(StaticRegion::Memo(id));
        self.block(&m.body);
        self.regions.pop();
        let exit = self.here();
        self.emit(Instr::MemoExitNormal(id));
        self.bc.memo_spans.push((enter as u32, exit));
        if m.ret.is_some() {
            // A hit restores the return value onto the stack and jumps to
            // this stub, which unwinds the *enclosing* regions and
            // returns — `Flow::Return` propagation from the hit path.
            let skip = self.emit(Instr::Jump(0));
            let stub = self.here();
            self.emit_return_unwind();
            self.emit(Instr::Ret);
            self.patch_here(skip);
            self.patch_to(enter, stub);
        } else {
            self.patch_here(enter);
        }
    }

    fn profile(&mut self, p: &'m LProfile) {
        if !self.has_profiler {
            // No probes in the module: Profile statements cannot occur,
            // but lowering is defensive — run the body uninstrumented,
            // exactly as the tree-walker's `profiler.is_none()` path.
            self.block(&p.body);
            return;
        }
        let id = self.bc.profiles.len() as u32;
        self.bc.profiles.push(p);
        self.emit(Instr::ProfileEnter(id));
        self.regions.push(StaticRegion::Profile(id));
        self.block(&p.body);
        self.regions.pop();
        self.emit(Instr::ProfileExit(id));
    }

    fn place(&mut self, p: &'m LPlace) {
        match p {
            LPlace::Local(off) => {
                self.emit(Instr::AddrLocal(*off));
            }
            LPlace::Global(a) => {
                self.emit(Instr::AddrGlobal(*a));
            }
            LPlace::Mem(e) => {
                // The tree-walker resolves the address (and traps on a
                // non-pointer) before evaluating the stored value.
                self.expr(e);
                self.check_ptr(e);
            }
        }
    }

    fn expr(&mut self, e: &'m LExpr) {
        match e {
            LExpr::ConstI(v) => {
                self.emit(Instr::PushI(*v));
            }
            LExpr::ConstF(v) => {
                self.emit(Instr::PushF(*v));
            }
            LExpr::ConstFn(f) => {
                self.emit(Instr::PushFn(*f));
            }
            LExpr::ReadLocal(off) => {
                self.emit(Instr::ReadLocal(*off));
            }
            LExpr::ReadGlobal(a) => {
                self.emit(Instr::ReadGlobal(*a));
            }
            LExpr::ReadMem(addr) => {
                if let LExpr::PtrAdd(base, idx, stride) = &**addr {
                    let alu_mem = self.cost.int_alu + self.cost.mem_access;
                    let alu_mem = u32::try_from(alu_mem).expect("access cost fits in u32");
                    let static_base = match &**base {
                        LExpr::AddrGlobal(a) => Some((true, *a)),
                        LExpr::AddrLocal(off) => Some((false, *off)),
                        _ => None,
                    };
                    if let (Some((global, b)), Some((fi, ci))) = (static_base, self.fast_arg(idx)) {
                        self.emit(Instr::ReadIdx {
                            global,
                            base: b,
                            idx: fi,
                            stride: *stride,
                            pre_cost: u32::try_from(ci).expect("leaf cost fits in u32"),
                            post_cost: alu_mem,
                        });
                        return;
                    }
                    self.expr(base);
                    self.check_ptr(base);
                    self.expr(idx);
                    self.emit(Instr::PtrAddRead {
                        stride: *stride,
                        cost: alu_mem,
                    });
                    return;
                }
                self.expr(addr);
                self.emit(Instr::ReadMem);
            }
            LExpr::AddrLocal(off) => {
                self.emit(Instr::AddrLocal(*off));
            }
            LExpr::AddrGlobal(a) => {
                self.emit(Instr::AddrGlobal(*a));
            }
            LExpr::PtrAdd(base, idx, stride) => {
                self.expr(base);
                self.check_ptr(base);
                self.expr(idx);
                self.emit(Instr::PtrAdd(*stride));
            }
            LExpr::PtrDiff(a, b, stride) => {
                self.expr(a);
                self.check_ptr(a);
                self.expr(b);
                self.emit(Instr::PtrDiff(*stride));
            }
            LExpr::Unary(op, a, ck) => {
                self.expr(a);
                let c = self.op_cost(*ck);
                self.emit(Instr::Unary(*op, c));
            }
            LExpr::Binary(op, a, b, ck) => {
                if let (Some((fa, ca)), Some((fb, cb))) = (self.fast_arg(a), self.fast_arg(b)) {
                    let cost = ca + cb + self.op_cost(*ck);
                    self.emit(Instr::BinaryFast {
                        op: *op,
                        a: fa,
                        b: fb,
                        cost,
                    });
                    return;
                }
                self.expr(a);
                self.expr(b);
                let c = self.op_cost(*ck);
                self.emit(Instr::Binary(*op, c));
            }
            LExpr::Logic { and, a, b } => {
                self.emit(Instr::Tick(self.cost.branch));
                self.expr(a);
                let sc = self.emit(Instr::ShortCircuit { and: *and, end: 0 });
                self.expr(b);
                self.emit(Instr::Truthy);
                self.patch_here(sc);
            }
            LExpr::Ternary(c, t, f) => {
                let jf = if let Some((op, a, b, cost)) = self.fuse_cond(c, self.cost.branch) {
                    self.emit(Instr::JumpIfFalseCmp {
                        op,
                        a,
                        b,
                        cost,
                        target: 0,
                    })
                } else {
                    self.emit(Instr::Tick(self.cost.branch));
                    self.expr(c);
                    self.emit(Instr::JumpIfFalse(0))
                };
                self.expr(t);
                let j = self.emit(Instr::Jump(0));
                self.patch_here(jf);
                self.expr(f);
                self.patch_here(j);
            }
            LExpr::Assign {
                place,
                value,
                coerce,
                write_cost,
            } => {
                if let LPlace::Local(slot) = place {
                    self.expr(value);
                    self.emit(Instr::StoreLocal {
                        slot: *slot,
                        coerce: *coerce,
                        write_cost: *write_cost,
                        keep: true,
                    });
                    return;
                }
                self.place(place);
                self.expr(value);
                self.emit(Instr::Store {
                    coerce: *coerce,
                    write_cost: *write_cost,
                });
            }
            LExpr::AssignOp {
                op,
                place,
                value,
                cost,
                coerce,
                ptr_stride,
                write_cost,
            } => {
                self.place(place);
                self.emit(Instr::LoadDupAddr);
                self.expr(value);
                let c = self.op_cost(*cost);
                self.emit(Instr::AssignOpFin {
                    op: *op,
                    cost: c,
                    coerce: *coerce,
                    ptr_stride: *ptr_stride,
                    write_cost: *write_cost,
                });
            }
            LExpr::IncDec {
                place,
                delta,
                post,
                ptr_stride,
                write_cost,
            } => {
                if let LPlace::Local(slot) = place {
                    self.emit(Instr::IncDecLocal {
                        slot: *slot,
                        delta: *delta,
                        post: *post,
                        ptr_stride: *ptr_stride,
                        write_cost: *write_cost,
                        keep: true,
                    });
                    return;
                }
                self.place(place);
                self.emit(Instr::IncDecFin {
                    delta: *delta,
                    post: *post,
                    ptr_stride: *ptr_stride,
                    write_cost: *write_cost,
                });
            }
            LExpr::Call { callee, args } => {
                for (a, coerce) in args {
                    self.expr(a);
                    if *coerce != Coerce::None {
                        self.emit(Instr::CoerceVal(*coerce));
                    }
                }
                match callee {
                    LCallee::Func(fid) => {
                        self.emit(Instr::CallFunc(*fid));
                    }
                    LCallee::Builtin(b) => {
                        self.emit(Instr::CallBuiltin {
                            builtin: *b,
                            nargs: args.len() as u32,
                        });
                    }
                    LCallee::Ptr(e) => {
                        // The callee expression evaluates after the
                        // arguments, as in the tree-walker.
                        self.expr(e);
                        self.emit(Instr::CallIndirect(args.len() as u32));
                    }
                }
            }
            LExpr::CastInt(a) => {
                self.expr(a);
                self.emit(Instr::CastInt);
            }
            LExpr::CastFloat(a) => {
                self.expr(a);
                self.emit(Instr::CastFloat);
            }
        }
    }
}

/// Number of opcode kinds distinguished by [`op_kind`].
pub(crate) const OP_KINDS: usize = 56;

/// Dense opcode-kind code of an instruction, used as a dispatch-trace
/// index ([`crate::specialize::DispatchTrace`]). Operands are ignored:
/// trace mining generalizes over them.
pub(crate) fn op_kind(i: &Instr) -> u8 {
    match i {
        Instr::PushI(..) => 0,
        Instr::PushF(..) => 1,
        Instr::PushFn(..) => 2,
        Instr::PushUninit => 3,
        Instr::Pop => 4,
        Instr::ReadLocal(..) => 5,
        Instr::ReadGlobal(..) => 6,
        Instr::ReadMem => 7,
        Instr::PtrAddRead { .. } => 8,
        Instr::ReadIdx { .. } => 9,
        Instr::AddrLocal(..) => 10,
        Instr::AddrGlobal(..) => 11,
        Instr::CheckPtr => 12,
        Instr::PtrAdd(..) => 13,
        Instr::PtrDiff(..) => 14,
        Instr::Unary(..) => 15,
        Instr::Binary(..) => 16,
        Instr::BinaryFast { .. } => 17,
        Instr::Truthy => 18,
        Instr::Tick(..) => 19,
        Instr::ShortCircuit { .. } => 20,
        Instr::Jump(..) => 21,
        Instr::JumpIfFalse(..) => 22,
        Instr::JumpIfTrue(..) => 23,
        Instr::JumpIfFalseCmp { .. } => 24,
        Instr::JumpIfTrueCmp { .. } => 25,
        Instr::BranchIf { .. } => 26,
        Instr::BranchIfCmp { .. } => 27,
        Instr::WhileHead(..) => 28,
        Instr::LoopCond { .. } => 29,
        Instr::LoopCondCmp { .. } => 30,
        Instr::ForHead(..) => 31,
        Instr::DoHead { .. } => 32,
        Instr::LoopCount(..) => 33,
        Instr::DeclStore { .. } => 34,
        Instr::Store { .. } => 35,
        Instr::StoreLocal { .. } => 36,
        Instr::LoadDupAddr => 37,
        Instr::AssignOpFin { .. } => 38,
        Instr::IncDecFin { .. } => 39,
        Instr::IncDecLocal { .. } => 40,
        Instr::CoerceVal(..) => 41,
        Instr::CallFunc(..) => 42,
        Instr::CallBuiltin { .. } => 43,
        Instr::CallIndirect(..) => 44,
        Instr::CastInt => 45,
        Instr::CastFloat => 46,
        Instr::Ret => 47,
        Instr::MemoEnter { .. } => 48,
        Instr::MemoExitNormal(..) => 49,
        Instr::MemoExitRet(..) => 50,
        Instr::MemoExitBreak(..) => 51,
        Instr::ProfileEnter(..) => 52,
        Instr::ProfileExit(..) => 53,
        Instr::Super2(..) => 54,
        Instr::PushKnown { .. } => 55,
    }
}

/// Whether an instruction is *linear*: it advances `pc` by exactly one,
/// never transfers control, and never opens or closes a call frame or a
/// memo/profile region. Two adjacent linear instructions execute
/// observably identically inside one [`Instr::Super2`] dispatch — cycle
/// charges, budget checks, dependency notes, and traps all land in the
/// same order. Loop heads qualify (their budget check runs at the same
/// point either way); anything that touches `pc`, frames, or regions
/// does not.
pub(crate) fn is_linear(i: &Instr) -> bool {
    matches!(
        i,
        Instr::PushI(..)
            | Instr::PushF(..)
            | Instr::PushFn(..)
            | Instr::PushUninit
            | Instr::Pop
            | Instr::ReadLocal(..)
            | Instr::ReadGlobal(..)
            | Instr::ReadMem
            | Instr::PtrAddRead { .. }
            | Instr::ReadIdx { .. }
            | Instr::AddrLocal(..)
            | Instr::AddrGlobal(..)
            | Instr::CheckPtr
            | Instr::PtrAdd(..)
            | Instr::PtrDiff(..)
            | Instr::Unary(..)
            | Instr::Binary(..)
            | Instr::BinaryFast { .. }
            | Instr::Truthy
            | Instr::Tick(..)
            | Instr::WhileHead(..)
            | Instr::ForHead(..)
            | Instr::DoHead { .. }
            | Instr::LoopCount(..)
            | Instr::DeclStore { .. }
            | Instr::Store { .. }
            | Instr::StoreLocal { .. }
            | Instr::LoadDupAddr
            | Instr::AssignOpFin { .. }
            | Instr::IncDecFin { .. }
            | Instr::IncDecLocal { .. }
            | Instr::CoerceVal(..)
            | Instr::CastInt
            | Instr::CastFloat
            | Instr::PushKnown { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_src(src: &str) -> (Module, usize) {
        let checked = minic::compile(src).expect("compiles");
        let module = crate::lower::lower(&checked);
        let n = compile(&module, &CostModel::o0()).code.len();
        (module, n)
    }

    #[test]
    fn straight_line_compiles_compactly() {
        let (_, n) = compile_src("int main() { return 1 + 2; }");
        // PushI, PushI, Binary, Ret (+ implicit PushUninit/Ret tail).
        assert!(n <= 8, "unexpected code size {n}");
    }

    #[test]
    fn jumps_are_patched() {
        let checked = minic::compile(
            "int main() { int i; int s; s = 0; for (i = 0; i < 3; i++) { s = s + i; } return s; }",
        )
        .expect("compiles");
        let module = crate::lower::lower(&checked);
        let bc = compile(&module, &CostModel::o0());
        for (i, ins) in bc.code.iter().enumerate() {
            let t = match ins {
                Instr::Jump(t)
                | Instr::JumpIfFalse(t)
                | Instr::JumpIfTrue(t)
                | Instr::JumpIfFalseCmp { target: t, .. }
                | Instr::JumpIfTrueCmp { target: t, .. }
                | Instr::ShortCircuit { end: t, .. }
                | Instr::LoopCond { end: t, .. }
                | Instr::LoopCondCmp { end: t, .. }
                | Instr::BranchIf { else_target: t, .. }
                | Instr::BranchIfCmp { else_target: t, .. }
                | Instr::MemoEnter { hit_target: t, .. } => *t,
                _ => continue,
            };
            assert!(
                (t as usize) < bc.code.len(),
                "instr {i} jumps out of bounds to {t}"
            );
        }
    }

    #[test]
    fn every_function_gets_an_entry() {
        let checked = minic::compile(
            "int add(int a, int b) { return a + b; } int main() { return add(40, 2); }",
        )
        .expect("compiles");
        let module = crate::lower::lower(&checked);
        let bc = compile(&module, &CostModel::o0());
        assert_eq!(bc.entries.len(), module.funcs.len());
        let mut sorted = bc.entries.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), bc.entries.len(), "entries must be distinct");
    }
}

#[cfg(test)]
mod size_probe {
    /// Dispatch reads one `Instr` per step; keeping the enum within 48
    /// bytes (the widest pre-fusion variant) bounds cache traffic in the
    /// hot loop. Fused variants use `u32` costs to stay inside this.
    #[test]
    fn instr_stays_compact() {
        assert!(
            std::mem::size_of::<super::Instr>() <= 48,
            "Instr grew past 48 bytes: {}",
            std::mem::size_of::<super::Instr>()
        );
    }
}
