//! # vm — a profiling interpreter standing in for the paper's iPAQ
//!
//! Part of the `compreuse` workspace (a reproduction of Ding & Li,
//! *A Compiler Scheme for Reusing Intermediate Computation Results*,
//! CGO 2004). The paper compiles C with GCC and measures wall-clock time
//! and battery current on a Compaq iPAQ 3650; this crate replaces that
//! testbed with a deterministic interpreter:
//!
//! - [`mod@lower`] turns a checked MiniC program into a resolved VM IR;
//! - [`interp`] executes it under a [`cost::CostModel`] (`O0`/`O3` stand-ins,
//!   206 MHz SA-1110 clock) and an [`energy::EnergyModel`] (the paper's
//!   `E = V·I·t` with a DRAM term for table traffic);
//! - `Profile` statements collect value-set profiles ([`profile`]);
//! - `Memo` statements execute against `memo-runtime` tables, charging the
//!   paper's hashing overhead on hit and miss alike.
//!
//! ```
//! let checked = minic::compile("int main() { print(1 + 2); return 0; }").unwrap();
//! let module = vm::lower::lower(&checked);
//! let out = vm::run(&module, vm::RunConfig::default())?;
//! assert_eq!(out.output_text(), "3");
//! assert!(out.cycles > 0);
//! # Ok::<(), vm::value::Trap>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bytecode;
pub mod cost;
pub mod deps_rt;
pub mod energy;
pub mod interp;
mod interp_bc;
mod interp_spec;
pub mod lower;
pub mod profile;
pub mod specialize;
pub mod tables;
pub mod value;

pub use cost::{CostModel, OptLevel};
pub use energy::EnergyModel;
pub use interp::{run, Engine, Outcome, RunConfig};
pub use lower::{lower, Module};
pub use memo_runtime::L1Cache;
pub use profile::{ProfileData, SegProfile};
pub use specialize::{DispatchTrace, DominantKey, SpecPlan, SpecStats};
pub use tables::TableHandles;
pub use value::{PrintVal, Trap, Value};

/// A module compiled to bytecode once, reusable across many runs.
///
/// [`run`] compiles the bytecode on every call; a request-serving worker
/// instead compiles each program once with [`precompile`] (or
/// [`precompile_spec`] for the specialized tier) and executes requests
/// with [`run_precompiled`], keeping the per-request path free of
/// compilation work.
#[derive(Debug)]
pub struct Precompiled<'m>(PreInner<'m>);

#[derive(Debug)]
enum PreInner<'m> {
    /// Generic bytecode: runs on the bytecode dispatch loop.
    Bc(bytecode::BcModule<'m>),
    /// Plan-specialized code: runs on the specialized dispatch loop.
    Spec(specialize::SpecCode<'m>),
}

/// Compiles `module` to bytecode under `cost` (cycle charges are baked in
/// as immediates, so later runs must use the same cost model).
pub fn precompile<'m>(module: &'m Module, cost: &CostModel) -> Precompiled<'m> {
    Precompiled(PreInner::Bc(bytecode::compile(module, cost)))
}

/// Compiles `module` to bytecode and applies the specialization `plan`
/// (mined by the pipeline; see [`specialize::SpecPlan`]). The result runs
/// on the specialized tier, with observables identical to [`precompile`]'s.
pub fn precompile_spec<'m>(
    module: &'m Module,
    cost: &CostModel,
    plan: &specialize::SpecPlan,
) -> Precompiled<'m> {
    let bc = bytecode::compile(module, cost);
    Precompiled(PreInner::Spec(specialize::build(&bc, plan, cost)))
}

/// Runs a precompiled module on the engine it was compiled for
/// (`config.engine` is ignored). `config.cost` must be the model the
/// bytecode was compiled under, or cycle accounting will mix two models.
///
/// # Errors
///
/// Returns a [`Trap`] if the program faults, as [`run`] does.
pub fn run_precompiled(
    module: &Module,
    pre: &Precompiled<'_>,
    config: RunConfig,
) -> Result<Outcome, Trap> {
    match &pre.0 {
        PreInner::Bc(bc) => interp_bc::run_bc(module, bc, config),
        PreInner::Spec(spec) => interp_spec::run_spec(module, spec, config),
    }
}

/// Compiles MiniC source and runs it in one step (convenience for tests
/// and examples).
///
/// # Errors
///
/// Returns front-end diagnostics or a runtime [`Trap`] as a rendered
/// string.
///
/// # Examples
///
/// ```
/// let out = vm::compile_and_run(
///     "int main() { print(6 * 7); return 0; }",
///     vm::RunConfig::default(),
/// )?;
/// assert_eq!(out.output_text(), "42");
/// # Ok::<(), String>(())
/// ```
pub fn compile_and_run(source: &str, config: RunConfig) -> Result<Outcome, String> {
    let checked = minic::compile(source)?;
    let module = lower(&checked);
    run(&module, config).map_err(|t| format!("runtime trap: {t}"))
}
