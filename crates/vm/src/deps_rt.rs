//! Run-time dependency tracking for incremental (red/green) reuse.
//!
//! The VM tracks every *tracked global region* named as a memo dependency
//! at two granularities:
//!
//! - **Chained chunk epochs.** Each region is split into at most 64
//!   power-of-two chunks. Every write of value `v` to a tracked cell `a`
//!   folds `(a, v)` into that chunk's 64-bit chain:
//!   `epoch[chunk] = mix(epoch[chunk], a, v)`. Two chain values are equal
//!   (except with hash-collision probability) only when the chunk saw the
//!   same write history — so equality witnesses unchanged contents without
//!   re-reading the region. Crucially the chain is a pure function of the
//!   executed write sequence: two runs (or two workers) of the same
//!   program replay identical chains, which is what makes fingerprints
//!   recorded by one run validatable by another.
//! - **Read masks.** While a fingerprinted memo body is recording, every
//!   read of a tracked cell ORs its chunk bit into the *frame* pushed for
//!   that recording. Frames nest (a recording segment may call another);
//!   a read lands in every active frame. Pushing and popping a frame is
//!   allocation-free after warm-up: the frame arena is a flat `Vec`
//!   truncated on pop.
//!
//! An entry's fingerprint is `(mask, sum)` per dependency region, where
//! `sum` is the wrapping sum of the masked chunks' chain values at record
//! time. Validation recomputes the sum over the stored mask against the
//! *current* epochs: equal means every chunk the recorded execution read
//! is provably (whp) unchanged, and the entry is promoted green.
//!
//! Epoch maintenance and read masking are **not** charged modelled
//! cycles: the scheme models them as micro-ops folded into the store/load
//! the hardware already pays for, mirroring how the paper charges table
//! probes but not ordinary cache maintenance. Validation itself *is*
//! charged (see [`crate::CostModel::fp_probe_cost`]).

use crate::lower::{DepRegion, LDep, Module};
use crate::value::Value;

/// Untracked marker in the cell→region map.
const UNTRACKED: u16 = u16::MAX;

/// Folds one write into a chunk's epoch chain (splitmix64-style mixer).
#[inline]
fn mix(h: u64, addr: u64, bits: u64) -> u64 {
    let mut x =
        h ^ addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ bits.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic 64-bit encoding of a stored cell value for the chain.
#[inline]
fn value_bits(v: Value) -> u64 {
    match v {
        Value::Int(i) => i as u64,
        Value::Float(f) => f.to_bits(),
        Value::Ptr(p) => 0x5050_0000_0000_0000 ^ p as u64,
        Value::Func(f) => 0xFCFC_0000_0000_0000 ^ f as u64,
        Value::Uninit => 0x0101_0101_0101_0101,
    }
}

/// Per-machine dependency tracking state: chunk epoch chains for every
/// tracked region plus the stack of active recording frames.
#[derive(Debug, Clone)]
pub struct DepRuntime {
    regions: Vec<DepRegion>,
    /// Global cell address → region index (or [`UNTRACKED`]). Covers the
    /// global segment only; frame cells are above it and never tracked.
    cell_region: Vec<u16>,
    /// Flat chunk epochs, indexed by `region.epoch_off + chunk`.
    epochs: Vec<u64>,
    /// Frame arena: `regions.len()` mask words per active frame.
    frames: Vec<u64>,
}

impl DepRuntime {
    /// Builds the tracking state for `module` (empty and free when the
    /// module has no dep regions).
    pub fn new(module: &Module) -> Self {
        let regions = module.dep_regions.clone();
        let mut cell_region = Vec::new();
        if !regions.is_empty() {
            cell_region = vec![UNTRACKED; module.globals.len()];
            for (i, r) in regions.iter().enumerate() {
                for a in r.addr..r.addr + r.words {
                    cell_region[a as usize] = i as u16;
                }
            }
        }
        DepRuntime {
            regions,
            cell_region,
            epochs: vec![0; module.dep_epoch_words as usize],
            frames: Vec::new(),
        }
    }

    /// Whether any recording frame is active (gates read masking).
    #[inline]
    pub fn active(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Folds a write of `v` to cell `addr` into its chunk's epoch chain.
    #[inline]
    pub fn note_write(&mut self, addr: usize, v: Value) {
        if addr >= self.cell_region.len() {
            return;
        }
        let r = self.cell_region[addr];
        if r == UNTRACKED {
            return;
        }
        let region = &self.regions[r as usize];
        let chunk = (addr - region.addr as usize) >> region.shift;
        let e = &mut self.epochs[region.epoch_off as usize + chunk];
        *e = mix(*e, addr as u64, value_bits(v));
    }

    /// ORs the chunk bit of a read of cell `addr` into every active
    /// recording frame. Call only while [`DepRuntime::active`].
    #[inline]
    pub fn note_read(&mut self, addr: usize) {
        if addr >= self.cell_region.len() {
            return;
        }
        let r = self.cell_region[addr];
        if r == UNTRACKED {
            return;
        }
        let region = &self.regions[r as usize];
        let bit = 1u64 << ((addr - region.addr as usize) >> region.shift);
        let stride = self.regions.len();
        let mut at = r as usize;
        while at < self.frames.len() {
            self.frames[at] |= bit;
            at += stride;
        }
    }

    /// Pushes a fresh recording frame (one mask word per region).
    pub fn push_frame(&mut self) {
        self.frames
            .resize(self.frames.len() + self.regions.len(), 0);
    }

    /// Pops the innermost frame, discarding its masks (taken on exits
    /// that record nothing, e.g. `break` unwinds).
    pub fn pop_frame(&mut self) {
        let n = self.frames.len().saturating_sub(self.regions.len());
        self.frames.truncate(n);
    }

    /// Pops the innermost frame and appends the fingerprint for `deps` to
    /// `out`: per dependency, the region's read mask and the wrapping sum
    /// of the masked chunks' current epoch chains.
    pub fn pop_frame_build_fp(&mut self, deps: &[LDep], out: &mut Vec<u64>) {
        let base = self.frames.len() - self.regions.len();
        for d in deps {
            let mask = self.frames[base + d.region as usize];
            out.push(mask);
            out.push(self.masked_sum(d.region, mask));
        }
        self.frames.truncate(base);
    }

    /// Conservatively marks every chunk of each dep region as read in all
    /// active frames. Used when a *nested* memo hit restores a recorded
    /// result mid-recording: the enclosing recording inherits the full
    /// static footprint of the nested segment instead of its (unknown)
    /// dynamic read set — over-approximation is sound, it can only turn
    /// future greens stale, never the reverse.
    pub fn note_nested_hit(&mut self, deps: &[LDep]) {
        let stride = self.regions.len();
        for d in deps {
            let region = &self.regions[d.region as usize];
            let mask = if region.chunks == 64 {
                u64::MAX
            } else {
                (1u64 << region.chunks) - 1
            };
            let mut at = d.region as usize;
            while at < self.frames.len() {
                self.frames[at] |= mask;
                at += stride;
            }
        }
    }

    /// Validates a stored fingerprint against the current epoch chains:
    /// `true` iff every dependency's masked chunk-epoch sum still matches.
    pub fn validate(&self, deps: &[LDep], fp: &[u64]) -> bool {
        if fp.len() != 2 * deps.len() {
            return false;
        }
        for (i, d) in deps.iter().enumerate() {
            let mask = fp[2 * i];
            if self.masked_sum(d.region, mask) != fp[2 * i + 1] {
                return false;
            }
        }
        true
    }

    fn masked_sum(&self, region: u32, mask: u64) -> u64 {
        let r = &self.regions[region as usize];
        let base = r.epoch_off as usize;
        let mut rest = mask;
        let mut sum = 0u64;
        while rest != 0 {
            let c = rest.trailing_zeros() as usize;
            sum = sum.wrapping_add(self.epochs[base + c]);
            rest &= rest - 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_with_region(addr: u32, words: u32) -> Module {
        let dep = minic::ast::MemoDep {
            name: "r".into(),
            words: words as usize,
            mutable: true,
        };
        let shift = dep.chunk_shift();
        let chunks = dep.chunk_count() as u32;
        Module {
            funcs: Vec::new(),
            main: 0,
            globals: vec![Value::Int(0); (addr + words) as usize],
            loop_origins: Vec::new(),
            branch_origins: Vec::new(),
            profile_segments: Vec::new(),
            table_count: 0,
            dep_regions: vec![DepRegion {
                addr,
                words,
                shift,
                chunks,
                epoch_off: 0,
            }],
            dep_epoch_words: chunks,
        }
    }

    #[test]
    fn board_sized_region_uses_eight_cell_chunks() {
        let m = module_with_region(1, 361);
        assert_eq!(m.dep_regions[0].shift, 3);
        assert_eq!(m.dep_regions[0].chunks, 46);
    }

    #[test]
    fn recorded_fingerprint_validates_until_a_masked_chunk_changes() {
        let m = module_with_region(1, 64);
        let mut rt = DepRuntime::new(&m);
        let deps = [LDep {
            region: 0,
            mutable: true,
        }];

        rt.push_frame();
        rt.note_read(5);
        rt.note_read(6);
        let mut fp = Vec::new();
        rt.pop_frame_build_fp(&deps, &mut fp);
        assert_eq!(fp.len(), 2);
        assert!(rt.validate(&deps, &fp));

        // A write outside the read cells (same region, different chunk
        // for shift 0) goes stale only if it lands in a masked chunk.
        rt.note_write(40, Value::Int(7));
        assert!(rt.validate(&deps, &fp), "unread chunk writes stay green");
        rt.note_write(5, Value::Int(7));
        assert!(!rt.validate(&deps, &fp), "masked chunk write goes stale");
    }

    #[test]
    fn rewriting_the_same_value_still_changes_the_chain() {
        // The chain witnesses write *history*, not content snapshots: a
        // redundant store is indistinguishable from a flip-and-restore
        // pair without reading memory, so both go stale (conservative).
        let m = module_with_region(1, 16);
        let mut rt = DepRuntime::new(&m);
        let deps = [LDep {
            region: 0,
            mutable: true,
        }];
        rt.push_frame();
        rt.note_read(3);
        let mut fp = Vec::new();
        rt.pop_frame_build_fp(&deps, &mut fp);
        rt.note_write(3, Value::Int(0));
        assert!(!rt.validate(&deps, &fp));
    }

    #[test]
    fn nested_frames_each_collect_reads() {
        let m = module_with_region(1, 64);
        let mut rt = DepRuntime::new(&m);
        let deps = [LDep {
            region: 0,
            mutable: true,
        }];
        rt.push_frame();
        rt.note_read(2);
        rt.push_frame();
        rt.note_read(10);
        let (mut inner, mut outer) = (Vec::new(), Vec::new());
        rt.pop_frame_build_fp(&deps, &mut inner);
        rt.pop_frame_build_fp(&deps, &mut outer);
        assert_eq!(inner[0], 1 << 9, "inner mask sees only the inner read");
        assert_eq!(outer[0], (1 << 1) | (1 << 9), "outer mask sees both");
    }

    #[test]
    fn nested_hits_taint_conservatively() {
        let m = module_with_region(1, 361);
        let mut rt = DepRuntime::new(&m);
        let deps = [LDep {
            region: 0,
            mutable: true,
        }];
        rt.push_frame();
        rt.note_nested_hit(&deps);
        let mut fp = Vec::new();
        rt.pop_frame_build_fp(&deps, &mut fp);
        assert_eq!(fp[0], (1u64 << 46) - 1, "all 46 chunks masked");
    }

    #[test]
    fn identical_write_sequences_replay_identical_chains() {
        let m = module_with_region(1, 32);
        let mut a = DepRuntime::new(&m);
        let mut b = DepRuntime::new(&m);
        for i in 1..20 {
            a.note_write(i, Value::Int(i as i64 * 3));
            b.note_write(i, Value::Int(i as i64 * 3));
        }
        a.push_frame();
        for i in 1..20 {
            a.note_read(i);
        }
        let mut fp = Vec::new();
        a.pop_frame_build_fp(
            &[LDep {
                region: 0,
                mutable: true,
            }],
            &mut fp,
        );
        // b (a different "worker") validates a's fingerprint.
        assert!(b.validate(
            &[LDep {
                region: 0,
                mutable: true,
            }],
            &fp
        ));
    }

    #[test]
    fn untracked_and_out_of_range_cells_are_ignored() {
        let m = module_with_region(4, 8);
        let mut rt = DepRuntime::new(&m);
        rt.push_frame();
        rt.note_read(1); // below the region: untracked
        rt.note_write(1, Value::Int(9));
        rt.note_read(10_000); // beyond the globals: a frame cell
        rt.note_write(10_000, Value::Int(9));
        let mut fp = Vec::new();
        rt.pop_frame_build_fp(
            &[LDep {
                region: 0,
                mutable: false,
            }],
            &mut fp,
        );
        assert_eq!(fp, vec![0, 0]);
    }
}
