//! Table-handle indirection: which reuse store an engine probes.
//!
//! Both engines access memo tables exclusively through [`TableHandles`],
//! so a run can probe either its own private [`MemoTable`]s (the paper's
//! per-process scheme, returned in the [`crate::Outcome`]) or a shared
//! [`ShardedTable`] store owned by a service and outliving the run.
//!
//! The two paths differ in one deliberate way: the VM-level bypassed-table
//! fast path (skip the key build when the whole table is bypassed) only
//! exists for private tables. A shared store's guard state lives *per
//! shard*, and the shard is unknown until the key is built, so
//! [`TableHandles::state`] reports `Active` for shared handles and a
//! bypassed shard still answers its forced miss inside `lookup`. Program
//! results are unaffected (bypass never changes outputs); only the cycle
//! ledger differs, which is part of the documented store-dependent set
//! (DESIGN.md §8e).
//!
//! Shared probes (`lookup` and the red/green `lookup_dep`) resolve on
//! the store's optimistic lock-free path when the shard is stable: a
//! seqlock version check brackets a copied-out candidate entry, and a
//! green promotion re-checks the version *after* the validator runs, so
//! the engines can never serve — or mark green — a torn entry
//! (DESIGN.md §8h). The VM needs no awareness of this: the handle
//! contract (same answers as a private probe, store-dependent cycle
//! ledger aside) is unchanged, and contention shows up only in the
//! store's `optimistic_hits`/`optimistic_retries` statistics.

use std::sync::Arc;

use memo_runtime::{FpValidator, L1Cache, MemoTable, ShardedTable, TableState};

/// The set of reuse tables a run probes, indexed by the module's table ids.
#[derive(Debug)]
pub enum TableHandles {
    /// Run-private tables, moved into the [`crate::Outcome`] afterwards.
    Private(Vec<MemoTable>),
    /// A shared concurrent store; statistics stay in the store.
    Shared(Arc<Vec<ShardedTable>>),
    /// A shared store fronted by run-private L1 caches (DESIGN.md §8i):
    /// each probe of a fingerprint-free segment tries the direct-mapped
    /// L1 first and falls through to the sharded L2; repeated L2 hits
    /// promote the entry. Fingerprinted segments and forced-red probes
    /// always route to the L2, so the red/green contract is unchanged.
    Tiered {
        /// Per-table L1 caches, returned in the [`crate::Outcome`].
        l1: Vec<L1Cache>,
        /// The shared L2 store, as in [`TableHandles::Shared`].
        l2: Arc<Vec<ShardedTable>>,
    },
}

/// Resolves a run's table configuration to its handles, checking the
/// module's table-count requirement (shared setup for both engines).
pub(crate) fn take_handles(
    tables: Vec<MemoTable>,
    shared: Option<Arc<Vec<ShardedTable>>>,
    l1: Option<Vec<L1Cache>>,
    table_count: usize,
) -> TableHandles {
    let handles = match (shared, l1) {
        (Some(store), Some(l1)) => {
            assert_eq!(
                l1.len(),
                store.len(),
                "one L1 cache per shared table is required"
            );
            TableHandles::Tiered { l1, l2: store }
        }
        (Some(store), None) => TableHandles::Shared(store),
        (None, l1) => {
            assert!(l1.is_none(), "an L1 tier requires a shared L2 store");
            TableHandles::Private(tables)
        }
    };
    assert!(
        handles.len() >= table_count,
        "module expects {} memo tables, got {}",
        table_count,
        handles.len()
    );
    handles
}

impl TableHandles {
    /// Number of tables available.
    pub fn len(&self) -> usize {
        match self {
            TableHandles::Private(t) => t.len(),
            TableHandles::Shared(t) => t.len(),
            TableHandles::Tiered { l2, .. } => l2.len(),
        }
    }

    /// Whether no tables are available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Guard state used for the VM-level bypass fast path. Shared handles
    /// always report `Active`: the shard (and so its guard state) is only
    /// known after the key is built.
    pub(crate) fn state(&self, idx: usize) -> TableState {
        match self {
            TableHandles::Private(t) => t[idx].state(),
            TableHandles::Shared(_) | TableHandles::Tiered { .. } => TableState::Active,
        }
    }

    /// Looks up `key` for segment `slot` in table `idx`.
    pub(crate) fn lookup(
        &mut self,
        idx: usize,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
    ) -> bool {
        match self {
            TableHandles::Private(t) => t[idx].lookup(slot, key, out),
            TableHandles::Shared(t) => t[idx].lookup(slot, key, out),
            TableHandles::Tiered { l1, l2 } => {
                if l1[idx].cacheable(slot) {
                    if l1[idx].probe(slot, key, out) {
                        return true;
                    }
                    let hit = l2[idx].lookup(slot, key, out);
                    if hit {
                        l1[idx].note_l2_hit(slot, key, out);
                    }
                    hit
                } else {
                    l2[idx].lookup(slot, key, out)
                }
            }
        }
    }

    /// Dependency-validating lookup (red/green probe path); see
    /// [`MemoTable::lookup_dep`] for the green/validator contract.
    pub(crate) fn lookup_dep(
        &mut self,
        idx: usize,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        validate: FpValidator,
    ) -> bool {
        match self {
            TableHandles::Private(t) => t[idx].lookup_dep(slot, key, out, green, validate),
            TableHandles::Shared(t) => t[idx].lookup_dep(slot, key, out, green, validate),
            TableHandles::Tiered { l1, l2 } => {
                // A forced-red probe (green, no validator) must answer
                // miss even for a resident entry — only the L2 implements
                // that rule, so the L1 may not short-circuit it.
                let forced_red = green && validate.is_none();
                if forced_red || !l1[idx].cacheable(slot) {
                    return l2[idx].lookup_dep(slot, key, out, green, validate);
                }
                if l1[idx].probe(slot, key, out) {
                    return true;
                }
                let hit = l2[idx].lookup_dep(slot, key, out, green, validate);
                if hit {
                    l1[idx].note_l2_hit(slot, key, out);
                }
                hit
            }
        }
    }

    /// Records `outputs` plus a dependency fingerprint (`&[]` for
    /// exact-match entries).
    pub(crate) fn record_dep(
        &mut self,
        idx: usize,
        slot: usize,
        key: &[u64],
        outputs: &[u64],
        fp: &[u64],
    ) {
        match self {
            TableHandles::Private(t) => t[idx].record_dep(slot, key, outputs, fp),
            TableHandles::Shared(t) => t[idx].record_dep(slot, key, outputs, fp),
            TableHandles::Tiered { l1, l2 } => {
                l2[idx].record_dep(slot, key, outputs, fp);
                if fp.is_empty() && l1[idx].cacheable(slot) {
                    l1[idx].write_through(slot, key, outputs);
                }
            }
        }
    }

    /// Decomposes the handles into the run-private pieces returned in the
    /// [`crate::Outcome`]: private tables (empty for shared stores — their
    /// statistics live in the store) and the L1 tier (present only for
    /// [`TableHandles::Tiered`] runs).
    pub(crate) fn into_parts(self) -> (Vec<MemoTable>, Option<Vec<L1Cache>>) {
        match self {
            TableHandles::Private(t) => (t, None),
            TableHandles::Shared(_) => (Vec::new(), None),
            TableHandles::Tiered { l1, .. } => (Vec::new(), Some(l1)),
        }
    }
}
