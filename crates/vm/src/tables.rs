//! Table-handle indirection: which reuse store an engine probes.
//!
//! Both engines access memo tables exclusively through [`TableHandles`],
//! so a run can probe either its own private [`MemoTable`]s (the paper's
//! per-process scheme, returned in the [`crate::Outcome`]) or a shared
//! [`ShardedTable`] store owned by a service and outliving the run.
//!
//! The two paths differ in one deliberate way: the VM-level bypassed-table
//! fast path (skip the key build when the whole table is bypassed) only
//! exists for private tables. A shared store's guard state lives *per
//! shard*, and the shard is unknown until the key is built, so
//! [`TableHandles::state`] reports `Active` for shared handles and a
//! bypassed shard still answers its forced miss inside `lookup`. Program
//! results are unaffected (bypass never changes outputs); only the cycle
//! ledger differs, which is part of the documented store-dependent set
//! (DESIGN.md §8e).
//!
//! Shared probes (`lookup` and the red/green `lookup_dep`) resolve on
//! the store's optimistic lock-free path when the shard is stable: a
//! seqlock version check brackets a copied-out candidate entry, and a
//! green promotion re-checks the version *after* the validator runs, so
//! the engines can never serve — or mark green — a torn entry
//! (DESIGN.md §8h). The VM needs no awareness of this: the handle
//! contract (same answers as a private probe, store-dependent cycle
//! ledger aside) is unchanged, and contention shows up only in the
//! store's `optimistic_hits`/`optimistic_retries` statistics.

use std::sync::Arc;

use memo_runtime::{FpValidator, MemoTable, ShardedTable, TableState};

/// The set of reuse tables a run probes, indexed by the module's table ids.
#[derive(Debug)]
pub enum TableHandles {
    /// Run-private tables, moved into the [`crate::Outcome`] afterwards.
    Private(Vec<MemoTable>),
    /// A shared concurrent store; statistics stay in the store.
    Shared(Arc<Vec<ShardedTable>>),
}

/// Resolves a run's table configuration to its handles, checking the
/// module's table-count requirement (shared setup for both engines).
pub(crate) fn take_handles(
    tables: Vec<MemoTable>,
    shared: Option<Arc<Vec<ShardedTable>>>,
    table_count: usize,
) -> TableHandles {
    let handles = match shared {
        Some(store) => TableHandles::Shared(store),
        None => TableHandles::Private(tables),
    };
    assert!(
        handles.len() >= table_count,
        "module expects {} memo tables, got {}",
        table_count,
        handles.len()
    );
    handles
}

impl TableHandles {
    /// Number of tables available.
    pub fn len(&self) -> usize {
        match self {
            TableHandles::Private(t) => t.len(),
            TableHandles::Shared(t) => t.len(),
        }
    }

    /// Whether no tables are available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Guard state used for the VM-level bypass fast path. Shared handles
    /// always report `Active`: the shard (and so its guard state) is only
    /// known after the key is built.
    pub(crate) fn state(&self, idx: usize) -> TableState {
        match self {
            TableHandles::Private(t) => t[idx].state(),
            TableHandles::Shared(_) => TableState::Active,
        }
    }

    /// Looks up `key` for segment `slot` in table `idx`.
    pub(crate) fn lookup(
        &mut self,
        idx: usize,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
    ) -> bool {
        match self {
            TableHandles::Private(t) => t[idx].lookup(slot, key, out),
            TableHandles::Shared(t) => t[idx].lookup(slot, key, out),
        }
    }

    /// Dependency-validating lookup (red/green probe path); see
    /// [`MemoTable::lookup_dep`] for the green/validator contract.
    pub(crate) fn lookup_dep(
        &mut self,
        idx: usize,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        validate: FpValidator,
    ) -> bool {
        match self {
            TableHandles::Private(t) => t[idx].lookup_dep(slot, key, out, green, validate),
            TableHandles::Shared(t) => t[idx].lookup_dep(slot, key, out, green, validate),
        }
    }

    /// Records `outputs` plus a dependency fingerprint (`&[]` for
    /// exact-match entries).
    pub(crate) fn record_dep(
        &mut self,
        idx: usize,
        slot: usize,
        key: &[u64],
        outputs: &[u64],
        fp: &[u64],
    ) {
        match self {
            TableHandles::Private(t) => t[idx].record_dep(slot, key, outputs, fp),
            TableHandles::Shared(t) => t[idx].record_dep(slot, key, outputs, fp),
        }
    }

    /// The private tables, for the [`crate::Outcome`]; empty for shared
    /// stores (their statistics live in the store, not the run).
    pub(crate) fn into_tables(self) -> Vec<MemoTable> {
        match self {
            TableHandles::Private(t) => t,
            TableHandles::Shared(_) => Vec::new(),
        }
    }
}
