//! Profile-guided trace specialization (the third execution tier).
//!
//! The paper's §2.4 specializes code against the input values that
//! dominate a segment's profile. This module carries that idea into the
//! bytecode engine in two steps:
//!
//! 1. **Trace mining.** A profiling run on the generic bytecode engine
//!    records a [`DispatchTrace`] — dynamic counts of adjacent opcode
//!    *kind* pairs (see [`RunConfig::record_trace`]). [`DispatchTrace::top_pairs`]
//!    ranks the recurring pairs; these replace the hand-picked
//!    superinstruction set with discovered ones.
//! 2. **Plan application.** [`SpecPlan`] names the mined hot pairs plus
//!    the dominant key per hot memo segment (mined from the value-set
//!    profiles the pipeline already collects). The `build` pass — run
//!    once per module before execution — substitutes [`Instr::Super2`]
//!    fusions program-wide and clones each planned segment body with the
//!    dominant inputs folded in as immediates, guarded by an exact key
//!    comparison at `MemoEnter` that *deopts* to the generic body on
//!    mismatch.
//!
//! The contract (DESIGN.md §8j): the specialized engine's observables —
//! modelled cycles, energy, table traffic, dependency fingerprints,
//! profile data, and printed output — are bit-for-bit identical to the
//! other two engines. Fusion is legal only between *linear*
//! instructions (no observable point separates their charges); folding
//! preserves each replaced read's charge as an immediate; the guard is
//! host-side only and charges zero modelled cycles either way.
//!
//! [`RunConfig::record_trace`]: crate::interp::RunConfig::record_trace
//! [`Instr::Super2`]: crate::bytecode::Instr::Super2

use crate::bytecode::{is_linear, op_kind, BcModule, FastArg, Instr, OP_KINDS};
use crate::cost::CostModel;
use crate::interp::binary_value;
use crate::lower::{Coerce, LMemo, OpLoc, WriteCost};
use crate::value::Value;
use minic::ast::BinOp;

// ---------------------------------------------------------------------
// Dispatch traces
// ---------------------------------------------------------------------

/// Recording budget for a [`DispatchTrace`]: dispatches beyond this are
/// not recorded (see [`DispatchTrace::saturated`]). Deterministic — the
/// same program and input always record the same prefix.
const TRACE_DISPATCH_CAP: u64 = 8_000_000;

/// Dynamic counts of adjacent opcode-kind pairs, recorded by the generic
/// bytecode engine when [`crate::RunConfig::record_trace`] is set. Kind
/// codes are opaque (an internal opcode classification); they only need
/// to round-trip into [`SpecPlan::hot_pairs`].
#[derive(Debug, Clone)]
pub struct DispatchTrace {
    counts: Vec<u64>,
    prev: u8,
    total: u64,
}

impl Default for DispatchTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl DispatchTrace {
    /// An empty trace.
    pub fn new() -> Self {
        DispatchTrace {
            counts: vec![0; OP_KINDS * OP_KINDS],
            prev: 0,
            total: 0,
        }
    }

    /// Records one dispatch of kind `k` (pairing it with the previous
    /// dispatch). One L1-resident array increment — cheap enough for a
    /// profiling run.
    #[inline]
    pub(crate) fn step(&mut self, k: u8) {
        self.counts[self.prev as usize * OP_KINDS + k as usize] += 1;
        self.prev = k;
        self.total += 1;
    }

    /// Total dispatches recorded.
    pub fn dispatches(&self) -> u64 {
        self.total
    }

    /// Whether the recording budget is spent. The pair mix of a
    /// steady-state dispatch loop saturates within the first few million
    /// dispatches, so the recorder stops paying its per-dispatch
    /// increment after [`TRACE_DISPATCH_CAP`] and the profiling run
    /// proceeds at the generic engine's speed.
    pub fn saturated(&self) -> bool {
        self.total >= TRACE_DISPATCH_CAP
    }

    /// Dynamic occurrences of the adjacent pair `(a, b)`.
    pub fn pair_count(&self, a: u8, b: u8) -> u64 {
        self.counts[a as usize * OP_KINDS + b as usize]
    }

    /// The `max_pairs` most frequent adjacent pairs with at least
    /// `min_count` dynamic occurrences, hottest first (ties broken by
    /// kind code, so mining is deterministic).
    pub fn top_pairs(&self, max_pairs: usize, min_count: u64) -> Vec<(u8, u8)> {
        let mut ranked: Vec<(u64, u8, u8)> = Vec::new();
        for a in 0..OP_KINDS {
            for b in 0..OP_KINDS {
                let n = self.counts[a * OP_KINDS + b];
                if n >= min_count {
                    ranked.push((n, a as u8, b as u8));
                }
            }
        }
        ranked.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
        ranked
            .into_iter()
            .take(max_pairs)
            .map(|(_, a, b)| (a, b))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Specialization plans
// ---------------------------------------------------------------------

/// The dominant key of one memo segment, addressed by its table
/// placement (`(table, slot)` is unique per transformed segment and
/// stable across lowering orders).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominantKey {
    /// Runtime table index of the segment.
    pub table: u32,
    /// Slot within the (possibly merged) table.
    pub slot: u32,
    /// The dominant key words, in memo-key layout (the value-set
    /// profiles record exactly this layout).
    pub key: Vec<u64>,
}

/// A mined specialization plan: which instruction pairs to fuse
/// program-wide and which segment bodies to clone against their
/// dominant inputs. An empty plan is legal (the specialized engine then
/// behaves exactly like the generic bytecode engine).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecPlan {
    /// Opcode-kind pairs worth fusing, from [`DispatchTrace::top_pairs`].
    pub hot_pairs: Vec<(u8, u8)>,
    /// Dominant keys of the top-k hottest profiled segments.
    pub dominants: Vec<DominantKey>,
}

/// Counters the specialized engine reports in
/// [`crate::Outcome::spec`]. Host-side observability only — none of
/// these affect modelled cycles or table state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Static count of `Super2` fusions applied to the module.
    pub fused_sites: u64,
    /// Static count of specialized segment-body clones built.
    pub cloned_segments: u64,
    /// Guard evaluations (table misses at a guarded `MemoEnter`).
    pub guard_probes: u64,
    /// Guards that matched — the specialized clone ran.
    pub guard_hits: u64,
    /// Guards that mismatched — fell back to the generic body
    /// (exactly once per missed probe).
    pub deopts: u64,
}

// ---------------------------------------------------------------------
// Plan application
// ---------------------------------------------------------------------

/// A guarded segment: at a table miss on `MemoEnter` at `enter_pc`, a
/// built key equal to `key` (with every folded input type-checked
/// against its baked value class) jumps to the clone at `target`;
/// anything else falls through to the generic body.
#[derive(Debug, Clone)]
pub(crate) struct SpecGuard {
    /// The original `MemoEnter` pc this guard applies at (a cloned
    /// nested `MemoEnter` sits at a different pc and takes the generic
    /// path).
    pub(crate) enter_pc: u32,
    /// Baked dominant key words.
    pub(crate) key: Vec<u64>,
    /// Frame offsets of folded inputs with their float-ness: the guard
    /// verifies the live value class, because an integer key word is
    /// bit-identical to a pointer's (folding a pointer as an integer
    /// immediate would change semantics).
    pub(crate) folds: Vec<(u32, bool)>,
    /// Clone entry pc.
    pub(crate) target: u32,
}

/// A module with a [`SpecPlan`] applied: transformed code (fusions
/// substituted in place, specialized clones appended), the fused pair
/// bodies, and the per-memo guards.
#[derive(Debug, Clone)]
pub(crate) struct SpecCode<'m> {
    pub(crate) bc: BcModule<'m>,
    pub(crate) pairs: Vec<PairCode>,
    pub(crate) guards: Vec<Option<SpecGuard>>,
    pub(crate) fused: u64,
    pub(crate) cloned: u64,
}

/// One fused pair, pre-combined at build time. The hottest mined shapes
/// get dedicated variants that elide the intermediate stack round-trip
/// and the second dispatch; everything else executes both halves
/// generically. Every variant performs the same operations in the same
/// order as its unfused halves — cycle charges, traps, dependency notes,
/// and counter updates are bit-identical (`tick` is a pure counter add
/// with no checkpoint between the halves, and the operand stack between
/// two linear instructions is unobservable).
#[derive(Debug, Clone)]
pub(crate) enum PairCode {
    /// `PushI(v)` + `Binary(op, c)` — the constant is the rhs.
    PushIBinary { v: i64, op: BinOp, c: u64 },
    /// `Binary(op, c)` + `PushI(v)`.
    BinaryPushI { op: BinOp, c: u64, v: i64 },
    /// `Binary(op1, c1)` + `Binary(op2, c2)` — the first result is the
    /// second's rhs.
    BinaryBinary {
        op1: BinOp,
        c1: u64,
        op2: BinOp,
        c2: u64,
    },
    /// `Binary(op, c)` + `StoreLocal` — the result is stored directly.
    BinaryStore {
        op: BinOp,
        c: u64,
        slot: u32,
        coerce: Coerce,
        write_cost: WriteCost,
        keep: bool,
    },
    /// `BinaryFast` + `Binary(op2, c2)` — the fast result is the rhs.
    FastBinary {
        op1: BinOp,
        a: FastArg,
        b: FastArg,
        c1: u64,
        op2: BinOp,
        c2: u64,
    },
    /// `BinaryFast` + `StoreLocal` — the fast result is stored directly.
    FastStore {
        op: BinOp,
        a: FastArg,
        b: FastArg,
        c: u64,
        slot: u32,
        coerce: Coerce,
        write_cost: WriteCost,
        keep: bool,
    },
    /// `ReadLocal(off)` + `Binary(op, c)` — the slot value is the rhs.
    ReadBinary { off: u32, op: BinOp, c: u64 },
    /// `ReadLocal(off)` + `BinaryFast` (operands off-stack, two pushes).
    ReadFast {
        off: u32,
        op: BinOp,
        a: FastArg,
        b: FastArg,
        c: u64,
    },
    /// `BinaryFast` + `ReadLocal(off)`.
    FastRead {
        op: BinOp,
        a: FastArg,
        b: FastArg,
        c: u64,
        off: u32,
    },
    /// `LoopCount(loop_idx)` + `ReadLocal(off)`.
    CountRead { loop_idx: u32, off: u32 },
    /// Any other linear pair: both halves executed generically.
    Generic([Instr; 2]),
}

/// Pre-combines a fused pair into its [`PairCode`].
fn combine(a: &Instr, b: &Instr) -> PairCode {
    match (a, b) {
        (Instr::PushI(v), Instr::Binary(op, c)) => PairCode::PushIBinary {
            v: *v,
            op: *op,
            c: *c,
        },
        (Instr::Binary(op, c), Instr::PushI(v)) => PairCode::BinaryPushI {
            op: *op,
            c: *c,
            v: *v,
        },
        (Instr::Binary(op1, c1), Instr::Binary(op2, c2)) => PairCode::BinaryBinary {
            op1: *op1,
            c1: *c1,
            op2: *op2,
            c2: *c2,
        },
        (
            Instr::Binary(op, c),
            Instr::StoreLocal {
                slot,
                coerce,
                write_cost,
                keep,
            },
        ) => PairCode::BinaryStore {
            op: *op,
            c: *c,
            slot: *slot,
            coerce: *coerce,
            write_cost: *write_cost,
            keep: *keep,
        },
        (
            Instr::BinaryFast {
                op: op1,
                a,
                b,
                cost,
            },
            Instr::Binary(op2, c2),
        ) => PairCode::FastBinary {
            op1: *op1,
            a: *a,
            b: *b,
            c1: *cost,
            op2: *op2,
            c2: *c2,
        },
        (
            Instr::BinaryFast { op, a, b, cost },
            Instr::StoreLocal {
                slot,
                coerce,
                write_cost,
                keep,
            },
        ) => PairCode::FastStore {
            op: *op,
            a: *a,
            b: *b,
            c: *cost,
            slot: *slot,
            coerce: *coerce,
            write_cost: *write_cost,
            keep: *keep,
        },
        (Instr::ReadLocal(off), Instr::Binary(op, c)) => PairCode::ReadBinary {
            off: *off,
            op: *op,
            c: *c,
        },
        (Instr::ReadLocal(off), Instr::BinaryFast { op, a, b, cost }) => PairCode::ReadFast {
            off: *off,
            op: *op,
            a: *a,
            b: *b,
            c: *cost,
        },
        (Instr::BinaryFast { op, a, b, cost }, Instr::ReadLocal(off)) => PairCode::FastRead {
            op: *op,
            a: *a,
            b: *b,
            c: *cost,
            off: *off,
        },
        (Instr::LoopCount(loop_idx), Instr::ReadLocal(off)) => PairCode::CountRead {
            loop_idx: *loop_idx,
            off: *off,
        },
        _ => PairCode::Generic([a.clone(), b.clone()]),
    }
}

/// One foldable input: a single-word frame-slot operand whose slot is
/// never written inside the segment body and never has its address
/// taken anywhere in the module.
struct Fold {
    off: u32,
    val: u64,
    float: bool,
}

/// Clone bodies are capped so a pathological segment cannot double the
/// code array.
const MAX_CLONE_LEN: u32 = 4096;

/// Applies `plan` to a compiled module. Pure function of its inputs —
/// building twice yields identical code, so precompiled specialized
/// modules are shareable across runs.
pub(crate) fn build<'m>(bc: &BcModule<'m>, plan: &SpecPlan, cost: &CostModel) -> SpecCode<'m> {
    let mut nbc = bc.clone();
    let mut guards: Vec<Option<SpecGuard>> = vec![None; bc.memos.len()];
    let mut cloned = 0u64;

    // Frame slots whose address is ever taken: a pointer may alias them,
    // so their reads can never be folded (conservative, module-wide).
    let addr_taken: std::collections::HashSet<u32> = bc
        .code
        .iter()
        .filter_map(|i| match i {
            Instr::AddrLocal(off) => Some(*off),
            _ => None,
        })
        .collect();

    for (id, m) in bc.memos.iter().enumerate() {
        let Some(dom) = plan
            .dominants
            .iter()
            .find(|d| d.table == m.table && d.slot == m.slot)
        else {
            continue;
        };
        if dom.key.len() != m.key_words as usize {
            continue; // stale plan for a different key layout
        }
        let (enter, exit) = bc.memo_spans[id];
        let base = enter + 1;
        if exit < base || exit - base >= MAX_CLONE_LEN {
            continue;
        }
        let folds = foldable_inputs(bc, m, &dom.key, (base, exit), &addr_taken);
        if folds.is_empty() {
            continue;
        }
        let target = nbc.code.len() as u32;
        for pc in base..=exit {
            let mut ins = bc.code[pc as usize].clone();
            remap_into_clone(&mut ins, base, exit, target);
            fold_instr(&mut ins, &folds, cost);
            nbc.code.push(ins);
        }
        // The cloned MemoExitNormal falls through here; resume the
        // generic code right after the original exit.
        nbc.code.push(Instr::Jump(exit + 1));
        guards[id] = Some(SpecGuard {
            enter_pc: enter,
            key: dom.key.clone(),
            folds: folds.iter().map(|f| (f.off, f.float)).collect(),
            target,
        });
        cloned += 1;
    }

    // Program-wide pair fusion, clones included. Replacing the first
    // half in place and keeping the second half keeps every jump target
    // valid: landing on the pair head executes both halves, landing on
    // the tail executes it alone.
    let hot: std::collections::HashSet<(u8, u8)> = plan.hot_pairs.iter().copied().collect();
    let mut pairs: Vec<PairCode> = Vec::new();
    let mut fused = 0u64;
    if !hot.is_empty() {
        let mut i = 0usize;
        while i + 1 < nbc.code.len() {
            let a = &nbc.code[i];
            let b = &nbc.code[i + 1];
            if is_linear(a) && is_linear(b) && hot.contains(&(op_kind(a), op_kind(b))) {
                // Fuse only shapes with a pre-combined fast path: a
                // `Generic` pair would execute through an extra match
                // plus two calls — strictly slower than leaving the two
                // instructions in the main dispatch loop.
                match combine(a, b) {
                    PairCode::Generic(_) => i += 1,
                    pair => {
                        nbc.code[i] = Instr::Super2(pairs.len() as u32);
                        pairs.push(pair);
                        fused += 1;
                        i += 2;
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    SpecCode {
        bc: nbc,
        pairs,
        guards,
        fused,
        cloned,
    }
}

/// The inputs of `m` that may be folded to immediates inside the clone,
/// with their baked values from the dominant key.
fn foldable_inputs(
    bc: &BcModule<'_>,
    m: &LMemo,
    key: &[u64],
    span: (u32, u32),
    addr_taken: &std::collections::HashSet<u32>,
) -> Vec<Fold> {
    let mut pos = 0usize;
    let mut folds = Vec::new();
    for op in &m.inputs {
        let words = op.words as usize;
        if let OpLoc::Local(off) = op.loc {
            if words == 1 && !addr_taken.contains(&off) && !written_in_span(bc, span, off) {
                folds.push(Fold {
                    off,
                    val: key[pos],
                    float: op.is_float,
                });
            }
        }
        pos += words;
    }
    folds
}

/// Whether the body span writes frame slot `off` directly (pointer
/// writes are excluded by the module-wide address-taken screen).
fn written_in_span(bc: &BcModule<'_>, (base, exit): (u32, u32), off: u32) -> bool {
    bc.code[base as usize..=exit as usize].iter().any(|i| {
        matches!(
            i,
            Instr::DeclStore { slot, .. }
                | Instr::StoreLocal { slot, .. }
                | Instr::IncDecLocal { slot, .. }
            if *slot == off
        )
    })
}

/// Rewrites absolute jump targets that point inside the cloned span to
/// the clone (`break`/`return` unwinds that leave the span keep their
/// original targets — exiting the clone into generic code is legal
/// because folded slots hold exactly their baked values).
fn remap_into_clone(ins: &mut Instr, base: u32, exit: u32, target: u32) {
    let map = |t: &mut u32| {
        if *t >= base && *t <= exit {
            *t = target + (*t - base);
        }
    };
    match ins {
        Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => map(t),
        Instr::JumpIfFalseCmp { target: t, .. } | Instr::JumpIfTrueCmp { target: t, .. } => map(t),
        Instr::ShortCircuit { end, .. }
        | Instr::LoopCond { end, .. }
        | Instr::LoopCondCmp { end, .. } => map(end),
        Instr::BranchIf { else_target, .. } | Instr::BranchIfCmp { else_target, .. } => {
            map(else_target)
        }
        Instr::MemoEnter { hit_target, .. } => map(hit_target),
        _ => {}
    }
}

/// Folds reads of baked inputs into immediates, preserving every cycle
/// charge: `ReadLocal` becomes [`Instr::PushKnown`] carrying the same
/// `var_access` charge, and fused-leaf substitutions keep the
/// compile-time pre-summed cost fields untouched.
fn fold_instr(ins: &mut Instr, folds: &[Fold], cost: &CostModel) {
    let find = |off: u32| folds.iter().find(|f| f.off == off);
    let subst = |a: &mut FastArg| {
        if let FastArg::Local(off) = a {
            if let Some(f) = find(*off) {
                if !f.float {
                    *a = FastArg::I(f.val as i64);
                }
            }
        }
    };
    match ins {
        Instr::ReadLocal(off) => {
            if let Some(f) = find(*off) {
                *ins = Instr::PushKnown {
                    w: f.val,
                    float: f.float,
                    cost: u32::try_from(cost.var_access).unwrap_or(u32::MAX),
                };
            }
        }
        Instr::BinaryFast { op, a, b, cost: c } => {
            subst(a);
            subst(b);
            if let (FastArg::I(x), FastArg::I(y)) = (&*a, &*b) {
                // Constant-fold only when the generic engine would
                // neither trap nor leave the integer domain.
                if let (Ok(Value::Int(r)), Ok(cc)) = (
                    binary_value(*op, Value::Int(*x), Value::Int(*y)),
                    u32::try_from(*c),
                ) {
                    *ins = Instr::PushKnown {
                        w: r as u64,
                        float: false,
                        cost: cc,
                    };
                }
            }
        }
        Instr::JumpIfFalseCmp { a, b, .. }
        | Instr::JumpIfTrueCmp { a, b, .. }
        | Instr::BranchIfCmp { a, b, .. }
        | Instr::LoopCondCmp { a, b, .. } => {
            subst(a);
            subst(b);
        }
        Instr::ReadIdx { idx, .. } => subst(idx),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_mines_nothing() {
        let t = DispatchTrace::new();
        assert_eq!(t.dispatches(), 0);
        assert!(t.top_pairs(16, 1).is_empty());
    }

    #[test]
    fn top_pairs_ranks_by_count_deterministically() {
        let mut t = DispatchTrace::new();
        // 5 -> 17 twice, 17 -> 36 once.
        t.step(5);
        t.step(17);
        t.step(36);
        t.step(5);
        t.step(17);
        let pairs = t.top_pairs(2, 1);
        assert_eq!(pairs[0], (5, 17));
        assert_eq!(pairs.len(), 2);
        assert!(t.top_pairs(16, 2) == vec![(5, 17)]);
    }
}
