//! Runtime values and traps.

use std::fmt;

/// A runtime value: one memory cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Pointer: absolute cell address (0 is the null address).
    Ptr(usize),
    /// Function reference by function index.
    Func(u32),
    /// Uninitialized cell; reading one traps.
    Uninit,
}

impl Value {
    /// The integer contents.
    ///
    /// # Errors
    ///
    /// Traps on non-integer values (floats must be cast explicitly at the
    /// language level; lowering inserts the conversions, so reaching a
    /// `Float` here is a VM bug, but `Uninit` is a user error).
    pub fn as_int(self) -> Result<i64, Trap> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Uninit => Err(Trap::UninitRead),
            other => Err(Trap::TypeConfusion(other.kind_name())),
        }
    }

    /// The float contents.
    ///
    /// # Errors
    ///
    /// Traps on non-float values.
    pub fn as_float(self) -> Result<f64, Trap> {
        match self {
            Value::Float(v) => Ok(v),
            Value::Uninit => Err(Trap::UninitRead),
            other => Err(Trap::TypeConfusion(other.kind_name())),
        }
    }

    /// Integer or float as f64 (arithmetic promotion).
    ///
    /// # Errors
    ///
    /// Traps on pointers, functions, and uninitialized cells.
    pub fn as_number(self) -> Result<f64, Trap> {
        match self {
            Value::Int(v) => Ok(v as f64),
            Value::Float(v) => Ok(v),
            Value::Uninit => Err(Trap::UninitRead),
            other => Err(Trap::TypeConfusion(other.kind_name())),
        }
    }

    /// The pointer address.
    ///
    /// # Errors
    ///
    /// Traps on non-pointers. Integer zero is accepted as the null pointer
    /// (C's `p = 0`).
    pub fn as_ptr(self) -> Result<usize, Trap> {
        match self {
            Value::Ptr(a) => Ok(a),
            Value::Int(0) => Ok(0),
            Value::Uninit => Err(Trap::UninitRead),
            other => Err(Trap::TypeConfusion(other.kind_name())),
        }
    }

    /// Truthiness for conditions: nonzero / non-null.
    ///
    /// # Errors
    ///
    /// Traps on uninitialized cells and function values.
    pub fn truthy(self) -> Result<bool, Trap> {
        match self {
            Value::Int(v) => Ok(v != 0),
            Value::Float(v) => Ok(v != 0.0),
            Value::Ptr(a) => Ok(a != 0),
            Value::Uninit => Err(Trap::UninitRead),
            Value::Func(_) => Err(Trap::TypeConfusion("function")),
        }
    }

    fn kind_name(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Ptr(_) => "pointer",
            Value::Func(_) => "function",
            Value::Uninit => "uninit",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr(a) => write!(f, "ptr:{a}"),
            Value::Func(i) => write!(f, "fn:{i}"),
            Value::Uninit => write!(f, "uninit"),
        }
    }
}

/// A value printed by the program's `print` builtin (the observable output
/// stream, used by semantic-preservation tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrintVal {
    /// Printed integer.
    Int(i64),
    /// Printed float.
    Float(f64),
}

impl fmt::Display for PrintVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrintVal::Int(v) => write!(f, "{v}"),
            PrintVal::Float(v) => write!(f, "{v}"),
        }
    }
}

/// A runtime error that aborts execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Read of an uninitialized cell.
    UninitRead,
    /// A value of the wrong kind reached an operation.
    TypeConfusion(&'static str),
    /// Dereference of the null address.
    NullDeref,
    /// Address outside the allocated memory.
    OutOfBounds(usize),
    /// Integer division or remainder by zero.
    DivByZero,
    /// `assert(0)`.
    AssertFailed,
    /// Stack frame allocation exceeded the configured limit.
    StackOverflow,
    /// Call through a non-function value.
    NotAFunction,
    /// A non-void function fell off its end and the caller used the value.
    MissingReturn,
    /// The configured cycle budget was exhausted (runaway-loop guard).
    CycleLimit,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::UninitRead => write!(f, "read of uninitialized value"),
            Trap::TypeConfusion(k) => write!(f, "unexpected {k} value"),
            Trap::NullDeref => write!(f, "null pointer dereference"),
            Trap::OutOfBounds(a) => write!(f, "address {a} out of bounds"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::AssertFailed => write!(f, "assertion failed"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::NotAFunction => write!(f, "call through a non-function value"),
            Trap::MissingReturn => write!(f, "function returned no value"),
            Trap::CycleLimit => write!(f, "cycle limit exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_accessors() {
        assert_eq!(Value::Int(5).as_int().unwrap(), 5);
        assert_eq!(Value::Int(5).as_number().unwrap(), 5.0);
        assert!(Value::Float(1.0).as_int().is_err());
        assert_eq!(Value::Uninit.as_int(), Err(Trap::UninitRead));
    }

    #[test]
    fn null_pointer_interop() {
        assert_eq!(Value::Int(0).as_ptr().unwrap(), 0);
        assert!(Value::Int(1).as_ptr().is_err());
        assert_eq!(Value::Ptr(42).as_ptr().unwrap(), 42);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(-1).truthy().unwrap());
        assert!(!Value::Int(0).truthy().unwrap());
        assert!(!Value::Float(0.0).truthy().unwrap());
        assert!(Value::Ptr(3).truthy().unwrap());
        assert!(!Value::Ptr(0).truthy().unwrap());
        assert!(Value::Uninit.truthy().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(PrintVal::Float(2.5).to_string(), "2.5");
        assert_eq!(Trap::DivByZero.to_string(), "integer division by zero");
    }
}
