//! Lowering: checked MiniC AST → executable VM IR.
//!
//! The interpreter never consults sema side tables at run time; this pass
//! resolves every variable to a frame offset or absolute global address,
//! folds struct field offsets and array strides into address arithmetic,
//! and attaches a [`CostKind`] to every operation so the cycle account is a
//! single table lookup per node.

use crate::value::Value;
use minic::ast::{
    BinOp, Block, Expr, ExprKind, FuncDef, MemoDep, MemoOperand, NodeId, OperandShape, Program,
    ScalarKind, Stmt, StmtKind, Type, UnOp,
};
use minic::sema::{Builtin, Checked, ConstVal, Res, SemaInfo};
use std::collections::HashMap;

/// Cost class of an operation (indexes into the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Integer ALU / comparisons / pointer comparisons.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide or remainder.
    IntDiv,
    /// Float add/sub/compare.
    FloatAlu,
    /// Float multiply.
    FloatMul,
    /// Float divide.
    FloatDiv,
}

/// Store-side coercion derived from the destination's static type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coerce {
    /// Store as-is (pointers, function values).
    None,
    /// Truncate floats to int (C assignment semantics).
    ToInt,
    /// Promote ints to float.
    ToFloat,
}

impl Coerce {
    fn of_type(ty: &Type) -> Coerce {
        match ty {
            Type::Int => Coerce::ToInt,
            Type::Float => Coerce::ToFloat,
            _ => Coerce::None,
        }
    }
}

/// A memory location: frame slot, absolute global address, or computed.
#[derive(Debug, Clone)]
pub enum LPlace {
    /// Frame-relative cell.
    Local(u32),
    /// Absolute global cell.
    Global(u32),
    /// Address computed by an expression (must evaluate to a pointer).
    Mem(Box<LExpr>),
}

/// Callee of a lowered call.
#[derive(Debug, Clone)]
pub enum LCallee {
    /// Direct call by function index.
    Func(u32),
    /// VM builtin.
    Builtin(Builtin),
    /// Indirect call through a function-pointer value.
    Ptr(Box<LExpr>),
}

/// A lowered expression.
#[derive(Debug, Clone)]
pub enum LExpr {
    /// Integer constant.
    ConstI(i64),
    /// Float constant.
    ConstF(f64),
    /// Function reference constant.
    ConstFn(u32),
    /// Read a scalar local.
    ReadLocal(u32),
    /// Read a scalar global.
    ReadGlobal(u32),
    /// Load through a computed address.
    ReadMem(Box<LExpr>),
    /// Address of a frame cell.
    AddrLocal(u32),
    /// Address of a global cell.
    AddrGlobal(u32),
    /// `base + idx * stride` pointer arithmetic (stride in cells, signed).
    PtrAdd(Box<LExpr>, Box<LExpr>, i64),
    /// `(a - b) / stride` pointer difference.
    PtrDiff(Box<LExpr>, Box<LExpr>, i64),
    /// Unary op (never Deref/Addr — those lower to loads/addresses).
    Unary(UnOp, Box<LExpr>, CostKind),
    /// Binary arithmetic/comparison (no short-circuit ops).
    Binary(BinOp, Box<LExpr>, Box<LExpr>, CostKind),
    /// Short-circuit `&&`/`||`.
    Logic {
        /// true = `&&`, false = `||`.
        and: bool,
        /// Left operand.
        a: Box<LExpr>,
        /// Right operand (evaluated only if needed).
        b: Box<LExpr>,
    },
    /// `c ? t : f`.
    Ternary(Box<LExpr>, Box<LExpr>, Box<LExpr>),
    /// `place = value`, yielding the stored value.
    Assign {
        /// Destination.
        place: LPlace,
        /// Source expression.
        value: Box<LExpr>,
        /// Store coercion.
        coerce: Coerce,
        /// Cost of the destination access.
        write_cost: WriteCost,
    },
    /// `place op= value`.
    AssignOp {
        /// The arithmetic operator.
        op: BinOp,
        /// Destination (read-modify-write).
        place: LPlace,
        /// Right-hand side.
        value: Box<LExpr>,
        /// Operation cost class.
        cost: CostKind,
        /// Store coercion.
        coerce: Coerce,
        /// `Some(stride)` for pointer stepping (`p += i`).
        ptr_stride: Option<i64>,
        /// Cost of the destination access.
        write_cost: WriteCost,
    },
    /// `++`/`--` on a place.
    IncDec {
        /// Destination.
        place: LPlace,
        /// +1 or −1.
        delta: i64,
        /// Postfix (yield old value) vs prefix (yield new).
        post: bool,
        /// `Some(stride)` when stepping a pointer.
        ptr_stride: Option<i64>,
        /// Cost of the destination access.
        write_cost: WriteCost,
    },
    /// Function or builtin call.
    Call {
        /// Who is called.
        callee: LCallee,
        /// Arguments with per-parameter store coercions.
        args: Vec<(LExpr, Coerce)>,
    },
    /// Cast to int (floats truncate, pointers expose their address).
    CastInt(Box<LExpr>),
    /// Cast to float.
    CastFloat(Box<LExpr>),
}

/// Whether a store hits a register-allocatable slot or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteCost {
    /// Local scalar (free under O3).
    Var,
    /// Global or through-pointer (always memory).
    Mem,
}

/// Location of a memo/profile operand.
#[derive(Debug, Clone, Copy)]
pub enum OpLoc {
    /// Scalar or array starting at a frame offset.
    Local(u32),
    /// Scalar or array starting at a global address.
    Global(u32),
    /// Cells behind a pointer stored in a frame slot.
    DerefLocal(u32),
    /// Cells behind a pointer stored in a global.
    DerefGlobal(u32),
}

/// A lowered memo/profile operand.
#[derive(Debug, Clone, Copy)]
pub struct LOperand {
    /// Where the words live.
    pub loc: OpLoc,
    /// Number of 64-bit words.
    pub words: u32,
    /// Whether cells are floats (for decode on hits).
    pub is_float: bool,
}

/// A tracked global memory region some memoized segment depends on.
/// Regions are interned module-wide; each divides into at most 64
/// power-of-two chunks whose chained write epochs back fingerprint
/// validation.
#[derive(Debug, Clone, Copy)]
pub struct DepRegion {
    /// First global memory cell of the region.
    pub addr: u32,
    /// Extent in cells.
    pub words: u32,
    /// log2 of the chunk size in cells.
    pub shift: u32,
    /// Number of chunks (`ceil(words / 2^shift)`, 1..=64).
    pub chunks: u32,
    /// Offset of this region's first chunk epoch in the flat epoch array.
    pub epoch_off: u32,
}

/// One validated dependency of a lowered memo: a module dep region plus
/// its mutability (mutable deps make the segment green).
#[derive(Debug, Clone, Copy)]
pub struct LDep {
    /// Index into [`Module::dep_regions`].
    pub region: u32,
    /// Whether the program writes the region after initialization.
    pub mutable: bool,
}

/// A lowered memoized segment.
#[derive(Debug, Clone)]
pub struct LMemo {
    /// Runtime table index.
    pub table: u32,
    /// Slot within a merged table (0 otherwise).
    pub slot: u32,
    /// Input operands (the hash key).
    pub inputs: Vec<LOperand>,
    /// Output operands.
    pub outputs: Vec<LOperand>,
    /// Validated dependency regions (fingerprinted, not in the key).
    pub deps: Vec<LDep>,
    /// Memoized return value: `Some(is_float)`.
    pub ret: Option<bool>,
    /// Original body (runs on a miss).
    pub body: Vec<LStmt>,
    /// Total key words (cached).
    pub key_words: u32,
    /// Total output words including the return slot (cached).
    pub out_words: u32,
    /// Fingerprint words per table entry (`2 × deps.len()`, cached).
    pub fp_words: u32,
    /// Whether any dependency is mutable: entries must be validated
    /// before they can be trusted (try-mark-green).
    pub green: bool,
}

/// A lowered profiling probe.
#[derive(Debug, Clone)]
pub struct LProfile {
    /// Segment index in the profiling plan.
    pub seg: u32,
    /// Input operands recorded on entry.
    pub inputs: Vec<LOperand>,
    /// The body.
    pub body: Vec<LStmt>,
}

/// A lowered statement.
#[derive(Debug, Clone)]
pub enum LStmt {
    /// Expression for effect.
    Expr(LExpr),
    /// Local declaration: optional scalar initializer.
    Decl {
        /// Frame offset.
        slot: u32,
        /// Initializer and its coercion.
        init: Option<(LExpr, Coerce)>,
    },
    /// Conditional.
    If {
        /// Condition.
        cond: LExpr,
        /// Then branch.
        then_blk: Vec<LStmt>,
        /// Else branch (possibly empty).
        else_blk: Vec<LStmt>,
        /// Dense index into branch counters (then = 2i, else = 2i+1).
        branch_idx: u32,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: LExpr,
        /// Body.
        body: Vec<LStmt>,
        /// Dense loop counter index.
        loop_idx: u32,
    },
    /// `do ... while` loop.
    DoWhile {
        /// Body.
        body: Vec<LStmt>,
        /// Condition.
        cond: LExpr,
        /// Dense loop counter index.
        loop_idx: u32,
    },
    /// `for` loop.
    For {
        /// Init statement.
        init: Option<Box<LStmt>>,
        /// Condition (None = always true).
        cond: Option<LExpr>,
        /// Step expression.
        step: Option<LExpr>,
        /// Body.
        body: Vec<LStmt>,
        /// Dense loop counter index.
        loop_idx: u32,
    },
    /// A nested `{ ... }` block (scoping already resolved; purely a
    /// statement sequence).
    Seq(Vec<LStmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return` with optional coerced value.
    Return(Option<(LExpr, Coerce)>),
    /// Memoized segment.
    Memo(LMemo),
    /// Profiling probe.
    Profile(LProfile),
}

/// A lowered function.
#[derive(Debug, Clone)]
pub struct LFunc {
    /// Name (diagnostics and frequency reports).
    pub name: String,
    /// Frame size in cells.
    pub frame: u32,
    /// Parameter frame offsets with store coercions, in order.
    pub params: Vec<(u32, Coerce)>,
    /// Body.
    pub body: Vec<LStmt>,
}

/// An executable module.
#[derive(Debug, Clone)]
pub struct Module {
    /// Functions, index-compatible with the checked program.
    pub funcs: Vec<LFunc>,
    /// Index of `main`.
    pub main: u32,
    /// Initial global memory (cell 0 reserved).
    pub globals: Vec<Value>,
    /// AST origin of each dense loop counter.
    pub loop_origins: Vec<NodeId>,
    /// AST origin and then/else flag of each dense branch counter pair
    /// (index `i` covers counters `2i` and `2i+1`).
    pub branch_origins: Vec<NodeId>,
    /// Names of profiled segments, by segment index.
    pub profile_segments: Vec<String>,
    /// Number of memo tables the module expects at run time.
    pub table_count: usize,
    /// Tracked dependency regions (union over all memos' deps).
    pub dep_regions: Vec<DepRegion>,
    /// Total chunk-epoch words across all dep regions.
    pub dep_epoch_words: u32,
}

/// Lowers a checked program.
///
/// # Panics
///
/// Panics only on internal inconsistencies (a program accepted by
/// [`minic::check`] always lowers).
///
/// # Examples
///
/// ```
/// let checked = minic::compile("int main() { return 40 + 2; }").unwrap();
/// let module = vm::lower::lower(&checked);
/// assert_eq!(module.funcs.len(), 1);
/// ```
pub fn lower(checked: &Checked) -> Module {
    let mut lw = Lowerer {
        info: &checked.info,
        program: &checked.program,
        loop_origins: Vec::new(),
        branch_origins: Vec::new(),
        profile_segments: Vec::new(),
        table_count: 0,
        current_func: 0,
        dep_regions: Vec::new(),
        dep_index: HashMap::new(),
        dep_epoch_words: 0,
    };
    let funcs: Vec<LFunc> = checked
        .program
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| lw.lower_func(i, f))
        .collect();
    let main = *checked
        .info
        .func_index
        .get("main")
        .expect("program must define main") as u32;
    Module {
        funcs,
        main,
        globals: build_globals(&checked.info),
        loop_origins: lw.loop_origins,
        branch_origins: lw.branch_origins,
        profile_segments: lw.profile_segments,
        table_count: lw.table_count,
        dep_regions: lw.dep_regions,
        dep_epoch_words: lw.dep_epoch_words,
    }
}

/// Builds the initial global memory image: cell 0 reserved, then each
/// global zero-initialized per its element kinds, overridden by constant
/// initializers.
fn build_globals(info: &SemaInfo) -> Vec<Value> {
    let mut mem = vec![Value::Uninit; info.global_region];
    for g in &info.globals {
        let mut kinds = Vec::with_capacity(g.size);
        fill_default_kinds(info, &g.ty, &mut kinds);
        debug_assert_eq!(kinds.len(), g.size);
        for (i, v) in kinds.into_iter().enumerate() {
            mem[g.addr + i] = v;
        }
        if let Some(init) = &g.init {
            for (i, c) in init.iter().enumerate() {
                mem[g.addr + i] = match c {
                    ConstVal::Int(v) => Value::Int(*v),
                    ConstVal::Float(v) => Value::Float(*v),
                };
            }
        }
    }
    mem
}

fn fill_default_kinds(info: &SemaInfo, ty: &Type, out: &mut Vec<Value>) {
    match ty {
        Type::Int => out.push(Value::Int(0)),
        Type::Float => out.push(Value::Float(0.0)),
        Type::Ptr(_) => out.push(Value::Ptr(0)),
        Type::Func(_) => out.push(Value::Uninit),
        Type::Void => {}
        Type::Array(elem, n) => {
            for _ in 0..*n {
                fill_default_kinds(info, elem, out);
            }
        }
        Type::Struct(name) => {
            let layout = info.structs.get(name).expect("known struct").clone();
            for (_, fty, _) in &layout.fields {
                fill_default_kinds(info, fty, out);
            }
        }
    }
}

struct Lowerer<'c> {
    info: &'c SemaInfo,
    program: &'c Program,
    loop_origins: Vec<NodeId>,
    branch_origins: Vec<NodeId>,
    profile_segments: Vec<String>,
    table_count: usize,
    current_func: usize,
    dep_regions: Vec<DepRegion>,
    dep_index: HashMap<usize, u32>,
    dep_epoch_words: u32,
}

impl<'c> Lowerer<'c> {
    fn lower_func(&mut self, idx: usize, f: &FuncDef) -> LFunc {
        self.current_func = idx;
        let frame = &self.info.frames[idx];
        let params = f
            .params
            .iter()
            .zip(&frame.param_offsets)
            .map(|(p, &off)| (off as u32, Coerce::of_type(&p.ty)))
            .collect();
        LFunc {
            name: f.name.clone(),
            frame: frame.size as u32,
            params,
            body: self.lower_block(&f.body),
        }
    }

    fn lower_block(&mut self, b: &Block) -> Vec<LStmt> {
        b.stmts.iter().filter_map(|s| self.lower_stmt(s)).collect()
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Option<LStmt> {
        Some(match &s.kind {
            StmtKind::Decl { ty, init, .. } => {
                let slot = *self
                    .info
                    .frames
                    .get(self.current_frame_of(s))
                    .and_then(|f| f.decl_offsets.get(&s.id))
                    .expect("decl has a slot") as u32;
                let init = init
                    .as_ref()
                    .map(|e| (self.lower_expr(e), Coerce::of_type(ty)));
                LStmt::Decl { slot, init }
            }
            StmtKind::Expr(e) => LStmt::Expr(self.lower_expr(e)),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let branch_idx = self.branch_origins.len() as u32;
                self.branch_origins.push(s.id);
                LStmt::If {
                    cond: self.lower_expr(cond),
                    then_blk: self.lower_block(then_blk),
                    else_blk: else_blk
                        .as_ref()
                        .map(|b| self.lower_block(b))
                        .unwrap_or_default(),
                    branch_idx,
                }
            }
            StmtKind::While { cond, body } => {
                let loop_idx = self.push_loop(s.id);
                LStmt::While {
                    cond: self.lower_expr(cond),
                    body: self.lower_block(body),
                    loop_idx,
                }
            }
            StmtKind::DoWhile { body, cond } => {
                let loop_idx = self.push_loop(s.id);
                LStmt::DoWhile {
                    body: self.lower_block(body),
                    cond: self.lower_expr(cond),
                    loop_idx,
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let loop_idx = self.push_loop(s.id);
                LStmt::For {
                    init: init
                        .as_ref()
                        .and_then(|st| self.lower_stmt(st))
                        .map(Box::new),
                    cond: cond.as_ref().map(|e| self.lower_expr(e)),
                    step: step.as_ref().map(|e| self.lower_expr(e)),
                    body: self.lower_block(body),
                    loop_idx,
                }
            }
            StmtKind::Break => LStmt::Break,
            StmtKind::Continue => LStmt::Continue,
            StmtKind::Return(v) => LStmt::Return(v.as_ref().map(|e| {
                let coerce = Coerce::of_type(&self.current_ret_of(s));
                (self.lower_expr(e), coerce)
            })),
            StmtKind::Block(b) => {
                let inner = self.lower_block(b);
                if inner.is_empty() {
                    return None;
                }
                LStmt::Seq(inner)
            }
            StmtKind::Profile(p) => {
                let seg = p.seg_index as u32;
                while self.profile_segments.len() <= p.seg_index {
                    self.profile_segments.push(String::new());
                }
                self.profile_segments[p.seg_index] = p.segment.clone();
                LStmt::Profile(LProfile {
                    seg,
                    inputs: self.lower_operands(s.id, &p.inputs, 0),
                    body: self.lower_block(&p.body),
                })
            }
            StmtKind::Memo(m) => {
                self.table_count = self.table_count.max(m.table + 1);
                let inputs = self.lower_operands(s.id, &m.inputs, 0);
                let outputs = self.lower_operands(s.id, &m.outputs, m.inputs.len());
                let key_words: u32 = inputs.iter().map(|o| o.words).sum();
                let out_words: u32 =
                    outputs.iter().map(|o| o.words).sum::<u32>() + u32::from(m.ret.is_some());
                let deps: Vec<LDep> = m
                    .deps
                    .iter()
                    .map(|d| LDep {
                        region: self.intern_dep(d),
                        mutable: d.mutable,
                    })
                    .collect();
                let fp_words = 2 * deps.len() as u32;
                let green = deps.iter().any(|d| d.mutable);
                LStmt::Memo(LMemo {
                    table: m.table as u32,
                    slot: m.slot as u32,
                    inputs,
                    outputs,
                    deps,
                    ret: m.ret.map(|k| k == ScalarKind::Float),
                    body: self.lower_block(&m.body),
                    key_words,
                    out_words,
                    fp_words,
                    green,
                })
            }
        })
    }

    /// Interns the dep's global as a module dep region (deduplicated by
    /// global), assigning its chunk-epoch range on first sight.
    fn intern_dep(&mut self, dep: &MemoDep) -> u32 {
        let gid = *self
            .info
            .global_index
            .get(&dep.name)
            .expect("memo dep names a global (checked by sema)");
        if let Some(&idx) = self.dep_index.get(&gid) {
            return idx;
        }
        let g = &self.info.globals[gid];
        let shift = dep.chunk_shift();
        let chunks = dep.chunk_count() as u32;
        let idx = self.dep_regions.len() as u32;
        self.dep_regions.push(DepRegion {
            addr: g.addr as u32,
            words: dep.words as u32,
            shift,
            chunks,
            epoch_off: self.dep_epoch_words,
        });
        self.dep_epoch_words += chunks;
        self.dep_index.insert(gid, idx);
        idx
    }

    fn push_loop(&mut self, id: NodeId) -> u32 {
        let idx = self.loop_origins.len() as u32;
        self.loop_origins.push(id);
        idx
    }

    fn lower_operands(
        &self,
        stmt_id: NodeId,
        ops: &[MemoOperand],
        idx_base: usize,
    ) -> Vec<LOperand> {
        ops.iter()
            .enumerate()
            .map(|(i, op)| {
                let res = self
                    .info
                    .operand_res
                    .get(&(stmt_id, idx_base + i))
                    .expect("operand resolved by sema");
                let deref = matches!(op.shape, OperandShape::Deref(_));
                let loc = match (res, deref) {
                    (Res::Slot(off), false) => OpLoc::Local(*off as u32),
                    (Res::Slot(off), true) => OpLoc::DerefLocal(*off as u32),
                    (Res::Global(g), false) => OpLoc::Global(self.info.globals[*g].addr as u32),
                    (Res::Global(g), true) => OpLoc::DerefGlobal(self.info.globals[*g].addr as u32),
                    _ => panic!("memo operand resolves to a function"),
                };
                LOperand {
                    loc,
                    words: op.words() as u32,
                    is_float: op.elem == ScalarKind::Float,
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn ty(&self, e: &Expr) -> &Type {
        self.info.type_of(e)
    }

    fn elem_size(&self, ty: &Type) -> i64 {
        match ty {
            Type::Ptr(inner) | Type::Array(inner, _) => self.info.size_of(inner) as i64,
            other => panic!("elem_size of non-pointer type {other}"),
        }
    }

    fn cost_kind(&self, op: BinOp, is_float: bool) -> CostKind {
        match (op, is_float) {
            (BinOp::Mul, false) => CostKind::IntMul,
            (BinOp::Div | BinOp::Rem, false) => CostKind::IntDiv,
            (BinOp::Mul, true) => CostKind::FloatMul,
            (BinOp::Div, true) => CostKind::FloatDiv,
            (_, true) => CostKind::FloatAlu,
            (_, false) => CostKind::IntAlu,
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> LExpr {
        match &e.kind {
            ExprKind::IntLit(v) => LExpr::ConstI(*v),
            ExprKind::FloatLit(v) => LExpr::ConstF(*v),
            ExprKind::Var(_) => self.lower_var_read(e),
            ExprKind::Unary(UnOp::Deref, p) => {
                // Deref of a function-typed value is the identity (C).
                if matches!(self.ty(p), Type::Func(_)) {
                    return self.lower_expr(p);
                }
                // Deref yielding an array decays to the address itself.
                if matches!(self.ty(e), Type::Array(..)) {
                    return self.lower_expr(p);
                }
                LExpr::ReadMem(Box::new(self.lower_expr(p)))
            }
            ExprKind::Unary(UnOp::Addr, lv) => self.lower_addr(lv),
            ExprKind::Unary(op, a) => {
                let ck = if matches!(self.ty(a), Type::Float) {
                    CostKind::FloatAlu
                } else {
                    CostKind::IntAlu
                };
                LExpr::Unary(*op, Box::new(self.lower_expr(a)), ck)
            }
            ExprKind::Binary(op, a, b) => self.lower_binary(e, *op, a, b),
            ExprKind::IncDec(op, lv) => {
                let ty = minic::sema::decay(self.ty(lv));
                let ptr_stride = matches!(ty, Type::Ptr(_)).then(|| self.elem_size(&ty));
                let (place, write_cost) = self.lower_place(lv);
                LExpr::IncDec {
                    place,
                    delta: op.delta(),
                    post: !op.is_prefix(),
                    ptr_stride,
                    write_cost,
                }
            }
            ExprKind::Assign(l, r) => {
                let coerce = Coerce::of_type(&minic::sema::decay(self.ty(l)));
                let (place, write_cost) = self.lower_place(l);
                LExpr::Assign {
                    place,
                    value: Box::new(self.lower_expr(r)),
                    coerce,
                    write_cost,
                }
            }
            ExprKind::AssignOp(op, l, r) => {
                let lty = minic::sema::decay(self.ty(l));
                let ptr_stride = matches!(lty, Type::Ptr(_)).then(|| self.elem_size(&lty));
                let is_float = matches!(lty, Type::Float) || matches!(self.ty(r), Type::Float);
                let (place, write_cost) = self.lower_place(l);
                LExpr::AssignOp {
                    op: *op,
                    place,
                    value: Box::new(self.lower_expr(r)),
                    cost: self.cost_kind(*op, is_float),
                    coerce: Coerce::of_type(&lty),
                    ptr_stride,
                    write_cost,
                }
            }
            ExprKind::Ternary(c, t, f) => LExpr::Ternary(
                Box::new(self.lower_expr(c)),
                Box::new(self.lower_expr(t)),
                Box::new(self.lower_expr(f)),
            ),
            ExprKind::Call(callee, args) => self.lower_call(callee, args),
            ExprKind::Index(base, idx) => {
                let stride = self.elem_size(&minic::sema::decay(self.ty(base)));
                let addr = LExpr::PtrAdd(
                    Box::new(self.lower_expr(base)),
                    Box::new(self.lower_expr(idx)),
                    stride,
                );
                if matches!(self.ty(e), Type::Array(..)) {
                    addr // decay: the element is itself an array
                } else {
                    LExpr::ReadMem(Box::new(addr))
                }
            }
            ExprKind::Member(..) | ExprKind::Arrow(..) => {
                if matches!(self.ty(e), Type::Array(..)) {
                    // Field of array type decays to its address.
                    let (place, _) = self.lower_place(e);
                    self.place_addr(place)
                } else {
                    let (place, _) = self.lower_place(e);
                    match place {
                        LPlace::Local(off) => LExpr::ReadLocal(off),
                        LPlace::Global(a) => LExpr::ReadGlobal(a),
                        LPlace::Mem(addr) => LExpr::ReadMem(addr),
                    }
                }
            }
            ExprKind::Cast(ty, a) => {
                let inner = self.lower_expr(a);
                match ty {
                    Type::Int => LExpr::CastInt(Box::new(inner)),
                    Type::Float => LExpr::CastFloat(Box::new(inner)),
                    // Pointer casts are representation no-ops.
                    _ => inner,
                }
            }
        }
    }

    fn lower_var_read(&mut self, e: &Expr) -> LExpr {
        let res = self.info.res.get(&e.id).expect("var resolved");
        match res {
            Res::Slot(off) => {
                if matches!(self.ty(e), Type::Array(..)) {
                    LExpr::AddrLocal(*off as u32)
                } else {
                    LExpr::ReadLocal(*off as u32)
                }
            }
            Res::Global(g) => {
                let addr = self.info.globals[*g].addr as u32;
                if matches!(self.ty(e), Type::Array(..)) {
                    LExpr::AddrGlobal(addr)
                } else {
                    LExpr::ReadGlobal(addr)
                }
            }
            Res::Func(fid) => LExpr::ConstFn(*fid as u32),
            Res::Builtin(_) => panic!("builtin used outside call position"),
        }
    }

    fn lower_binary(&mut self, e: &Expr, op: BinOp, a: &Expr, b: &Expr) -> LExpr {
        let aty = minic::sema::decay(self.ty(a));
        let bty = minic::sema::decay(self.ty(b));
        match (&aty, &bty, op) {
            (Type::Ptr(_), Type::Int, BinOp::Add) => LExpr::PtrAdd(
                Box::new(self.lower_expr(a)),
                Box::new(self.lower_expr(b)),
                self.elem_size(&aty),
            ),
            (Type::Ptr(_), Type::Int, BinOp::Sub) => LExpr::PtrAdd(
                Box::new(self.lower_expr(a)),
                Box::new(self.lower_expr(b)),
                -self.elem_size(&aty),
            ),
            (Type::Int, Type::Ptr(_), BinOp::Add) => LExpr::PtrAdd(
                Box::new(self.lower_expr(b)),
                Box::new(self.lower_expr(a)),
                self.elem_size(&bty),
            ),
            (Type::Ptr(_), Type::Ptr(_), BinOp::Sub) => LExpr::PtrDiff(
                Box::new(self.lower_expr(a)),
                Box::new(self.lower_expr(b)),
                self.elem_size(&aty),
            ),
            _ if op == BinOp::LogAnd || op == BinOp::LogOr => LExpr::Logic {
                and: op == BinOp::LogAnd,
                a: Box::new(self.lower_expr(a)),
                b: Box::new(self.lower_expr(b)),
            },
            _ => {
                let is_float = matches!(aty, Type::Float) || matches!(bty, Type::Float);
                let ck = self.cost_kind(op, is_float);
                let _ = e;
                LExpr::Binary(
                    op,
                    Box::new(self.lower_expr(a)),
                    Box::new(self.lower_expr(b)),
                    ck,
                )
            }
        }
    }

    fn lower_call(&mut self, callee: &Expr, args: &[Expr]) -> LExpr {
        // Peel `(*fp)` — deref of a function value is identity.
        let mut target = callee;
        while let ExprKind::Unary(UnOp::Deref, inner) = &target.kind {
            if matches!(self.ty(inner), Type::Func(_)) {
                target = inner;
            } else {
                break;
            }
        }
        let (lcallee, param_coerce): (LCallee, Vec<Coerce>) = match &target.kind {
            ExprKind::Var(_) => match self.info.res.get(&target.id) {
                Some(Res::Func(fid)) => {
                    let coerces = self.program.funcs[*fid]
                        .params
                        .iter()
                        .map(|p| Coerce::of_type(&p.ty))
                        .collect();
                    (LCallee::Func(*fid as u32), coerces)
                }
                Some(Res::Builtin(b)) => (LCallee::Builtin(*b), vec![Coerce::None; args.len()]),
                _ => self.indirect_callee(target, args),
            },
            _ => self.indirect_callee(target, args),
        };
        let args = args
            .iter()
            .zip(
                param_coerce
                    .into_iter()
                    .chain(std::iter::repeat(Coerce::None)),
            )
            .map(|(a, c)| (self.lower_expr(a), c))
            .collect();
        LExpr::Call {
            callee: lcallee,
            args,
        }
    }

    fn indirect_callee(&mut self, target: &Expr, args: &[Expr]) -> (LCallee, Vec<Coerce>) {
        let coerces = match minic::sema::decay(self.ty(target)) {
            Type::Func(sig) => sig.params.iter().map(Coerce::of_type).collect(),
            Type::Ptr(inner) => match *inner {
                Type::Func(sig) => sig.params.iter().map(Coerce::of_type).collect(),
                _ => vec![Coerce::None; args.len()],
            },
            _ => vec![Coerce::None; args.len()],
        };
        (LCallee::Ptr(Box::new(self.lower_expr(target))), coerces)
    }

    /// Lowers an lvalue to a place and its write-cost class.
    fn lower_place(&mut self, lv: &Expr) -> (LPlace, WriteCost) {
        match &lv.kind {
            ExprKind::Var(_) => match self.info.res.get(&lv.id).expect("var resolved") {
                Res::Slot(off) => (LPlace::Local(*off as u32), WriteCost::Var),
                Res::Global(g) => (
                    LPlace::Global(self.info.globals[*g].addr as u32),
                    WriteCost::Mem,
                ),
                _ => panic!("assignment to function name rejected by sema"),
            },
            ExprKind::Unary(UnOp::Deref, p) => {
                (LPlace::Mem(Box::new(self.lower_expr(p))), WriteCost::Mem)
            }
            ExprKind::Index(base, idx) => {
                let stride = self.elem_size(&minic::sema::decay(self.ty(base)));
                (
                    LPlace::Mem(Box::new(LExpr::PtrAdd(
                        Box::new(self.lower_expr(base)),
                        Box::new(self.lower_expr(idx)),
                        stride,
                    ))),
                    WriteCost::Mem,
                )
            }
            ExprKind::Member(base, _) => {
                let off = *self
                    .info
                    .field_offsets
                    .get(&lv.id)
                    .expect("field offset recorded") as u32;
                let (bplace, bcost) = self.lower_place(base);
                match bplace {
                    LPlace::Local(b) => (LPlace::Local(b + off), bcost),
                    LPlace::Global(b) => (LPlace::Global(b + off), bcost),
                    LPlace::Mem(addr) => (
                        LPlace::Mem(Box::new(LExpr::PtrAdd(
                            addr,
                            Box::new(LExpr::ConstI(off as i64)),
                            1,
                        ))),
                        WriteCost::Mem,
                    ),
                }
            }
            ExprKind::Arrow(base, _) => {
                let off = *self
                    .info
                    .field_offsets
                    .get(&lv.id)
                    .expect("field offset recorded") as i64;
                (
                    LPlace::Mem(Box::new(LExpr::PtrAdd(
                        Box::new(self.lower_expr(base)),
                        Box::new(LExpr::ConstI(off)),
                        1,
                    ))),
                    WriteCost::Mem,
                )
            }
            other => panic!("not an lvalue (sema verified): {other:?}"),
        }
    }

    /// Lowers `&lv`.
    fn lower_addr(&mut self, lv: &Expr) -> LExpr {
        let (place, _) = self.lower_place(lv);
        self.place_addr(place)
    }

    fn place_addr(&self, place: LPlace) -> LExpr {
        match place {
            LPlace::Local(off) => LExpr::AddrLocal(off),
            LPlace::Global(a) => LExpr::AddrGlobal(a),
            LPlace::Mem(addr) => *addr,
        }
    }

    /// Finds which function's frame a statement belongs to. Statements are
    /// lowered function-by-function, so this is the index of the function
    /// currently being lowered; tracked via `current_func`.
    fn current_frame_of(&self, _s: &Stmt) -> usize {
        self.current_func
    }

    fn current_ret_of(&self, _s: &Stmt) -> Type {
        self.program.funcs[self.current_func].ret.clone()
    }
}
