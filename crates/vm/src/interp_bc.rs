//! The non-recursive bytecode dispatch loop.
//!
//! Executes a [`BcModule`] produced by [`crate::bytecode::compile`] with
//! MiniC call frames on an explicit stack (no Rust recursion, no
//! dedicated big-stack thread) and all memo/profile scratch buffers
//! preallocated on the machine, so the memo hit path — including the
//! bypassed-table forced-miss probe — performs **zero heap allocations**.
//!
//! Cycle/energy parity with the tree-walker is a hard contract: every
//! instruction charges exactly the cost the tree-walker charges at the
//! corresponding program point, the cycle-budget check runs at the same
//! points (call entry and loop heads), and traps fire in the same order.
//! The differential and property tests in `tests/` assert bit-for-bit
//! equal [`Outcome`]s across engines.

use crate::bytecode::{BcModule, Instr};
use crate::cost::{cycles_to_seconds, CostModel};
use crate::deps_rt::DepRuntime;
use crate::interp::{
    binary_value, coerce_value, make_profiler, mem_read, mem_write, read_operand_into, unary_value,
    write_operand_from, Outcome, RunConfig,
};
use crate::lower::{Module, WriteCost};
use crate::tables::TableHandles;
use crate::value::{PrintVal, Trap, Value};
use memo_runtime::TableState;
use minic::ast::BinOp;
use minic::sema::Builtin;

/// Sentinel return pc marking `main`'s frame: a `Ret` through it halts.
const HALT: u32 = u32::MAX;

/// A suspended caller: where to resume and the frame window to restore.
#[derive(Debug, Clone, Copy)]
struct FrameRec {
    ret_pc: u32,
    frame: usize,
    stack_top: usize,
}

/// A live memo/profile region. Memo regions remember whether the table
/// was armed (probed) and where their key starts in the shared arena;
/// profile regions remember the entry cycle count.
#[derive(Debug, Clone, Copy)]
struct Region {
    memo: bool,
    id: u32,
    armed: bool,
    key_start: u32,
    entry_cycles: u64,
}

/// Runs a compiled module to completion. Engine-agnostic setup and the
/// outcome layout match `run_on_current_thread` in `interp` exactly.
pub(crate) fn run_bc(
    module: &Module,
    bc: &BcModule<'_>,
    config: RunConfig,
) -> Result<Outcome, Trap> {
    let globals_len = module.globals.len();
    let mut mem = Vec::with_capacity(globals_len + 4096);
    mem.extend_from_slice(&module.globals);

    let profiler = make_profiler(module);

    let tables = crate::tables::take_handles(
        config.tables,
        config.shared_tables,
        config.l1,
        module.table_count,
    );

    let mut m = BcMachine {
        module,
        bc,
        mem,
        frame: 0,
        stack_top: globals_len,
        stack_limit: globals_len + config.stack_cells,
        depth: 0,
        max_depth: config.max_depth,
        cycles: 0,
        max_cycles: config.max_cycles,
        cost: config.cost,
        input: config.input,
        input_pos: 0,
        output: Vec::new(),
        tables,
        table_words: 0,
        func_calls: vec![0; module.funcs.len()],
        loop_counts: vec![0; module.loop_origins.len()],
        branch_counts: vec![0; module.branch_origins.len() * 2],
        profiler,
        stack: Vec::with_capacity(256),
        frames: Vec::with_capacity(64),
        regions: Vec::with_capacity(16),
        key_arena: Vec::new(),
        out_scratch: Vec::new(),
        rec_scratch: Vec::new(),
        seen_scratch: Vec::new(),
        dep_rt: DepRuntime::new(module),
        fp_scratch: Vec::new(),
        validate: config.validate,
    };

    let ret = m.exec()?;
    let ret = match ret {
        Value::Int(v) => v,
        _ => 0,
    };
    let energy = config.energy.energy_joules(m.cycles, m.table_words);
    let (tables, l1) = m.tables.into_parts();
    Ok(Outcome {
        output: m.output,
        ret,
        cycles: m.cycles,
        seconds: cycles_to_seconds(m.cycles),
        energy_joules: energy,
        table_words: m.table_words,
        func_calls: m.func_calls,
        loop_counts: m.loop_counts,
        branch_counts: m.branch_counts,
        tables,
        l1,
        profile: m.profiler,
    })
}

struct BcMachine<'m, 'b> {
    module: &'m Module,
    bc: &'b BcModule<'m>,
    mem: Vec<Value>,
    /// Current frame base (absolute cell index).
    frame: usize,
    stack_top: usize,
    stack_limit: usize,
    depth: usize,
    max_depth: usize,
    cycles: u64,
    max_cycles: u64,
    cost: CostModel,
    input: Vec<i64>,
    input_pos: usize,
    output: Vec<PrintVal>,
    tables: TableHandles,
    table_words: u64,
    func_calls: Vec<u64>,
    loop_counts: Vec<u64>,
    branch_counts: Vec<u64>,
    profiler: Option<crate::profile::ProfileData>,
    /// Operand stack.
    stack: Vec<Value>,
    /// Suspended callers.
    frames: Vec<FrameRec>,
    /// Live memo/profile regions, across all frames (profile nesting is
    /// observed globally, like the tree-walker's `profile_stack`).
    regions: Vec<Region>,
    /// Memo/profile key words under construction; nested regions stack
    /// their keys and truncate back on exit, so capacity is reused.
    key_arena: Vec<u64>,
    /// Reused lookup-output buffer.
    out_scratch: Vec<u64>,
    /// Reused record buffer.
    rec_scratch: Vec<u64>,
    /// Reused ancestor-dedup buffer for profile probes.
    seen_scratch: Vec<u32>,
    /// Chunk-epoch chains and recording frames for fingerprinted memos.
    dep_rt: DepRuntime,
    /// Reused fingerprint buffer (cleared per record).
    fp_scratch: Vec<u64>,
    /// Whether probes of fingerprinted segments run validation.
    validate: bool,
}

impl BcMachine<'_, '_> {
    #[inline]
    fn tick(&mut self, n: u64) {
        self.cycles += n;
    }

    #[inline]
    fn check_budget(&self) -> Result<(), Trap> {
        if self.cycles > self.max_cycles {
            Err(Trap::CycleLimit)
        } else {
            Ok(())
        }
    }

    #[inline]
    fn charge_write(&mut self, c: WriteCost) {
        match c {
            WriteCost::Var => self.tick(self.cost.var_access),
            WriteCost::Mem => self.tick(self.cost.mem_access),
        }
    }

    #[inline]
    fn pop(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    #[inline]
    fn fast_arg(&self, a: &crate::bytecode::FastArg) -> Value {
        match a {
            crate::bytecode::FastArg::I(v) => Value::Int(*v),
            crate::bytecode::FastArg::Local(off) => self.mem[self.frame + *off as usize],
        }
    }

    /// Shared `++`/`--` read-modify-write (the `IncDecFin`/`IncDecLocal`
    /// bodies): charge `int_alu`, step, charge the write, push old/new
    /// (elided when `keep` is false — value-discarding position).
    fn inc_dec(
        &mut self,
        addr: usize,
        delta: i64,
        post: bool,
        ptr_stride: Option<i64>,
        write_cost: WriteCost,
        keep: bool,
    ) -> Result<(), Trap> {
        let old = mem_read(&self.mem, addr)?;
        if self.dep_rt.active() {
            self.dep_rt.note_read(addr);
        }
        self.tick(self.cost.int_alu);
        let new = match (old, ptr_stride) {
            (Value::Ptr(a), Some(stride)) => {
                Value::Ptr((a as i64).wrapping_add(delta * stride) as usize)
            }
            (Value::Int(v), _) => Value::Int(v.wrapping_add(delta)),
            (Value::Float(v), _) => Value::Float(v + delta as f64),
            (Value::Uninit, _) => return Err(Trap::UninitRead),
            (_, _) => return Err(Trap::TypeConfusion("function")),
        };
        self.charge_write(write_cost);
        mem_write(&mut self.mem, addr, new)?;
        self.dep_rt.note_write(addr, new);
        if keep {
            self.stack.push(if post { old } else { new });
        }
        Ok(())
    }

    /// Pushes a frame for `fid` (whose arguments are the top `nargs`
    /// operands) and returns its entry pc. Check/charge order matches the
    /// tree-walker's `call` exactly.
    fn enter_function(&mut self, fid: u32, nargs: usize, ret_pc: u32) -> Result<u32, Trap> {
        self.check_budget()?;
        if self.depth >= self.max_depth {
            return Err(Trap::StackOverflow);
        }
        self.depth += 1;
        self.tick(self.cost.call);
        self.func_calls[fid as usize] += 1;

        let func = &self.module.funcs[fid as usize];
        let new_base = self.stack_top;
        let new_top = new_base + func.frame as usize;
        if new_top > self.stack_limit {
            self.depth -= 1;
            return Err(Trap::StackOverflow);
        }
        if new_top > self.mem.len() {
            self.mem.resize(new_top, Value::Uninit);
        } else {
            self.mem[new_base..new_top].fill(Value::Uninit);
        }
        debug_assert_eq!(nargs, func.params.len(), "arity checked by sema");
        self.frames.push(FrameRec {
            ret_pc,
            frame: self.frame,
            stack_top: self.stack_top,
        });
        self.frame = new_base;
        self.stack_top = new_top;
        let argbase = self.stack.len() - nargs;
        for (i, &(off, coerce)) in func.params.iter().enumerate() {
            let v = coerce_value(self.stack[argbase + i], coerce)?;
            self.mem[new_base + off as usize] = v;
        }
        self.stack.truncate(argbase);
        Ok(self.bc.entries[fid as usize])
    }

    fn exec(&mut self) -> Result<Value, Trap> {
        let code: &[Instr] = &self.bc.code;
        let mut pc = self.enter_function(self.module.main, 0, HALT)?;
        loop {
            match &code[pc as usize] {
                Instr::PushI(v) => {
                    self.stack.push(Value::Int(*v));
                    pc += 1;
                }
                Instr::PushF(v) => {
                    self.stack.push(Value::Float(*v));
                    pc += 1;
                }
                Instr::PushFn(f) => {
                    self.stack.push(Value::Func(*f));
                    pc += 1;
                }
                Instr::PushUninit => {
                    self.stack.push(Value::Uninit);
                    pc += 1;
                }
                Instr::Pop => {
                    self.pop();
                    pc += 1;
                }
                Instr::ReadLocal(off) => {
                    self.tick(self.cost.var_access);
                    let v = self.mem[self.frame + *off as usize];
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::ReadGlobal(a) => {
                    self.tick(self.cost.mem_access);
                    let v = self.mem[*a as usize];
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(*a as usize);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::ReadMem => {
                    let a = self.pop().as_ptr()?;
                    self.tick(self.cost.mem_access);
                    let v = mem_read(&self.mem, a)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(a);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::PtrAddRead { stride, cost } => {
                    let i = self.pop().as_int()?;
                    let b = self.pop().as_ptr()?;
                    self.tick(u64::from(*cost));
                    let addr = (b as i64).wrapping_add(i.wrapping_mul(*stride)) as usize;
                    let v = mem_read(&self.mem, addr)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(addr);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::ReadIdx {
                    global,
                    base,
                    idx,
                    stride,
                    pre_cost,
                    post_cost,
                } => {
                    let iv = self.fast_arg(idx);
                    self.tick(u64::from(*pre_cost));
                    let i = iv.as_int()?;
                    self.tick(u64::from(*post_cost));
                    let b = if *global {
                        *base as usize
                    } else {
                        self.frame + *base as usize
                    };
                    let addr = (b as i64).wrapping_add(i.wrapping_mul(*stride)) as usize;
                    let v = mem_read(&self.mem, addr)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(addr);
                    }
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::AddrLocal(off) => {
                    self.stack.push(Value::Ptr(self.frame + *off as usize));
                    pc += 1;
                }
                Instr::AddrGlobal(a) => {
                    self.stack.push(Value::Ptr(*a as usize));
                    pc += 1;
                }
                Instr::CheckPtr => {
                    let a = self.pop().as_ptr()?;
                    self.stack.push(Value::Ptr(a));
                    pc += 1;
                }
                Instr::PtrAdd(stride) => {
                    let i = self.pop().as_int()?;
                    let b = self.pop().as_ptr()?;
                    self.tick(self.cost.int_alu);
                    let delta = i.wrapping_mul(*stride);
                    self.stack
                        .push(Value::Ptr((b as i64).wrapping_add(delta) as usize));
                    pc += 1;
                }
                Instr::PtrDiff(stride) => {
                    let y = self.pop().as_ptr()? as i64;
                    let x = self.pop().as_ptr()? as i64;
                    self.tick(self.cost.int_alu);
                    self.stack.push(Value::Int((x - y) / *stride));
                    pc += 1;
                }
                Instr::Unary(op, c) => {
                    let v = self.pop();
                    self.tick(*c);
                    self.stack.push(unary_value(*op, v)?);
                    pc += 1;
                }
                Instr::Binary(op, c) => {
                    let y = self.pop();
                    let x = self.pop();
                    self.tick(*c);
                    self.stack.push(binary_value(*op, x, y)?);
                    pc += 1;
                }
                Instr::BinaryFast { op, a, b, cost } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(*cost);
                    self.stack.push(binary_value(*op, x, y)?);
                    pc += 1;
                }
                Instr::Truthy => {
                    let v = self.pop().truthy()?;
                    self.stack.push(Value::Int(i64::from(v)));
                    pc += 1;
                }
                Instr::Tick(n) => {
                    self.tick(*n);
                    pc += 1;
                }
                Instr::ShortCircuit { and, end } => {
                    let x = self.pop().truthy()?;
                    let decided = if *and { !x } else { x };
                    if decided {
                        self.stack.push(Value::Int(i64::from(x)));
                        pc = *end;
                    } else {
                        pc += 1;
                    }
                }
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfFalse(t) => {
                    if self.pop().truthy()? {
                        pc += 1;
                    } else {
                        pc = *t;
                    }
                }
                Instr::JumpIfTrue(t) => {
                    if self.pop().truthy()? {
                        pc = *t;
                    } else {
                        pc += 1;
                    }
                }
                Instr::JumpIfFalseCmp {
                    op,
                    a,
                    b,
                    cost,
                    target,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    if binary_value(*op, x, y)?.truthy()? {
                        pc += 1;
                    } else {
                        pc = *target;
                    }
                }
                Instr::JumpIfTrueCmp {
                    op,
                    a,
                    b,
                    cost,
                    target,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    if binary_value(*op, x, y)?.truthy()? {
                        pc = *target;
                    } else {
                        pc += 1;
                    }
                }
                Instr::BranchIf {
                    branch_idx,
                    else_target,
                } => {
                    let taken = self.pop().truthy()?;
                    let slot = (*branch_idx as usize) * 2 + usize::from(!taken);
                    self.branch_counts[slot] += 1;
                    if taken {
                        pc += 1;
                    } else {
                        pc = *else_target;
                    }
                }
                Instr::BranchIfCmp {
                    op,
                    a,
                    b,
                    cost,
                    branch_idx,
                    else_target,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    let taken = binary_value(*op, x, y)?.truthy()?;
                    let slot = (*branch_idx as usize) * 2 + usize::from(!taken);
                    self.branch_counts[slot] += 1;
                    if taken {
                        pc += 1;
                    } else {
                        pc = *else_target;
                    }
                }
                Instr::WhileHead(c) => {
                    self.check_budget()?;
                    self.tick(*c);
                    pc += 1;
                }
                Instr::LoopCond { loop_idx, end } => {
                    if self.pop().truthy()? {
                        self.loop_counts[*loop_idx as usize] += 1;
                        pc += 1;
                    } else {
                        pc = *end;
                    }
                }
                Instr::LoopCondCmp {
                    op,
                    a,
                    b,
                    cost,
                    loop_idx,
                    end,
                } => {
                    let x = self.fast_arg(a);
                    let y = self.fast_arg(b);
                    self.tick(u64::from(*cost));
                    if binary_value(*op, x, y)?.truthy()? {
                        self.loop_counts[*loop_idx as usize] += 1;
                        pc += 1;
                    } else {
                        pc = *end;
                    }
                }
                Instr::ForHead(c) => {
                    self.check_budget()?;
                    self.tick(*c);
                    pc += 1;
                }
                Instr::DoHead { loop_idx, cost } => {
                    self.check_budget()?;
                    self.loop_counts[*loop_idx as usize] += 1;
                    self.tick(*cost);
                    pc += 1;
                }
                Instr::LoopCount(loop_idx) => {
                    self.loop_counts[*loop_idx as usize] += 1;
                    pc += 1;
                }
                Instr::DeclStore { slot, coerce } => {
                    let v = coerce_value(self.pop(), *coerce)?;
                    self.tick(self.cost.var_access);
                    let addr = self.frame + *slot as usize;
                    self.mem[addr] = v;
                    pc += 1;
                }
                Instr::Store { coerce, write_cost } => {
                    let v = self.pop();
                    let addr = self.pop().as_ptr()?;
                    let v = coerce_value(v, *coerce)?;
                    self.charge_write(*write_cost);
                    mem_write(&mut self.mem, addr, v)?;
                    self.dep_rt.note_write(addr, v);
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::StoreLocal {
                    slot,
                    coerce,
                    write_cost,
                    keep,
                } => {
                    let v = coerce_value(self.pop(), *coerce)?;
                    self.charge_write(*write_cost);
                    mem_write(&mut self.mem, self.frame + *slot as usize, v)?;
                    if *keep {
                        self.stack.push(v);
                    }
                    pc += 1;
                }
                Instr::LoadDupAddr => {
                    let addr = self.pop().as_ptr()?;
                    let old = mem_read(&self.mem, addr)?;
                    if self.dep_rt.active() {
                        self.dep_rt.note_read(addr);
                    }
                    self.stack.push(Value::Ptr(addr));
                    self.stack.push(old);
                    pc += 1;
                }
                Instr::AssignOpFin {
                    op,
                    cost,
                    coerce,
                    ptr_stride,
                    write_cost,
                } => {
                    let rhs = self.pop();
                    let old = self.pop();
                    let addr = self.pop().as_ptr()?;
                    self.tick(*cost);
                    let new = match ptr_stride {
                        Some(stride) => {
                            let base = old.as_ptr()? as i64;
                            let step = rhs.as_int()?.wrapping_mul(*stride);
                            let delta = if *op == BinOp::Sub { -step } else { step };
                            Value::Ptr(base.wrapping_add(delta) as usize)
                        }
                        None => coerce_value(binary_value(*op, old, rhs)?, *coerce)?,
                    };
                    self.charge_write(*write_cost);
                    mem_write(&mut self.mem, addr, new)?;
                    self.dep_rt.note_write(addr, new);
                    self.stack.push(new);
                    pc += 1;
                }
                Instr::IncDecFin {
                    delta,
                    post,
                    ptr_stride,
                    write_cost,
                } => {
                    let addr = self.pop().as_ptr()?;
                    self.inc_dec(addr, *delta, *post, *ptr_stride, *write_cost, true)?;
                    pc += 1;
                }
                Instr::IncDecLocal {
                    slot,
                    delta,
                    post,
                    ptr_stride,
                    write_cost,
                    keep,
                } => {
                    let addr = self.frame + *slot as usize;
                    self.inc_dec(addr, *delta, *post, *ptr_stride, *write_cost, *keep)?;
                    pc += 1;
                }
                Instr::CoerceVal(c) => {
                    let v = coerce_value(self.pop(), *c)?;
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::CallFunc(fid) => {
                    let nargs = self.module.funcs[*fid as usize].params.len();
                    pc = self.enter_function(*fid, nargs, pc + 1)?;
                }
                Instr::CallBuiltin { builtin, nargs } => {
                    self.tick(self.cost.builtin);
                    let base = self.stack.len() - *nargs as usize;
                    let result = match builtin {
                        Builtin::Print => {
                            let v = match self.stack[base] {
                                Value::Int(v) => PrintVal::Int(v),
                                Value::Float(v) => PrintVal::Float(v),
                                Value::Uninit => return Err(Trap::UninitRead),
                                _ => return Err(Trap::TypeConfusion("pointer")),
                            };
                            self.output.push(v);
                            Value::Uninit
                        }
                        Builtin::Input => {
                            let v = self.input.get(self.input_pos).copied().unwrap_or(0);
                            self.input_pos += 1;
                            Value::Int(v)
                        }
                        Builtin::Eof => Value::Int(i64::from(self.input_pos >= self.input.len())),
                        Builtin::Assert => {
                            if self.stack[base].truthy()? {
                                Value::Uninit
                            } else {
                                return Err(Trap::AssertFailed);
                            }
                        }
                    };
                    self.stack.truncate(base);
                    self.stack.push(result);
                    pc += 1;
                }
                Instr::CallIndirect(nargs) => match self.pop() {
                    Value::Func(fid) => {
                        pc = self.enter_function(fid, *nargs as usize, pc + 1)?;
                    }
                    Value::Uninit => return Err(Trap::UninitRead),
                    _ => return Err(Trap::NotAFunction),
                },
                Instr::CastInt => {
                    let v = self.pop();
                    self.tick(self.cost.int_alu);
                    let v = match v {
                        Value::Int(x) => Value::Int(x),
                        Value::Float(x) => Value::Int(x as i64),
                        Value::Ptr(a) => Value::Int(a as i64),
                        Value::Uninit => return Err(Trap::UninitRead),
                        Value::Func(_) => return Err(Trap::TypeConfusion("function")),
                    };
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::CastFloat => {
                    let v = self.pop();
                    self.tick(self.cost.float_alu);
                    let v = match v {
                        Value::Int(x) => Value::Float(x as f64),
                        Value::Float(x) => Value::Float(x),
                        Value::Uninit => return Err(Trap::UninitRead),
                        _ => return Err(Trap::TypeConfusion("pointer")),
                    };
                    self.stack.push(v);
                    pc += 1;
                }
                Instr::Ret => {
                    let v = self.pop();
                    let fr = self.frames.pop().expect("call frame");
                    self.frame = fr.frame;
                    self.stack_top = fr.stack_top;
                    self.depth -= 1;
                    if fr.ret_pc == HALT {
                        return Ok(v);
                    }
                    self.stack.push(v);
                    pc = fr.ret_pc;
                }
                Instr::MemoEnter { id, hit_target } => {
                    pc = self.memo_enter(*id, *hit_target, pc)?;
                }
                Instr::MemoExitNormal(id) => {
                    self.memo_exit_normal(*id)?;
                    pc += 1;
                }
                Instr::MemoExitRet(id) => {
                    self.memo_exit_ret(*id)?;
                    pc += 1;
                }
                Instr::MemoExitBreak(id) => {
                    self.memo_exit_break(*id)?;
                    pc += 1;
                }
                Instr::ProfileEnter(id) => {
                    self.profile_enter(*id)?;
                    pc += 1;
                }
                Instr::ProfileExit(id) => {
                    self.profile_exit(*id);
                    pc += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Memo and profile regions
    // ------------------------------------------------------------------

    /// Memo segment entry: mirrors `exec_memo` up to the hit/miss fork.
    /// Returns the next pc (`hit_target` on a hit, fall-through else).
    fn memo_enter(&mut self, id: u32, hit_target: u32, pc: u32) -> Result<u32, Trap> {
        let m = self.bc.memos[id as usize];
        // Bypassed table: pay only the guard branch, run the body with an
        // unarmed region; the forced-miss probe advances the epoch clock.
        // Shared stores never take this path — their guard state is per
        // shard and unknown before the key exists (`TableHandles::state`).
        if self.tables.state(m.table as usize) == TableState::Bypassed {
            self.tick(self.cost.branch);
            self.out_scratch.clear();
            let hit = self.tables.lookup(
                m.table as usize,
                m.slot as usize,
                &[],
                &mut self.out_scratch,
            );
            debug_assert!(!hit, "bypassed lookups are forced misses");
            self.regions.push(Region {
                memo: true,
                id,
                armed: false,
                key_start: self.key_arena.len() as u32,
                entry_cycles: 0,
            });
            return Ok(pc + 1);
        }

        let ks = self.key_arena.len();
        for op in &m.inputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.key_arena,
                &mut self.dep_rt,
            )?;
        }
        self.tick(self.bc.memo_cost[id as usize]);
        self.table_words += (m.key_words + m.out_words) as u64;

        // Try-mark-green probe: identical charge and validator contract to
        // the tree-walker's `exec_memo` (fp costs come from the shared
        // `CostModel`, computed at runtime — `memo_cost` stays exact-match).
        let fp_words = m.fp_words as usize;
        let validating = fp_words > 0 && self.validate;
        if validating {
            self.tick(self.cost.fp_probe_cost(fp_words));
            self.table_words += fp_words as u64;
        }
        self.out_scratch.clear();
        let hit = {
            let dep_rt = &self.dep_rt;
            let mut validator = |fp: &[u64]| dep_rt.validate(&m.deps, fp);
            self.tables.lookup_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &mut self.out_scratch,
                m.green,
                if validating {
                    Some(&mut validator)
                } else {
                    None
                },
            )
        };
        if hit {
            self.key_arena.truncate(ks);
            if self.dep_rt.active() && !m.deps.is_empty() {
                self.dep_rt.note_nested_hit(&m.deps);
            }
            let mut pos = 0usize;
            for op in &m.outputs {
                let n = op.words as usize;
                write_operand_from(
                    &mut self.mem,
                    self.frame,
                    op,
                    &self.out_scratch[pos..pos + n],
                    &mut self.dep_rt,
                )?;
                pos += n;
            }
            if let Some(is_float) = m.ret {
                let w = self.out_scratch[pos];
                self.stack.push(if is_float {
                    Value::Float(f64::from_bits(w))
                } else {
                    Value::Int(w as i64)
                });
            }
            Ok(hit_target)
        } else {
            if fp_words > 0 {
                self.dep_rt.push_frame();
            }
            self.regions.push(Region {
                memo: true,
                id,
                armed: true,
                key_start: ks as u32,
                entry_cycles: 0,
            });
            Ok(pc + 1)
        }
    }

    /// Reads the segment's outputs into `rec_scratch` (trap parity: the
    /// tree-walker reads them on every miss exit, recording or not).
    fn read_outputs(&mut self, id: u32) -> Result<(), Trap> {
        let m = self.bc.memos[id as usize];
        self.rec_scratch.clear();
        for op in &m.outputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.rec_scratch,
                &mut self.dep_rt,
            )?;
        }
        Ok(())
    }

    /// Memo body fell through its end (`Flow::Normal` in the tree-walker).
    fn memo_exit_normal(&mut self, id: u32) -> Result<(), Trap> {
        let r = self.regions.pop().expect("memo region");
        debug_assert!(r.memo && r.id == id, "region stack out of sync");
        if !r.armed {
            return Ok(());
        }
        self.read_outputs(id)?;
        let m = self.bc.memos[id as usize];
        let tracking = m.fp_words > 0;
        if m.ret.is_none() {
            self.fp_scratch.clear();
            if tracking {
                self.dep_rt
                    .pop_frame_build_fp(&m.deps, &mut self.fp_scratch);
                self.tick(self.cost.fp_record_cost(m.fp_words as usize));
                self.table_words += m.fp_words as u64;
            }
            self.table_words += m.out_words as u64;
            let ks = r.key_start as usize;
            self.tables.record_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &self.rec_scratch,
                &self.fp_scratch,
            );
        } else if tracking {
            self.dep_rt.pop_frame();
        }
        // A body that memoizes a return value but fell through records
        // nothing (no bogus return slot), same as the tree-walker.
        self.key_arena.truncate(r.key_start as usize);
        Ok(())
    }

    /// Memo region unwound by `return`; the return value is on top of the
    /// operand stack (peeked, not popped — outer regions need it too).
    fn memo_exit_ret(&mut self, id: u32) -> Result<(), Trap> {
        let r = self.regions.pop().expect("memo region");
        debug_assert!(r.memo && r.id == id, "region stack out of sync");
        if !r.armed {
            return Ok(());
        }
        self.read_outputs(id)?;
        let m = self.bc.memos[id as usize];
        let tracking = m.fp_words > 0;
        if let Some(is_float) = m.ret {
            let v = *self.stack.last().expect("return value");
            let w = if is_float {
                v.as_float()?.to_bits()
            } else {
                v.as_int()? as u64
            };
            self.rec_scratch.push(w);
            self.fp_scratch.clear();
            if tracking {
                self.dep_rt
                    .pop_frame_build_fp(&m.deps, &mut self.fp_scratch);
                self.tick(self.cost.fp_record_cost(m.fp_words as usize));
                self.table_words += m.fp_words as u64;
            }
            self.table_words += m.out_words as u64;
            let ks = r.key_start as usize;
            self.tables.record_dep(
                m.table as usize,
                m.slot as usize,
                &self.key_arena[ks..],
                &self.rec_scratch,
                &self.fp_scratch,
            );
        } else if tracking {
            self.dep_rt.pop_frame();
        }
        // ret=None with a Return flow: outputs were read (trap parity)
        // but nothing is recorded, same as the tree-walker's `_` arm.
        self.key_arena.truncate(r.key_start as usize);
        Ok(())
    }

    /// Memo region unwound by `break`/`continue`: outputs are read (they
    /// can trap) but never recorded.
    fn memo_exit_break(&mut self, id: u32) -> Result<(), Trap> {
        let r = self.regions.pop().expect("memo region");
        debug_assert!(r.memo && r.id == id, "region stack out of sync");
        if !r.armed {
            return Ok(());
        }
        self.read_outputs(id)?;
        if self.bc.memos[id as usize].fp_words > 0 {
            self.dep_rt.pop_frame();
        }
        self.key_arena.truncate(r.key_start as usize);
        Ok(())
    }

    fn profile_enter(&mut self, id: u32) -> Result<(), Trap> {
        let p = self.bc.profiles[id as usize];
        let ks = self.key_arena.len();
        for op in &p.inputs {
            read_operand_into(
                &self.mem,
                self.frame,
                op,
                &mut self.key_arena,
                &mut self.dep_rt,
            )?;
        }
        {
            let prof = self.profiler.as_mut().expect("profiler present");
            let seg = &mut prof.segs[p.seg as usize];
            seg.n += 1;
            let key = &self.key_arena[ks..];
            if let Some(c) = seg.distinct.get_mut(key) {
                *c += 1;
            } else {
                seg.distinct.insert(key.into(), 1);
            }
            // Count this execution under each distinct active ancestor
            // (profile regions only, across all frames — the global
            // nesting view the tree-walker's profile_stack provides).
            self.seen_scratch.clear();
            for r in &self.regions {
                if r.memo {
                    continue;
                }
                let outer = self.bc.profiles[r.id as usize].seg;
                if outer != p.seg && !self.seen_scratch.contains(&outer) {
                    self.seen_scratch.push(outer);
                    *seg.within.entry(outer).or_insert(0) += 1;
                }
            }
        }
        self.key_arena.truncate(ks);
        self.regions.push(Region {
            memo: false,
            id,
            armed: false,
            key_start: 0,
            entry_cycles: self.cycles,
        });
        Ok(())
    }

    fn profile_exit(&mut self, id: u32) {
        let r = self.regions.pop().expect("profile region");
        debug_assert!(!r.memo && r.id == id, "region stack out of sync");
        let spent = self.cycles - r.entry_cycles;
        let seg = self.bc.profiles[id as usize].seg;
        if let Some(prof) = self.profiler.as_mut() {
            prof.segs[seg as usize].body_cycles += spent;
        }
    }
}
