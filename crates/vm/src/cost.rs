//! Cycle cost models standing in for the paper's StrongARM SA-1110 iPAQ.
//!
//! The paper measures wall-clock time on real hardware at two GCC
//! optimization levels (Tables 6 and 7). Our substrate is an interpreter,
//! so absolute times are meaningless; what the evaluation needs is a
//! *deterministic cycle account* whose ratios behave like `-O0` and `-O3`
//! binaries:
//!
//! - under **O0** every scalar variable access pays a memory access
//!   (GCC -O0 keeps locals on the stack), and loop/call overheads are
//!   charged in full;
//! - under **O3** scalar locals live in registers (variable access is
//!   free), and loop/call overheads shrink.
//!
//! Both models charge the *same* memoization overhead per table probe —
//! hashing is memory-bound and benefits little from register allocation —
//! which is why the paper's speedups shrink from Table 6 to Table 7: the
//! baseline gets faster while the table probe does not.

/// The two modelled compiler optimization levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// GCC `-O0`: stack-resident locals, full overheads.
    O0,
    /// GCC `-O3`: register-resident scalars, reduced overheads.
    O3,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O3 => write!(f, "O3"),
        }
    }
}

/// Per-operation cycle costs charged by the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Which optimization level this model represents.
    pub level: OptLevel,
    /// Reading/writing a scalar local or global (0 under O3 for locals).
    pub var_access: u64,
    /// Reading/writing through a pointer or array index (always a memory
    /// access).
    pub mem_access: u64,
    /// Integer ALU op (+, -, bitwise, shifts, comparisons).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide/remainder.
    pub int_div: u64,
    /// Float add/sub/compare.
    pub float_alu: u64,
    /// Float multiply.
    pub float_mul: u64,
    /// Float divide.
    pub float_div: u64,
    /// Taken/untaken branch bookkeeping per condition evaluated.
    pub branch: u64,
    /// Per-iteration loop overhead (back edge + bookkeeping).
    pub loop_overhead: u64,
    /// Call/return overhead per function call.
    pub call: u64,
    /// Builtin `input`/`print` overhead.
    pub builtin: u64,
    /// Fixed cycles per table probe: hash + modularization + slot fetch.
    pub memo_base: u64,
    /// Cycles per key word: build the concatenated key and compare it.
    pub memo_per_key_word: u64,
    /// Cycles per output word copied (table→vars on a hit, vars→table on a
    /// miss — the paper notes a hit and a miss do the same extra work).
    pub memo_per_out_word: u64,
    /// Fixed cycles for one try-mark-green fingerprint validation (epoch
    /// sum recomputation setup). Charged only when a probe carries a
    /// validator; memory-bound like hashing, so identical under O0/O3.
    pub fp_probe_base: u64,
    /// Cycles per fingerprint word read (probe) or written (record).
    pub fp_per_word: u64,
}

impl CostModel {
    /// The `-O0`-like model.
    pub fn o0() -> Self {
        CostModel {
            level: OptLevel::O0,
            var_access: 2,
            mem_access: 3,
            int_alu: 1,
            int_mul: 4,
            int_div: 20,
            float_alu: 4,
            float_mul: 8,
            float_div: 30,
            branch: 2,
            loop_overhead: 4,
            call: 12,
            builtin: 8,
            memo_base: 24,
            memo_per_key_word: 10,
            memo_per_out_word: 8,
            fp_probe_base: 16,
            fp_per_word: 4,
        }
    }

    /// The `-O3`-like model.
    pub fn o3() -> Self {
        CostModel {
            level: OptLevel::O3,
            var_access: 0,
            mem_access: 3,
            int_alu: 1,
            int_mul: 3,
            int_div: 12,
            float_alu: 2,
            float_mul: 4,
            float_div: 18,
            branch: 1,
            loop_overhead: 1,
            call: 5,
            builtin: 8,
            memo_base: 24,
            memo_per_key_word: 10,
            memo_per_out_word: 8,
            fp_probe_base: 16,
            fp_per_word: 4,
        }
    }

    /// Builds the model for `level`.
    pub fn for_level(level: OptLevel) -> Self {
        match level {
            OptLevel::O0 => Self::o0(),
            OptLevel::O3 => Self::o3(),
        }
    }

    /// Extra cycles charged for one memo-table probe (identical for hits
    /// and misses, as in the paper's overhead accounting).
    pub fn memo_overhead(&self, key_words: usize, out_words: usize) -> u64 {
        self.memo_base
            + self.memo_per_key_word * key_words as u64
            + self.memo_per_out_word * out_words as u64
    }

    /// Extra cycles charged when a probe validates an entry fingerprint
    /// (chunk-mask walk + chained-epoch sum compare). Charged on hits and
    /// misses alike whenever validation is enabled for the segment.
    pub fn fp_probe_cost(&self, fp_words: usize) -> u64 {
        self.fp_probe_base + self.fp_per_word * fp_words as u64
    }

    /// Extra cycles charged when a miss records an entry fingerprint.
    pub fn fp_record_cost(&self, fp_words: usize) -> u64 {
        self.fp_per_word * fp_words as u64
    }
}

/// The modelled processor clock, used to convert cycles to seconds:
/// 206 MHz, the iPAQ 3650's StrongARM SA-1110.
pub const CLOCK_HZ: f64 = 206.0e6;

/// Converts a cycle count to modelled seconds at [`CLOCK_HZ`].
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ
}

/// Converts a cycle count to modelled microseconds (the unit of the
/// paper's Table 3 granularity/overhead columns).
pub fn cycles_to_micros(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o3_is_uniformly_cheaper_or_equal() {
        let o0 = CostModel::o0();
        let o3 = CostModel::o3();
        assert!(o3.var_access <= o0.var_access);
        assert!(o3.int_mul <= o0.int_mul);
        assert!(o3.loop_overhead <= o0.loop_overhead);
        assert!(o3.call <= o0.call);
        // But the memo probe costs the same: this is what compresses
        // speedups between Table 6 and Table 7.
        assert_eq!(o3.memo_overhead(1, 1), o0.memo_overhead(1, 1));
        assert_eq!(o3.fp_probe_cost(2), o0.fp_probe_cost(2));
        assert_eq!(o3.fp_record_cost(2), o0.fp_record_cost(2));
    }

    #[test]
    fn memo_overhead_scales_with_widths() {
        let m = CostModel::o0();
        let small = m.memo_overhead(1, 1);
        let big = m.memo_overhead(64, 64);
        assert!(big > small * 10, "64-word blocks must cost much more");
        assert_eq!(
            m.memo_overhead(2, 3) - m.memo_overhead(1, 3),
            m.memo_per_key_word
        );
    }

    #[test]
    fn clock_conversions() {
        assert!((cycles_to_seconds(206_000_000) - 1.0).abs() < 1e-12);
        assert!((cycles_to_micros(206) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn for_level_round_trips() {
        assert_eq!(CostModel::for_level(OptLevel::O0).level, OptLevel::O0);
        assert_eq!(CostModel::for_level(OptLevel::O3).level, OptLevel::O3);
        assert_eq!(OptLevel::O3.to_string(), "O3");
    }
}
