//! Property tests for the statistics invariants every table kind must
//! uphold under arbitrary operation sequences:
//!
//! - `hits + misses == accesses` (every lookup is exactly one of the two);
//! - `collisions <= evictions <= insertions` (a collision is an eviction,
//!   an eviction is an insertion);
//! - the counters delivered to the telemetry windows sum to the same
//!   totals as the table's own aggregate stats.

use memo_runtime::{GuardPolicy, MemoTable, TableSpec, TableStats};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Record(u64, u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..40u64).prop_map(Op::Lookup),
            (0..40u64, 0..1000u64).prop_map(|(k, v)| Op::Record(k, v)),
        ],
        0..300,
    )
}

fn spec(slots: usize) -> TableSpec {
    TableSpec {
        slots,
        key_words: 1,
        out_words: vec![1],
    }
}

fn check_invariants(stats: &TableStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        stats.hits + stats.misses,
        stats.accesses,
        "every lookup is exactly a hit or a miss"
    );
    prop_assert!(stats.collisions <= stats.evictions);
    prop_assert!(stats.evictions <= stats.insertions);
    prop_assert!(stats.hit_ratio() >= 0.0 && stats.hit_ratio() <= 1.0);
    // Collision rate is per *lookup*; an arbitrary sequence may record
    // (and collide) more often than it looks up, so only non-negativity
    // and finiteness are unconditional. The ≤ 1 bound holds under the
    // VM's probe-then-record discipline (separate property below).
    prop_assert!(stats.collision_rate() >= 0.0 && stats.collision_rate().is_finite());
    Ok(())
}

fn drive(table: &mut MemoTable, ops: &[Op]) {
    let mut out = Vec::new();
    for op in ops {
        match *op {
            Op::Lookup(k) => {
                table.lookup(0, &[k], &mut out);
            }
            Op::Record(k, v) => table.record(0, &[k], &[v]),
        }
    }
}

proptest! {
    /// The invariants hold for all three kinds, at sizes small enough to
    /// force collisions and large enough to avoid them.
    #[test]
    fn stats_invariants_hold_on_all_kinds(ops in arb_ops(), small in proptest::bool::ANY) {
        let slots = if small { 4 } else { 64 };
        for mut table in [
            MemoTable::try_direct(&spec(slots)).expect("valid spec"),
            MemoTable::try_lru(&spec(slots)).expect("valid spec"),
            MemoTable::try_merged(&spec(slots)).expect("valid spec"),
        ] {
            drive(&mut table, &ops);
            check_invariants(table.stats())?;
        }
    }

    /// Telemetry windows partition the run: closed epochs plus the open
    /// window sum to the table's aggregate counters, on every kind.
    #[test]
    fn telemetry_windows_sum_to_aggregate_stats(ops in arb_ops()) {
        for mut table in [
            MemoTable::try_direct(&spec(8)).expect("valid spec"),
            MemoTable::try_lru(&spec(8)).expect("valid spec"),
            MemoTable::try_merged(&spec(8)).expect("valid spec"),
        ] {
            table.set_policy(GuardPolicy { epoch_len: 16, ..GuardPolicy::default() });
            drive(&mut table, &ops);
            let mut summed = TableStats::default();
            for e in table.telemetry().epochs() {
                summed.merge(&e.stats);
            }
            summed.merge(table.telemetry().window());
            prop_assert_eq!(&summed, table.stats());
            // Per-segment attribution covers the same totals (slot 0 only
            // for unmerged specs).
            let mut per_seg = TableStats::default();
            for s in table.telemetry().per_segment() {
                per_seg.merge(s);
            }
            prop_assert_eq!(&per_seg, table.stats());
            check_invariants(table.stats())?;
        }
    }

    /// Under the transformed code's discipline — record only after a
    /// missed lookup — collisions cannot outnumber accesses, so the
    /// collision rate is a true fraction.
    #[test]
    fn probe_then_record_bounds_the_collision_rate(keys in prop::collection::vec(0..40u64, 0..300)) {
        for mut table in [
            MemoTable::try_direct(&spec(4)).expect("valid spec"),
            MemoTable::try_lru(&spec(4)).expect("valid spec"),
            MemoTable::try_merged(&spec(4)).expect("valid spec"),
        ] {
            let mut out = Vec::new();
            for &k in &keys {
                if !table.lookup(0, &[k], &mut out) {
                    table.record(0, &[k], &[k ^ 0xFFFF]);
                }
            }
            let s = table.stats();
            prop_assert!(s.collisions <= s.misses);
            prop_assert!(s.collision_rate() <= 1.0);
            check_invariants(s)?;
        }
    }
}
