//! Property tests: memo tables against reference models.
//!
//! - A `DirectTable` big enough to avoid collisions must behave exactly
//!   like a `BTreeMap`.
//! - An `LruTable` must behave exactly like a naive recency-list model.
//! - A `MergedTable` over one segment must agree with a `DirectTable`
//!   driven by the same operations.

use memo_runtime::{DirectTable, LruTable, MergedTable};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Record(u64, u64),
}

fn arb_ops(key_space: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..key_space).prop_map(Op::Lookup),
            (0..key_space, 0..1000u64).prop_map(|(k, v)| Op::Record(k, v)),
        ],
        0..200,
    )
}

proptest! {
    /// With table slots ≥ key space, `key mod slots` is injective, so the
    /// direct table is collision-free and must match a map exactly.
    #[test]
    fn direct_table_matches_btreemap(ops in arb_ops(64)) {
        let mut table = DirectTable::new(64, 1, 1);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut out = Vec::new();
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    let hit = table.lookup(&[k], &mut out);
                    match model.get(&k) {
                        Some(&v) => {
                            prop_assert!(hit);
                            prop_assert_eq!(&out[..], &[v]);
                        }
                        None => prop_assert!(!hit),
                    }
                }
                Op::Record(k, v) => {
                    table.record(&[k], &[v]);
                    model.insert(k, v);
                }
            }
        }
        prop_assert_eq!(table.stats().collisions, 0);
        prop_assert_eq!(table.occupancy(), model.len());
    }

    /// LRU table versus a straightforward recency-list model.
    #[test]
    fn lru_table_matches_recency_model(ops in arb_ops(16), cap in 1usize..8) {
        let mut table = LruTable::new(cap, 1, 1);
        // Model: most-recent-first vec of (key, value).
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut out = Vec::new();
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    let hit = table.lookup(&[k], &mut out);
                    let pos = model.iter().position(|&(mk, _)| mk == k);
                    match pos {
                        Some(p) => {
                            prop_assert!(hit);
                            let e = model.remove(p);
                            prop_assert_eq!(&out[..], &[e.1]);
                            model.insert(0, e);
                        }
                        None => prop_assert!(!hit),
                    }
                }
                Op::Record(k, v) => {
                    table.record(&[k], &[v]);
                    if let Some(p) = model.iter().position(|&(mk, _)| mk == k) {
                        model.remove(p);
                    } else if model.len() == cap {
                        model.pop();
                    }
                    model.insert(0, (k, v));
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
    }

    /// A single-segment merged table behaves like a direct table.
    #[test]
    fn merged_single_slot_matches_direct(ops in arb_ops(64)) {
        let mut merged = MergedTable::new(64, 1, &[1]);
        let mut direct = DirectTable::new(64, 1, 1);
        let mut out_m = Vec::new();
        let mut out_d = Vec::new();
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    let hm = merged.lookup(0, &[k], &mut out_m);
                    let hd = direct.lookup(&[k], &mut out_d);
                    prop_assert_eq!(hm, hd);
                    if hm {
                        prop_assert_eq!(&out_m, &out_d);
                    }
                }
                Op::Record(k, v) => {
                    merged.record(0, &[k], &[v]);
                    direct.record(&[k], &[v]);
                }
            }
        }
        prop_assert_eq!(merged.stats().hits, direct.stats().hits);
        prop_assert_eq!(merged.stats().misses, direct.stats().misses);
    }

    /// Hit ratio never exceeds the theoretical maximum 1 - DIP/N for a
    /// collision-free table replaying any access pattern where every miss
    /// is followed by a record.
    #[test]
    fn hit_ratio_bounded_by_reuse_rate(keys in prop::collection::vec(0u64..32, 1..300)) {
        let mut table = DirectTable::new(1024, 1, 1);
        let mut out = Vec::new();
        let mut distinct = std::collections::BTreeSet::new();
        for &k in &keys {
            if !table.lookup(&[k], &mut out) {
                table.record(&[k], &[k]);
            }
            distinct.insert(k);
        }
        let n = keys.len() as f64;
        let dip = distinct.len() as f64;
        let max_rate = 1.0 - dip / n;
        prop_assert!(table.stats().hit_ratio() <= max_rate + 1e-12);
        // And with no collisions the bound is met exactly.
        prop_assert!((table.stats().hit_ratio() - max_rate).abs() < 1e-12);
    }
}
