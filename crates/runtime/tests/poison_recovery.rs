//! Regression test for shard-poison recovery (DESIGN.md §8f).
//!
//! A worker that panics while holding a shard lock poisons that shard's
//! mutex. The store must contain the blast radius: every *other* shard
//! keeps serving its entries untouched, and the next acquisition of the
//! poisoned shard recovers it into an empty-but-valid state (forgetting
//! cached results is always sound; serving a half-written entry is not).

use memo_runtime::{silence_injected_panics, ShardedTable, TableSpec};

fn spec() -> TableSpec {
    TableSpec {
        slots: 64,
        key_words: 1,
        out_words: vec![1],
    }
}

/// Fills the store with one entry per key and returns, per shard, one
/// resident `(key, output)` pair to check back later. The *last* key
/// recorded into each shard is the one guaranteed still resident — a
/// direct-addressed shard overwrites on slot collisions.
fn populate(t: &ShardedTable, keys: u64) -> Vec<(u64, u64)> {
    let mut per_shard: Vec<Option<(u64, u64)>> = vec![None; t.shard_count()];
    for k in 0..keys {
        t.record(0, &[k], &[k * 10 + 1]);
        per_shard[t.shard_of(&[k])] = Some((k, k * 10 + 1));
    }
    per_shard.into_iter().flatten().collect()
}

#[test]
fn poisoned_shard_recovers_empty_while_others_keep_serving() {
    silence_injected_panics();
    let t = ShardedTable::try_from_spec(&spec(), 4).expect("valid spec");
    let resident = populate(&t, 64);
    assert!(resident.len() > 1, "need at least two populated shards");

    let victim_key = resident[0].0;
    let victim_shard = t.shard_of(&[victim_key]);
    t.poison_shard(victim_shard);

    // Every shard but the victim still serves its entry.
    let mut out = Vec::new();
    for &(k, v) in &resident[1..] {
        assert_ne!(t.shard_of(&[k]), victim_shard, "populate picked per shard");
        assert!(t.lookup(0, &[k], &mut out), "healthy shard lost key {k}");
        assert_eq!(out, vec![v]);
    }

    // The victim recovers on its next acquisition: a miss (the shard
    // restarts empty), counted as exactly one recovery.
    assert!(
        !t.lookup(0, &[victim_key], &mut out),
        "a poisoned shard served a possibly half-written entry"
    );
    assert_eq!(t.poison_recoveries(), 1);

    // Recovered means *valid*, not just alive: the shard accepts new
    // entries and serves them, and no further recoveries are charged.
    t.record(0, &[victim_key], &[777]);
    assert!(t.lookup(0, &[victim_key], &mut out));
    assert_eq!(out, vec![777]);
    assert_eq!(t.poison_recoveries(), 1);
}

#[test]
fn concurrent_readers_survive_a_poisoned_shard() {
    silence_injected_panics();
    let t = ShardedTable::try_from_spec(&spec(), 4).expect("valid spec");
    let resident = populate(&t, 64);
    let victim_shard = t.shard_of(&[resident[0].0]);
    t.poison_shard(victim_shard);

    // Hammer every key from several threads while the poisoned shard
    // recovers underneath them: no panic escapes, and healthy entries
    // never disappear.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut out = Vec::new();
                for _ in 0..50 {
                    for &(k, v) in &resident {
                        if t.lookup(0, &[k], &mut out) {
                            assert_eq!(out, vec![v], "key {k} served a foreign value");
                        } else {
                            assert_eq!(
                                t.shard_of(&[k]),
                                victim_shard,
                                "a healthy shard dropped key {k}"
                            );
                        }
                    }
                }
            });
        }
    });
    assert_eq!(t.poison_recoveries(), 1, "recovery ran more than once");
}
