//! Property tests for the sharded concurrent store's statistics: under
//! arbitrary concurrent traffic, the merged [`memo_runtime::TableStats`]
//! must equal the sum of the per-shard stats, and no access may be lost
//! or double-counted — every lookup issued by any thread shows up exactly
//! once in exactly one shard (each shard's counters sit behind that
//! shard's lock, so contention can reorder but never drop updates).

use memo_runtime::{ShardedTable, TableSpec, TableStats};
use proptest::prelude::*;

fn spec(slots: usize, out_words: usize) -> TableSpec {
    TableSpec {
        slots,
        key_words: 1,
        out_words: vec![1; out_words],
    }
}

/// Sums per-shard stats the way `ShardedTable::stats` merges them.
fn shard_sum(t: &ShardedTable) -> TableStats {
    let mut total = TableStats::default();
    for s in t.shard_stats() {
        total.merge(&s);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// T threads each issue L lookup+record pairs over a shared key range;
    /// afterwards the merged stats equal the per-shard sum and account for
    /// every access exactly once.
    #[test]
    fn merged_stats_equal_per_shard_sum_under_contention(
        threads in 2..5usize,
        lookups in 1..120u64,
        shards in 1..9usize,
        slots in 1..48usize,
        key_range in 1..64u64,
        out_words in 1..3usize,
    ) {
        let table = ShardedTable::try_from_spec(&spec(slots, out_words), shards)
            .expect("valid spec");
        std::thread::scope(|s| {
            for t in 0..threads {
                let table = &table;
                s.spawn(move || {
                    let mut out = Vec::new();
                    // All traffic targets segment slot 0, whose output
                    // width is out_words[0] == 1 regardless of how many
                    // segments the table merges.
                    let outputs = [7u64];
                    for i in 0..lookups {
                        // Distinct threads hammer overlapping keys so
                        // shards genuinely contend.
                        let k = (i + t as u64) % key_range;
                        if !table.lookup(0, &[k], &mut out) {
                            table.record(0, &[k], &outputs);
                        }
                    }
                });
            }
        });
        let merged = table.stats();
        let summed = shard_sum(&table);
        prop_assert_eq!(merged, summed, "merge must be lossless");
        // No lost or double-counted accesses: every lookup any thread
        // issued is in the totals, and nothing else is.
        prop_assert_eq!(merged.accesses, threads as u64 * lookups);
        prop_assert_eq!(merged.hits + merged.misses, merged.accesses);
        // Per-shard deltas partition the totals: each access landed in
        // exactly one shard.
        let per_shard = table.shard_stats();
        prop_assert_eq!(per_shard.len(), table.shard_count());
        prop_assert_eq!(
            per_shard.iter().map(|s| s.accesses).sum::<u64>(),
            merged.accesses
        );
    }

    /// Interleaved batches: deltas taken between rounds also sum shard-wise.
    #[test]
    fn round_deltas_sum_shard_wise(
        rounds in 1..4usize,
        per_round in 1..40u64,
        shards in 1..5usize,
    ) {
        let table = ShardedTable::try_from_spec(&spec(16, 1), shards).expect("valid spec");
        let mut before = table.stats();
        let mut before_shards = table.shard_stats();
        for r in 0..rounds {
            std::thread::scope(|s| {
                for t in 0..3u64 {
                    let table = &table;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for i in 0..per_round {
                            let k = r as u64 * 131 + i * 3 + t;
                            if !table.lookup(0, &[k], &mut out) {
                                table.record(0, &[k], &[k]);
                            }
                        }
                    });
                }
            });
            let after = table.stats();
            let after_shards = table.shard_stats();
            let delta = after.delta_since(&before);
            prop_assert_eq!(delta.accesses, 3 * per_round);
            let mut shard_delta = TableStats::default();
            for (now, was) in after_shards.iter().zip(&before_shards) {
                shard_delta.merge(&now.delta_since(was));
            }
            prop_assert_eq!(delta, shard_delta);
            before = after;
            before_shards = after_shards;
        }
    }
}
