//! Release-gated contention stress test for the optimistic probe path
//! (DESIGN.md §8h): writer threads churn `record`/evict against reader
//! threads hammering a hot key set on the same [`ShardedTable`].
//!
//! Invariants under fire:
//!
//! 1. **No torn outputs** — every hit returns exactly the payload that
//!    was recorded for its key (the per-key payload function is
//!    deterministic, so a mixed-generation copy is detectable).
//! 2. **Contention is real** — at least one optimistic probe observed a
//!    concurrent writer and retried (`optimistic_retries > 0`). A single
//!    round on a loaded or single-CPU host may not interleave a reader
//!    with a write window, so rounds repeat until a retry is seen.
//! 3. **Lossless accounting** — the per-shard statistics sum exactly to
//!    the merged aggregate, and probe traffic splits exactly into hits
//!    plus misses.

use memo_runtime::{ShardedTable, TableSpec, TableStats};

const KEY_WORDS: usize = 2;
const OUT_WORDS: usize = 2;
const HOT_KEYS: usize = 32;

/// The only payload ever recorded for `key`. Both words depend on the
/// whole key, so a hit assembled from two different write generations
/// (impossible if the version protocol holds) would not verify.
fn payload_of(key: &[u64]) -> [u64; OUT_WORDS] {
    let mut out = [0u64; OUT_WORDS];
    for (j, w) in out.iter_mut().enumerate() {
        *w = key[0]
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key[1].rotate_left(j as u32 + 1) ^ j as u64);
    }
    out
}

fn hot_key(k: usize) -> [u64; KEY_WORDS] {
    [k as u64, 0x0048_4f54]
}

fn fresh_store() -> ShardedTable {
    let spec = TableSpec {
        slots: 128,
        key_words: KEY_WORDS,
        out_words: vec![OUT_WORDS],
    };
    let table = ShardedTable::try_from_spec(&spec, 4).expect("valid spec");
    for k in 0..HOT_KEYS {
        let key = hot_key(k);
        table.record(0, &key, &payload_of(&key));
    }
    table
}

/// One round of churn: `writers` threads re-record hot keys and insert
/// evicting cold keys while `readers` threads probe hot keys, verifying
/// every hit. Returns the number of torn hits observed (must be 0).
fn churn_round(
    table: &ShardedTable,
    writers: usize,
    readers: usize,
    ops: usize,
    round: u64,
) -> u64 {
    let mut torn = vec![0u64; readers];
    std::thread::scope(|s| {
        for w in 0..writers {
            s.spawn(move || {
                let mut cold = 0u64;
                for op in 0..ops {
                    if op % 3 == 0 {
                        // Cold insert: lands wherever its hash says and may
                        // evict a hot entry, forcing real churn.
                        cold += 1;
                        let key = [(round << 24) | ((w as u64) << 16) | cold, 0x434f_4c44];
                        table.record(0, &key, &payload_of(&key));
                    } else {
                        let key = hot_key((op + w) % HOT_KEYS);
                        table.record(0, &key, &payload_of(&key));
                    }
                }
            });
        }
        for (r, torn_slot) in torn.iter_mut().enumerate() {
            s.spawn(move || {
                let mut out = Vec::new();
                for op in 0..ops {
                    let key = hot_key((op * 7 + r) % HOT_KEYS);
                    if table.lookup(0, &key, &mut out) && out != payload_of(&key) {
                        *torn_slot += 1;
                    }
                }
            });
        }
    });
    torn.iter().sum()
}

#[test]
fn writers_churning_under_readers_stay_consistent() {
    if cfg!(debug_assertions) {
        // The stress needs release-mode probe rates to make reader/writer
        // interleaving within a version write window likely; a debug run
        // would take minutes and prove less.
        return;
    }
    let table = fresh_store();
    let mut rounds = 0u64;
    let mut torn = 0u64;
    // Keep churning until an optimistic probe demonstrably overlapped a
    // writer. Each round is ~100k mixed operations; a preemptive
    // scheduler lands a reader inside a write window long before the cap
    // even on one CPU.
    while table.stats().optimistic_retries == 0 && rounds < 200 {
        torn += churn_round(&table, 2, 2, 25_000, rounds);
        rounds += 1;
    }
    assert_eq!(torn, 0, "a hit returned a torn payload");
    let stats = table.stats();
    assert!(
        stats.optimistic_retries > 0,
        "no optimistic probe ever observed a concurrent writer after {rounds} rounds"
    );
    assert!(
        stats.optimistic_hits > 0,
        "hot-key probes never resolved on the lock-free path"
    );
    // Lossless merge: the aggregate equals the exact per-shard sum, and
    // probe traffic splits exactly into hits and misses.
    let mut summed = TableStats::default();
    for s in table.shard_stats() {
        summed.merge(&s);
    }
    assert_eq!(summed, stats, "per-shard stats lost counts in the merge");
    assert_eq!(stats.hits + stats.misses, stats.accesses);
}

#[test]
fn stats_snapshot_is_stable_once_quiescent() {
    if cfg!(debug_assertions) {
        return;
    }
    let table = fresh_store();
    churn_round(&table, 2, 2, 10_000, 0);
    // After all threads join, two reads of the merged stats must agree —
    // draining optimistic counters into snapshots is idempotent.
    assert_eq!(table.stats(), table.stats());
}
