//! Access statistics shared by all table kinds.

/// Counters describing how a memo table was used during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that found a matching key (and valid outputs).
    pub hits: u64,
    /// Subset of `hits` accepted only after dependency validation on an
    /// entry with at least one mutable dependency region — the red/green
    /// scheme's "green" promotions. Exact-match reuse alone would have
    /// recomputed these.
    pub green_hits: u64,
    /// Lookups whose key matched but whose dependency fingerprint failed
    /// validation ("red"): the entry is stale and the caller recomputes.
    /// Also counted in `misses`.
    pub stale_reds: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Recordings that evicted an entry holding a *different* key — the
    /// paper's hash collisions ("the previously recorded inputs and outputs
    /// in the entry is replaced").
    pub collisions: u64,
    /// Recordings that displaced a live entry (slot replacement in the
    /// direct/merged tables, capacity eviction in the LRU buffer). Every
    /// collision is an eviction; same-key refreshes are neither.
    pub evictions: u64,
    /// Total recordings.
    pub insertions: u64,
    /// Subset of `hits` answered on the lock-free optimistic probe path of
    /// a [`crate::ShardedTable`] (version word validated, shard lock never
    /// taken). Always zero for run-private tables.
    pub optimistic_hits: u64,
    /// Optimistic probes that observed a version-word change (or an active
    /// writer) and had to retry or fall back to the shard lock. Not an
    /// access: the probe is counted once, at its final resolution.
    pub optimistic_retries: u64,
    /// Subset of `hits` answered from a per-worker L1 front cache without
    /// touching the shared L2 store (DESIGN.md §8i). Always zero for
    /// untiered configurations.
    pub l1_hits: u64,
    /// Entries copied from the L2 store into an L1 front cache after
    /// repeated L2 hits on the same key (DESIGN.md §8i).
    pub promotions: u64,
    /// Recordings the TinyLFU admission sketch refused because the
    /// candidate key's estimated frequency did not exceed the resident
    /// victim's (DESIGN.md §8i). Not insertions: the store is unchanged.
    pub admission_rejects: u64,
}

impl TableStats {
    /// Hit ratio in `[0, 1]`; zero when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Collision rate per access, used to deduct the reuse rate as §2.1
    /// describes.
    pub fn collision_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.collisions as f64 / self.accesses as f64
        }
    }

    /// Merges counters from another table (for aggregate reporting).
    /// Saturates instead of overflowing so pathological aggregate merges
    /// near `u64::MAX` stay well-defined.
    pub fn merge(&mut self, other: &TableStats) {
        self.accesses = self.accesses.saturating_add(other.accesses);
        self.hits = self.hits.saturating_add(other.hits);
        self.green_hits = self.green_hits.saturating_add(other.green_hits);
        self.stale_reds = self.stale_reds.saturating_add(other.stale_reds);
        self.misses = self.misses.saturating_add(other.misses);
        self.collisions = self.collisions.saturating_add(other.collisions);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.insertions = self.insertions.saturating_add(other.insertions);
        self.optimistic_hits = self.optimistic_hits.saturating_add(other.optimistic_hits);
        self.optimistic_retries = self
            .optimistic_retries
            .saturating_add(other.optimistic_retries);
        self.l1_hits = self.l1_hits.saturating_add(other.l1_hits);
        self.promotions = self.promotions.saturating_add(other.promotions);
        self.admission_rejects = self
            .admission_rejects
            .saturating_add(other.admission_rejects);
    }

    /// Counter increments since `earlier` (a snapshot of the same table's
    /// stats). Used by the telemetry layer to attribute per-access deltas
    /// to windows and segments regardless of table kind.
    pub fn delta_since(&self, earlier: &TableStats) -> TableStats {
        TableStats {
            accesses: self.accesses.wrapping_sub(earlier.accesses),
            hits: self.hits.wrapping_sub(earlier.hits),
            green_hits: self.green_hits.wrapping_sub(earlier.green_hits),
            stale_reds: self.stale_reds.wrapping_sub(earlier.stale_reds),
            misses: self.misses.wrapping_sub(earlier.misses),
            collisions: self.collisions.wrapping_sub(earlier.collisions),
            evictions: self.evictions.wrapping_sub(earlier.evictions),
            insertions: self.insertions.wrapping_sub(earlier.insertions),
            optimistic_hits: self.optimistic_hits.wrapping_sub(earlier.optimistic_hits),
            optimistic_retries: self
                .optimistic_retries
                .wrapping_sub(earlier.optimistic_retries),
            l1_hits: self.l1_hits.wrapping_sub(earlier.l1_hits),
            promotions: self.promotions.wrapping_sub(earlier.promotions),
            admission_rejects: self
                .admission_rejects
                .wrapping_sub(earlier.admission_rejects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_accesses() {
        let s = TableStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.collision_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TableStats {
            accesses: 10,
            hits: 6,
            misses: 4,
            collisions: 1,
            evictions: 1,
            insertions: 4,
            ..TableStats::default()
        };
        let b = TableStats {
            accesses: 5,
            hits: 5,
            misses: 0,
            collisions: 0,
            evictions: 0,
            insertions: 0,
            ..TableStats::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 11);
        assert!((a.hit_ratio() - 11.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_saturates_near_overflow() {
        let mut a = TableStats {
            accesses: u64::MAX - 1,
            hits: u64::MAX,
            misses: 3,
            collisions: u64::MAX - 7,
            evictions: u64::MAX - 7,
            insertions: 0,
            ..TableStats::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.accesses, u64::MAX);
        assert_eq!(a.hits, u64::MAX);
        assert_eq!(a.misses, 6);
        assert_eq!(a.collisions, u64::MAX);
        assert_eq!(a.evictions, u64::MAX);
        // Ratios stay finite and in range even at the saturation point.
        assert!(a.hit_ratio() <= 1.0 + 1e-9);
        assert!(a.collision_rate() <= 1.0 + 1e-9);
    }

    #[test]
    fn ratios_at_boundary_values() {
        let all_hits = TableStats {
            accesses: u64::MAX,
            hits: u64::MAX,
            ..TableStats::default()
        };
        assert!((all_hits.hit_ratio() - 1.0).abs() < 1e-12);
        let one = TableStats {
            accesses: 1,
            misses: 1,
            ..TableStats::default()
        };
        assert_eq!(one.hit_ratio(), 0.0);
        assert_eq!(one.collision_rate(), 0.0);
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let earlier = TableStats {
            accesses: 100,
            hits: 60,
            misses: 40,
            collisions: 5,
            evictions: 6,
            insertions: 40,
            ..TableStats::default()
        };
        let mut later = earlier;
        later.merge(&TableStats {
            accesses: 10,
            hits: 3,
            misses: 7,
            collisions: 2,
            evictions: 2,
            insertions: 7,
            ..TableStats::default()
        });
        let d = later.delta_since(&earlier);
        assert_eq!(d.accesses, 10);
        assert_eq!(d.hits, 3);
        assert_eq!(d.misses, 7);
        assert_eq!(d.collisions, 2);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.insertions, 7);
    }

    #[test]
    fn tiering_counters_merge_and_delta() {
        let earlier = TableStats {
            l1_hits: 4,
            promotions: 2,
            admission_rejects: 1,
            ..TableStats::default()
        };
        let mut later = earlier;
        later.merge(&TableStats {
            l1_hits: 6,
            promotions: 1,
            admission_rejects: 3,
            ..TableStats::default()
        });
        assert_eq!(later.l1_hits, 10);
        assert_eq!(later.promotions, 3);
        assert_eq!(later.admission_rejects, 4);
        let d = later.delta_since(&earlier);
        assert_eq!(d.l1_hits, 6);
        assert_eq!(d.promotions, 1);
        assert_eq!(d.admission_rejects, 3);
    }
}
