//! Access statistics shared by all table kinds.

use serde::{Deserialize, Serialize};

/// Counters describing how a memo table was used during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that found a matching key (and valid outputs).
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Recordings that evicted an entry holding a *different* key — the
    /// paper's hash collisions ("the previously recorded inputs and outputs
    /// in the entry is replaced").
    pub collisions: u64,
    /// Total recordings.
    pub insertions: u64,
}

impl TableStats {
    /// Hit ratio in `[0, 1]`; zero when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Collision rate per access, used to deduct the reuse rate as §2.1
    /// describes.
    pub fn collision_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.collisions as f64 / self.accesses as f64
        }
    }

    /// Merges counters from another table (for aggregate reporting).
    pub fn merge(&mut self, other: &TableStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.collisions += other.collisions;
        self.insertions += other.insertions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_accesses() {
        let s = TableStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.collision_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TableStats {
            accesses: 10,
            hits: 6,
            misses: 4,
            collisions: 1,
            insertions: 4,
        };
        let b = TableStats {
            accesses: 5,
            hits: 5,
            misses: 0,
            collisions: 0,
            insertions: 0,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 15);
        assert_eq!(a.hits, 11);
        assert!((a.hit_ratio() - 11.0 / 15.0).abs() < 1e-12);
    }
}
