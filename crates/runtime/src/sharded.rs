//! A sharded, shareable wrapper over [`MemoTable`] for concurrent probing.
//!
//! A [`MemoTable`] is `&mut`-owned by one VM and dies with the run. A
//! [`ShardedTable`] wraps the same storage kinds in N power-of-two shards
//! (std primitives only — the workspace builds offline) so many worker
//! threads can probe one long-lived reuse store through `&self`. Each
//! shard is a complete `MemoTable` — storage, telemetry, and its own
//! [`AdaptiveGuard`](crate::AdaptiveGuard) — so the adaptive machinery is
//! evaluated per shard with no extra code.
//!
//! ## Optimistic lock-free probes (DESIGN.md §8h)
//!
//! Lookups are answered *without the shard lock* on the common path. Each
//! shard carries a seqlock-style **version word**: writers (record, evict,
//! clear, poison recovery) take the shard `Mutex`, store an odd version,
//! mutate the flat entry buffers in place, and store the next even
//! version. A reader snapshots the version (odd ⇒ a writer is mid-update:
//! retry/fall back), probes the frozen-geometry storage with volatile
//! reads, and re-reads the version — a change means the copy may be torn
//! and is discarded. Dependency-validating probes re-check the version a
//! *second* time after the fingerprint validator runs, so a torn entry can
//! never be promoted green. A probe falls back to the locked path when the
//! shard is bypassed, its lock is poisoned, its version stays unstable
//! across the bounded retry budget, or the storage kind has no lock-free
//! path. Shard geometry is frozen at build time
//! ([`MemoTable::freeze_geometry`]), so the buffers optimistic readers
//! walk are never reallocated: torn *words* are possible and handled, torn
//! *pointers* are not.
//!
//! ## Sharding scheme
//!
//! A key is routed to shard `fib(jenkins(key)) >> (32 - log2 N)`:
//! [`hash_words`] streams the key's words through the Jenkins hash (no
//! single-word modulo shortcut, unlike [`crate::hash::index_of`]) and a
//! Fibonacci multiply selects the *high* bits, so the shard choice stays
//! decorrelated from the in-shard slot index (which uses the low bits).
//! Within a shard the lookup/record contract is exactly the sequential
//! one, which is what makes results store-independent: a hit only ever
//! returns outputs recorded for a bit-identical key.
//!
//! ## What merging preserves
//!
//! Every counter increment happens exactly once — under the shard lock for
//! locked traffic, in the shard's atomic side counters for optimistically
//! resolved probes — and [`ShardedTable::shard_stats`] folds the side
//! counters into each shard's snapshot. The aggregate
//! [`ShardedTable::stats`] is therefore still a lossless sum of per-shard
//! deltas: no access is lost or double-counted under contention (asserted
//! by `tests/sharded_prop.rs` and `tests/contention_stress.rs`). Two
//! documented divergences from the locked path: optimistic probes do not
//! feed per-entry access counts, and their telemetry contribution is
//! drained into the shard's windows (attributed to segment 0) only when
//! the lock is next taken. The aggregate taken while writers are still
//! running is a momentary snapshot; quiesce first for exact totals.
//!
//! ## Poisoning and fault injection
//!
//! A shard whose lock is poisoned (a worker panicked mid-access) is
//! recovered on the next acquisition: the poison flag is cleared and the
//! shard's *entries dropped* — its storage may have been mid-update, and
//! forgetting is always sound for a cache, so the shard restarts empty but
//! valid while every other shard keeps serving untouched. The drop runs
//! inside a version-word write window, and optimistic probes check the
//! poison flag before trusting a snapshot, so a poisoned shard is always
//! recovered before its next probe is answered. Recoveries are counted
//! ([`ShardedTable::poison_recoveries`]). For chaos testing, an installed
//! [`FaultPlan`] can force probe misses ([`FailPoint::ProbeMiss`]) and
//! [`ShardedTable::poison_shard`] poisons a shard's lock for real via a
//! deliberate panic.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::faults::{FailPoint, FaultPlan, INJECTED_POISON_PANIC};
use crate::guard::{GuardPolicy, TableState};
use crate::hash::hash_words;
use crate::stats::TableStats;
use crate::tiered::{key_hash64, TinyLfu};
use crate::{FpValidator, MemoTable, SpecError, TableSpec};

/// Optimistic probe attempts before giving up and taking the shard lock.
const OPTIMISTIC_ATTEMPTS: usize = 3;

thread_local! {
    /// Reusable `(outputs, fingerprint)` snapshot buffers for optimistic
    /// probes. Taken out and restored (rather than borrowed) so a
    /// validator that re-enters the store cannot hit a nested borrow.
    static PROBE_SCRATCH: Cell<(Vec<u64>, Vec<u64>)> =
        const { Cell::new((Vec::new(), Vec::new())) };
}

/// Counters for probes resolved on the lock-free path, maintained beside
/// the locked [`MemoTable`]'s own statistics and folded into the shard's
/// [`TableStats`] snapshot by [`ShardedTable::shard_stats`]. A probe is
/// counted exactly once, at its final resolution: optimistically here, or
/// in the table's counters after falling back to the lock.
#[derive(Debug, Default)]
struct OptCounters {
    accesses: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    green_hits: AtomicU64,
    stale_reds: AtomicU64,
    optimistic_hits: AtomicU64,
    optimistic_retries: AtomicU64,
    /// Recordings refused by the TinyLFU admission sketch. Counted here
    /// (not in the table: the storage was never touched) and folded into
    /// the shard snapshot like the optimistic counters.
    admission_rejects: AtomicU64,
}

impl OptCounters {
    fn snapshot(&self) -> TableStats {
        TableStats {
            accesses: self.accesses.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            green_hits: self.green_hits.load(Ordering::Relaxed),
            stale_reds: self.stale_reds.load(Ordering::Relaxed),
            optimistic_hits: self.optimistic_hits.load(Ordering::Relaxed),
            optimistic_retries: self.optimistic_retries.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            ..TableStats::default()
        }
    }
}

/// One lock shard: the table, its seqlock version word, and side state
/// readable without the lock.
#[derive(Debug)]
struct Shard {
    /// Seqlock version word: even ⇔ entry storage is stable, odd ⇔ a
    /// writer is mutating it. Bumped only by operations that change entry
    /// storage (record, clear/poison recovery) — locked lookups touch only
    /// statistics and telemetry, which optimistic readers never read.
    version: AtomicU64,
    /// Lock-free mirror of the shard guard's bypassed state, resynced
    /// after every locked operation. A momentarily stale mirror is sound:
    /// bypass never changes outputs, only whether the probe consults
    /// storage.
    bypassed: AtomicBool,
    /// The table. Mutated only while holding `lock`; read without it by
    /// optimistic probes under the version-word protocol.
    table: UnsafeCell<MemoTable>,
    /// Writer lock. The payload remembers how much of `opt` has already
    /// been drained into the table's telemetry (see `absorb_shared_delta`).
    lock: Mutex<TableStats>,
    opt: OptCounters,
    /// TinyLFU admission sketch (`None` = admission off). Mutated only
    /// while holding `lock`; optimistic readers never touch it.
    sketch: UnsafeCell<Option<TinyLfu>>,
}

// SAFETY: all mutation of `table` and `sketch` happens with the shard
// `lock` held; the only unsynchronised access is the read-only optimistic
// probe, which copies table words volatilely (never touching the sketch)
// and discards the copy unless `version` proves no writer overlapped it
// (seqlock protocol). `MemoTable` and `TinyLfu` own their storage (no
// interior references), so the shard is `Send`.
unsafe impl Send for Shard {}
unsafe impl Sync for Shard {}

impl Shard {
    fn new(table: MemoTable) -> Self {
        Shard {
            version: AtomicU64::new(0),
            bypassed: AtomicBool::new(false),
            table: UnsafeCell::new(table),
            lock: Mutex::new(TableStats::default()),
            opt: OptCounters::default(),
            sketch: UnsafeCell::new(None),
        }
    }

    /// Marks the version word odd before entry storage is mutated. If a
    /// previous writer panicked mid-update the word is already odd and
    /// stays odd. Callers must hold the shard lock.
    fn begin_entry_write(&self) -> u64 {
        let odd = self.version.load(Ordering::Relaxed) | 1;
        self.version.store(odd, Ordering::Relaxed);
        // The odd store must become visible before any storage mutation.
        fence(Ordering::Release);
        odd
    }

    /// Publishes the mutation: the next even version. Readers that saw
    /// neither the odd word nor the bump observed a stable snapshot.
    fn end_entry_write(&self, odd: u64) {
        self.version.store(odd.wrapping_add(1), Ordering::Release);
    }
}

/// The three table kinds wrapped in N power-of-two lock shards, probed
/// through `&self` so one store can outlive and be shared by many runs.
#[derive(Debug)]
pub struct ShardedTable {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; the length is a power of two.
    mask: u32,
    /// Times a poisoned shard was recovered (cleared and restarted empty).
    poison_recoveries: AtomicU64,
    /// Chaos plane; `None` (the default) costs one branch per lookup.
    faults: Option<Arc<FaultPlan>>,
}

impl ShardedTable {
    /// Builds a sharded store from `spec`, rounding `shards` up to the
    /// next power of two (minimum 1). The spec's slot budget is divided
    /// across the shards with *ceiling* division, so the aggregate shard
    /// capacity is never below `spec.slots` (a 100-slot spec over 8 shards
    /// serves 104 slots, not 96). Multi-segment specs get merged shards,
    /// single-segment specs direct-addressed ones, mirroring the
    /// pipeline's kind choice. Every shard's geometry is frozen so the
    /// optimistic probe path stays sound; declare fingerprint widths via
    /// [`ShardedTable::set_deps`] before the store sees traffic.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec is structurally invalid.
    pub fn try_from_spec(spec: &TableSpec, shards: usize) -> Result<Self, SpecError> {
        spec.validate()?;
        let n = shards.max(1).next_power_of_two();
        let per_shard = TableSpec {
            slots: spec.slots.div_ceil(n),
            key_words: spec.key_words,
            out_words: spec.out_words.clone(),
        };
        let mut built = Vec::with_capacity(n);
        for _ in 0..n {
            let mut table = if per_shard.out_words.len() > 1 {
                MemoTable::try_merged(&per_shard)?
            } else {
                MemoTable::try_direct(&per_shard)?
            };
            table.freeze_geometry();
            built.push(Shard::new(table));
        }
        Ok(ShardedTable {
            shards: built,
            mask: (n - 1) as u32,
            poison_recoveries: AtomicU64::new(0),
            faults: None,
        })
    }

    /// Installs (or removes, with `None`) a fault-injection plan. Takes
    /// `&mut self`: plans are wired at build time, before the store is
    /// shared. With a plan installed, [`FailPoint::ProbeMiss`] fires turn
    /// lookups into forced misses (sound: the caller recomputes, exactly
    /// as on a cold miss, and the probe is not counted in the stats).
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// Installs `policy` on every shard (each shard's guard is reset to
    /// `Active` and re-windowed). Takes `&mut self`: policies are set at
    /// build time, before the store is shared.
    pub fn set_policy(&mut self, policy: GuardPolicy) {
        for shard in &mut self.shards {
            let table = shard.table.get_mut();
            table.set_policy(policy.clone());
            *shard.bypassed.get_mut() = table.state() == TableState::Bypassed;
        }
    }

    fn shard_index(&self, key: &[u64]) -> usize {
        if self.mask == 0 || key.is_empty() {
            return 0;
        }
        let bits = (self.mask + 1).trailing_zeros();
        let h = hash_words(key).wrapping_mul(0x9E37_79B1);
        (h >> (32 - bits)) as usize
    }

    /// The shard `key` routes to (exposed so tests and fault drivers can
    /// target a specific shard deterministically).
    pub fn shard_of(&self, key: &[u64]) -> usize {
        self.shard_index(key)
    }

    fn acquire(&self, i: usize) -> MutexGuard<'_, TableStats> {
        let shard = &self.shards[i];
        shard.lock.lock().unwrap_or_else(|poisoned| {
            // Another worker panicked while holding this shard: its storage
            // may be mid-update, so drop the entries (forgetting is always
            // sound for a cache) and clear the flag so later acquisitions
            // see a healthy, empty shard instead of re-recovering forever.
            // The drop runs inside a version write window so an optimistic
            // reader racing the recovery discards its snapshot.
            shard.lock.clear_poison();
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            let guard = poisoned.into_inner();
            // SAFETY: we hold the (just-recovered) shard lock.
            let table = unsafe { &mut *shard.table.get() };
            let odd = shard.begin_entry_write();
            table.clear();
            shard.end_entry_write(odd);
            guard
        })
    }

    /// Runs `f` on shard `i`'s table under its lock. `entry_write` wraps
    /// the call in a version write window — required for any operation
    /// that mutates entry storage, forbidden to omit. Optimistic counters
    /// accumulated since the last locked operation are drained into the
    /// table's telemetry first (keeping guard epochs rolling), and the
    /// lock-free bypassed mirror is resynced afterwards.
    fn with_locked<R>(
        &self,
        i: usize,
        entry_write: bool,
        f: impl FnOnce(&mut MemoTable) -> R,
    ) -> R {
        let shard = &self.shards[i];
        let mut drained = self.acquire(i);
        // SAFETY: the shard lock is held for the whole scope; optimistic
        // readers never take references into the table's buffers, they
        // copy words and validate against the version word.
        let table = unsafe { &mut *shard.table.get() };
        let totals = shard.opt.snapshot();
        let delta = totals.delta_since(&drained);
        *drained = totals;
        table.absorb_shared_delta(&delta);
        let result = if entry_write {
            let odd = shard.begin_entry_write();
            let result = f(table);
            shard.end_entry_write(odd);
            result
        } else {
            f(table)
        };
        shard
            .bypassed
            .store(table.state() == TableState::Bypassed, Ordering::Relaxed);
        result
    }

    /// Looks up `key` for segment `slot` in the shard the key hashes to.
    /// Same contract as [`MemoTable::lookup`]; a bypassed shard answers a
    /// forced miss, as does a fired [`FailPoint::ProbeMiss`] (which skips
    /// the probe entirely, leaving statistics untouched). Resolved on the
    /// optimistic lock-free path whenever the shard is stable.
    pub fn lookup(&self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        self.lookup_dep(slot, key, out, false, None)
    }

    /// Dependency-validating lookup in the shard the key hashes to; same
    /// contract as [`MemoTable::lookup_dep`]. On the optimistic path the
    /// validator runs on a version-checked *copy* of the fingerprint, and
    /// the version word is re-checked after validation before the entry
    /// can be promoted green (so a torn entry never marks green); on the
    /// locked fallback it runs under the shard lock (it only reads
    /// caller-local epoch state, so it cannot deadlock against other
    /// shards). A fired [`FailPoint::ProbeMiss`] still skips the probe
    /// entirely.
    pub fn lookup_dep(
        &self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        mut validate: FpValidator,
    ) -> bool {
        if let Some(plan) = &self.faults {
            if plan.fire(FailPoint::ProbeMiss) {
                return false;
            }
        }
        let i = self.shard_index(key);
        let shard = &self.shards[i];
        if green && validate.is_none() {
            // Forced red: exact-match mode cannot trust a mutable-dep
            // entry, so the answer never consults storage — no tear is
            // possible and the miss is counted lock-free. Bypassed shards
            // still take the locked path so the forced miss lands in their
            // bypass telemetry.
            if !shard.bypassed.load(Ordering::Relaxed) {
                shard.opt.accesses.fetch_add(1, Ordering::Relaxed);
                shard.opt.misses.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            return self.with_locked(i, false, |t| t.lookup_dep(slot, key, out, green, None));
        }
        let (mut out_buf, mut fp_buf) = PROBE_SCRATCH.with(Cell::take);
        let mut resolved = None;
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            if shard.bypassed.load(Ordering::Relaxed) || shard.lock.is_poisoned() {
                break;
            }
            let v1 = shard.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                // A writer is mid-update; spin once and retry.
                shard.opt.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: read-only probe; every word is copied volatilely and
            // the copy is discarded unless the version word below proves no
            // writer overlapped (the buffers themselves cannot move: the
            // shard geometry is frozen).
            let table = unsafe { &*shard.table.get() };
            let Some(matched) = table.probe_shared(slot, key, &mut out_buf, &mut fp_buf) else {
                break; // kind without a lock-free path: locked fallback
            };
            fence(Ordering::Acquire);
            if shard.version.load(Ordering::Relaxed) != v1 {
                shard.opt.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // The copy is consistent. Resolve it lock-free.
            if !matched {
                shard.opt.accesses.fetch_add(1, Ordering::Relaxed);
                shard.opt.misses.fetch_add(1, Ordering::Relaxed);
                resolved = Some(false);
                break;
            }
            let mut green_hit = false;
            if !fp_buf.is_empty() {
                if let Some(v) = validate.as_mut() {
                    let fp_ok = v(&fp_buf);
                    // Re-validate *after* the fingerprint check (§8h): if a
                    // writer replaced the entry while the validator ran,
                    // retry rather than promote on a superseded entry.
                    if shard.version.load(Ordering::Acquire) != v1 {
                        shard.opt.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if !fp_ok {
                        shard.opt.accesses.fetch_add(1, Ordering::Relaxed);
                        shard.opt.misses.fetch_add(1, Ordering::Relaxed);
                        shard.opt.stale_reds.fetch_add(1, Ordering::Relaxed);
                        resolved = Some(false);
                        break;
                    }
                    green_hit = green;
                }
            }
            shard.opt.accesses.fetch_add(1, Ordering::Relaxed);
            shard.opt.hits.fetch_add(1, Ordering::Relaxed);
            shard.opt.optimistic_hits.fetch_add(1, Ordering::Relaxed);
            if green_hit {
                shard.opt.green_hits.fetch_add(1, Ordering::Relaxed);
            }
            out.clear();
            out.extend_from_slice(&out_buf);
            resolved = Some(true);
            break;
        }
        PROBE_SCRATCH.with(|cell| cell.set((out_buf, fp_buf)));
        match resolved {
            Some(hit) => hit,
            None => self.with_locked(i, false, |t| t.lookup_dep(slot, key, out, green, validate)),
        }
    }

    /// Records `outputs` for `key` in segment `slot` in the shard the key
    /// hashes to (dropped while that shard is bypassed). Writers always
    /// take the shard lock and bump the version word.
    pub fn record(&self, slot: usize, key: &[u64], outputs: &[u64]) {
        self.record_dep(slot, key, outputs, &[])
    }

    /// Records `outputs` plus a dependency fingerprint for `key` in
    /// segment `slot` (`&[]` for exact-match entries).
    ///
    /// With admission enabled ([`ShardedTable::set_admission`]) a
    /// recording that would evict a *different* resident key is first
    /// judged by the shard's TinyLFU sketch: the candidate is admitted
    /// only when its estimated frequency strictly exceeds the victim's,
    /// otherwise the recording is dropped and counted in
    /// [`TableStats::admission_rejects`]. Same-key refreshes and
    /// empty-slot recordings are always admitted. A bypassed shard skips
    /// the sketch entirely — the §8c guard's decision (drop the record)
    /// supersedes admission, and the drop lands in bypass telemetry as
    /// before.
    pub fn record_dep(&self, slot: usize, key: &[u64], outputs: &[u64], fp: &[u64]) {
        let i = self.shard_index(key);
        let shard = &self.shards[i];
        let mut drained = self.acquire(i);
        // SAFETY: the shard lock is held for the whole scope (see
        // `with_locked`, whose drain/resync steps this writer repeats so
        // the admission decision can sit between them).
        let table = unsafe { &mut *shard.table.get() };
        let totals = shard.opt.snapshot();
        let delta = totals.delta_since(&drained);
        *drained = totals;
        table.absorb_shared_delta(&delta);
        // SAFETY: the sketch is only ever touched under the shard lock.
        let sketch = unsafe { &mut *shard.sketch.get() };
        let admitted = match sketch {
            Some(lfu) if table.state() != TableState::Bypassed => {
                let candidate = key_hash64(key);
                match table.resident_key(key).map(key_hash64) {
                    Some(victim) => lfu.admits(candidate, victim),
                    None => {
                        lfu.observe(candidate);
                        true
                    }
                }
            }
            _ => true,
        };
        if admitted {
            let odd = shard.begin_entry_write();
            table.record_dep(slot, key, outputs, fp);
            shard.end_entry_write(odd);
        } else {
            shard.opt.admission_rejects.fetch_add(1, Ordering::Relaxed);
        }
        shard
            .bypassed
            .store(table.state() == TableState::Bypassed, Ordering::Relaxed);
    }

    /// Enables (or disables) TinyLFU admission on every shard, each sized
    /// for its own slot count. Takes `&mut self`: admission is wired at
    /// build time, before the store is shared. Enabling resets any
    /// previous sketch's frequency state.
    pub fn set_admission(&mut self, enabled: bool) {
        for shard in &mut self.shards {
            let slots = shard.table.get_mut().slots();
            *shard.sketch.get_mut() = enabled.then(|| TinyLfu::new(slots));
        }
    }

    /// Whether TinyLFU admission is enabled (on shard 0 — shards are
    /// always configured uniformly).
    pub fn admission_enabled(&mut self) -> bool {
        self.shards[0].sketch.get_mut().is_some()
    }

    /// Declares segment `slot`'s fingerprint width on every shard; see
    /// [`MemoTable::set_deps`]. Takes `&mut self`: dependency layouts are
    /// wired at build time, before the store is shared (the flat buffers
    /// may be rebuilt, which exclusive access makes safe even though the
    /// shards are frozen).
    pub fn set_deps(&mut self, slot: usize, fp_words: usize) {
        for shard in &mut self.shards {
            shard.table.get_mut().set_deps(slot, fp_words);
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lossless aggregate statistics: the sum of every shard's counters.
    pub fn stats(&self) -> TableStats {
        let mut total = TableStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        total
    }

    /// Per-shard statistics snapshots, in shard order: the locked table's
    /// counters with the shard's optimistic side counters folded in, so
    /// the sum over shards accounts for every probe exactly once.
    pub fn shard_stats(&self) -> Vec<TableStats> {
        (0..self.shards.len())
            .map(|i| {
                let mut s = self.with_locked(i, false, |t| *t.stats());
                s.merge(&self.shards[i].opt.snapshot());
                s
            })
            .collect()
    }

    /// Per-shard guard states, in shard order.
    pub fn shard_states(&self) -> Vec<TableState> {
        (0..self.shards.len())
            .map(|i| self.with_locked(i, false, |t| t.state()))
            .collect()
    }

    /// Total storage footprint across shards, in bytes.
    pub fn bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.with_locked(i, false, |t| t.bytes()))
            .sum()
    }

    /// Total slot count across shards.
    pub fn slots(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.with_locked(i, false, |t| t.slots()))
            .sum()
    }

    /// Total lookups answered as forced misses by bypassed shards.
    pub fn bypassed_total(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.with_locked(i, false, |t| t.telemetry().bypassed_total()))
            .sum()
    }

    /// Total recordings dropped by bypassed shards.
    pub fn dropped_records(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.with_locked(i, false, |t| t.telemetry().dropped_records()))
            .sum()
    }

    /// Runs a read-only closure on shard `i`'s table under its lock
    /// (snapshot export path; optimistic counters are drained first so
    /// the table's telemetry is current).
    pub(crate) fn with_shard<R>(&self, i: usize, f: impl FnOnce(&MemoTable) -> R) -> R {
        self.with_locked(i, false, |t| f(t))
    }

    /// Runs a closure on shard `i`'s table through exclusive access (no
    /// locking, no version bump — the store is not shared yet). Snapshot
    /// *restore* path: a restored store is always rebuilt fresh before
    /// being handed to workers.
    pub(crate) fn with_shard_mut<R>(&mut self, i: usize, f: impl FnOnce(&mut MemoTable) -> R) -> R {
        f(self.shards[i].table.get_mut())
    }

    /// Times a poisoned shard lock was recovered (shard cleared and
    /// restarted empty).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Genuinely poisons shard `shard`'s lock by panicking while holding
    /// it (the panic is caught here; install
    /// [`crate::silence_injected_panics`] to mute its report). The next
    /// acquisition recovers the shard empty-but-valid — optimistic probes
    /// see the poison flag and fall back to the lock, so the recovery is
    /// never skipped. Chaos-testing entry point for the retryable
    /// poisoned-shard fault.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn poison_shard(&self, shard: usize) {
        assert!(shard < self.shards.len(), "shard out of range");
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.acquire(shard);
            std::panic::panic_any(INJECTED_POISON_PANIC);
        }));
    }

    /// Forces every shard into [`TableState::Bypassed`] (service-level
    /// degradation under overload), journaling `reason` per shard.
    pub fn force_bypass(&self, reason: &'static str) {
        for i in 0..self.shards.len() {
            self.with_locked(i, false, |t| t.force_bypass(reason));
        }
    }

    /// Ends a forced bypass on every shard (enabled guards re-enter via
    /// probation, disabled ones return to `Active`), journaling `reason`.
    pub fn end_forced_bypass(&self, reason: &'static str) {
        for i in 0..self.shards.len() {
            self.with_locked(i, false, |t| t.end_forced_bypass(reason));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(slots: usize) -> TableSpec {
        TableSpec {
            slots,
            key_words: 1,
            out_words: vec![1],
        }
    }

    #[test]
    fn round_trips_through_shared_reference() {
        let t = ShardedTable::try_from_spec(&spec(64), 8).unwrap();
        let mut out = Vec::new();
        assert!(!t.lookup(0, &[42], &mut out));
        t.record(0, &[42], &[7]);
        assert!(t.lookup(0, &[42], &mut out));
        assert_eq!(out, vec![7]);
        let s = t.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (ask, got) in [(0, 1), (1, 1), (3, 4), (4, 4), (5, 8)] {
            let t = ShardedTable::try_from_spec(&spec(64), ask).unwrap();
            assert_eq!(t.shard_count(), got);
        }
    }

    #[test]
    fn slot_budget_is_divided_across_shards() {
        let t = ShardedTable::try_from_spec(&spec(64), 8).unwrap();
        assert_eq!(t.slots(), 64);
        // A tiny spec still gets one slot per shard.
        let tiny = ShardedTable::try_from_spec(&spec(2), 8).unwrap();
        assert_eq!(tiny.slots(), 8);
    }

    #[test]
    fn slot_budget_rounds_up_never_down() {
        // Regression: floor division used to shave capacity off
        // non-power-of-two budgets (100 slots over 8 shards served 96).
        for (slots, shards) in [(100, 8), (7, 4), (129, 16), (1000, 8), (33, 2)] {
            let t = ShardedTable::try_from_spec(&spec(slots), shards).unwrap();
            assert!(
                t.slots() >= slots,
                "{slots} slots over {shards} shards served only {}",
                t.slots()
            );
            let n = t.shard_count();
            assert!(
                t.slots() < slots + n,
                "ceiling division wastes at most one slot per shard: \
                 {slots} over {n} shards got {}",
                t.slots()
            );
        }
    }

    #[test]
    fn invalid_specs_yield_typed_errors() {
        let bad = TableSpec {
            slots: 0,
            key_words: 1,
            out_words: vec![1],
        };
        assert_eq!(
            ShardedTable::try_from_spec(&bad, 4).err(),
            Some(SpecError::ZeroSlots)
        );
    }

    #[test]
    fn keys_spread_over_shards() {
        let t = ShardedTable::try_from_spec(&spec(1024), 8).unwrap();
        for k in 0..256u64 {
            t.record(0, &[k], &[k]);
        }
        let used = t.shard_stats().iter().filter(|s| s.insertions > 0).count();
        assert!(used >= 4, "only {used} of 8 shards saw traffic");
    }

    #[test]
    fn aggregate_stats_equal_sum_of_shards() {
        let t = ShardedTable::try_from_spec(&spec(32), 4).unwrap();
        let mut out = Vec::new();
        for k in 0..100u64 {
            if !t.lookup(0, &[k % 13], &mut out) {
                t.record(0, &[k % 13], &[k]);
            }
        }
        let mut sum = TableStats::default();
        for s in t.shard_stats() {
            sum.merge(&s);
        }
        assert_eq!(t.stats(), sum);
        assert_eq!(sum.accesses, 100);
    }

    #[test]
    fn warm_hits_resolve_on_the_optimistic_path() {
        let t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        for k in 0..16u64 {
            t.record(0, &[k], &[k * 10]);
        }
        for _ in 0..4 {
            for k in 0..16u64 {
                assert!(t.lookup(0, &[k], &mut out));
                assert_eq!(out, vec![k * 10]);
            }
        }
        let s = t.stats();
        assert_eq!(s.hits, 64);
        assert_eq!(
            s.optimistic_hits, 64,
            "uncontended warm hits never take the lock"
        );
        assert_eq!(s.accesses, 64);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn optimistic_green_validation_and_stale_reds() {
        let mut t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        t.set_deps(0, 2);
        let mut out = Vec::new();
        t.record_dep(0, &[5], &[50], &[9, 10]);
        let mut seen = Vec::new();
        let mut ok = |fp: &[u64]| {
            seen = fp.to_vec();
            true
        };
        assert!(t.lookup_dep(0, &[5], &mut out, true, Some(&mut ok)));
        assert_eq!(out, vec![50]);
        assert_eq!(seen, vec![9, 10], "validator sees the stored fp");
        let mut no = |_: &[u64]| false;
        assert!(!t.lookup_dep(0, &[5], &mut out, true, Some(&mut no)));
        // Forced red (green, no validator) also resolves lock-free.
        assert!(!t.lookup_dep(0, &[5], &mut out, true, None));
        let s = t.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.green_hits, 1);
        assert_eq!(s.stale_reds, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.optimistic_hits, 1);
    }

    #[test]
    fn merged_specs_build_merged_shards() {
        let mspec = TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![1, 2],
        };
        let t = ShardedTable::try_from_spec(&mspec, 2).unwrap();
        let mut out = Vec::new();
        t.record(1, &[5], &[8, 9]);
        assert!(t.lookup(1, &[5], &mut out));
        assert_eq!(out, vec![8, 9]);
        assert!(!t.lookup(0, &[5], &mut out), "segment 0 not yet valid");
    }

    #[test]
    fn full_rate_probe_miss_plan_forces_every_lookup_to_miss() {
        use crate::faults::{FailPoint, FaultPlan};
        let mut t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        t.record(0, &[42], &[7]);
        assert!(t.lookup(0, &[42], &mut out), "no plan yet: genuine hit");
        let plan = std::sync::Arc::new(FaultPlan::new(1).with_rate(FailPoint::ProbeMiss, 1.0));
        t.set_fault_plan(Some(plan.clone()));
        let stats_before = t.stats();
        for _ in 0..10 {
            assert!(!t.lookup(0, &[42], &mut out), "forced miss");
        }
        assert_eq!(plan.fired(FailPoint::ProbeMiss), 10);
        assert_eq!(
            t.stats(),
            stats_before,
            "forced misses skip the probe and the stats"
        );
        t.set_fault_plan(None);
        assert!(t.lookup(0, &[42], &mut out), "entry survived the faults");
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn poisoned_shard_recovers_empty_and_counts() {
        crate::faults::silence_injected_panics();
        let t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        t.record(0, &[1], &[10]);
        let victim = t.shard_of(&[1]);
        t.poison_shard(victim);
        assert!(
            !t.lookup(0, &[1], &mut out),
            "recovered shard restarts empty"
        );
        assert_eq!(t.poison_recoveries(), 1);
        // Recovery is one-shot: the shard serves normally afterwards.
        t.record(0, &[1], &[11]);
        assert!(t.lookup(0, &[1], &mut out));
        assert_eq!(out, vec![11]);
        assert_eq!(t.poison_recoveries(), 1, "no re-recovery loop");
    }

    #[test]
    fn forced_bypass_flips_all_shards_and_ends_cleanly() {
        let t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        t.record(0, &[5], &[50]);
        t.force_bypass("overload shed");
        assert!(t.shard_states().iter().all(|&s| s == TableState::Bypassed));
        assert!(!t.lookup(0, &[5], &mut out), "bypassed: forced miss");
        t.end_forced_bypass("overload cleared");
        // Guards are disabled by default, so they return straight to Active.
        assert!(t.shard_states().iter().all(|&s| s == TableState::Active));
        assert!(t.lookup(0, &[5], &mut out), "entries survived the bypass");
        assert_eq!(out, vec![50]);
    }

    fn admission_store(enabled: bool) -> ShardedTable {
        let mut t = ShardedTable::try_from_spec(&spec(256), 1).unwrap();
        t.set_admission(enabled);
        t
    }

    /// 64 hot keys recorded 16 times each, then 200 one-shot keys whose
    /// residues alias many of the hot slots.
    fn hot_then_one_shot(t: &ShardedTable) {
        for _ in 0..16 {
            for k in 0..64u64 {
                t.record(0, &[k], &[k * 2]);
            }
        }
        for k in 10_000..10_200u64 {
            t.record(0, &[k], &[1]);
        }
    }

    #[test]
    fn admission_protects_hot_entries_from_one_shot_churn() {
        let t = admission_store(true);
        hot_then_one_shot(&t);
        let s = t.stats();
        assert!(s.admission_rejects > 0, "sketch rejected no one-shots");
        let mut out = Vec::new();
        let mut hot_hits = 0;
        for k in 0..64u64 {
            if t.lookup(0, &[k], &mut out) {
                hot_hits += 1;
            }
        }
        assert_eq!(hot_hits, 64, "every hot key survived the one-shot flood");
    }

    #[test]
    fn admission_cuts_evictions_at_equal_memory() {
        let off = admission_store(false);
        hot_then_one_shot(&off);
        let on = admission_store(true);
        hot_then_one_shot(&on);
        assert!(
            on.stats().evictions < off.stats().evictions,
            "admission on: {} evictions, off: {}",
            on.stats().evictions,
            off.stats().evictions
        );
        assert_eq!(
            off.stats().admission_rejects,
            0,
            "no rejects without a sketch"
        );
    }

    #[test]
    fn same_key_refreshes_are_always_admitted() {
        let t = admission_store(true);
        let mut out = Vec::new();
        t.record(0, &[5], &[50]);
        for _ in 0..10 {
            t.record(0, &[5], &[51]);
        }
        assert!(t.lookup(0, &[5], &mut out));
        assert_eq!(out, vec![51], "refresh took effect");
        assert_eq!(t.stats().admission_rejects, 0);
    }

    #[test]
    fn bypassed_shards_skip_the_admission_sketch() {
        let t = admission_store(true);
        t.force_bypass("test");
        for k in 0..50u64 {
            t.record(0, &[k], &[k]);
        }
        assert_eq!(
            t.stats().admission_rejects,
            0,
            "bypass supersedes admission"
        );
        assert!(t.dropped_records() >= 50, "records dropped by the guard");
    }

    #[test]
    fn per_shard_guard_bypasses_independently() {
        let mut t = ShardedTable::try_from_spec(&spec(4), 4).unwrap();
        t.set_policy(GuardPolicy {
            enabled: true,
            epoch_len: 16,
            predicted_collision_rate: 0.0,
            margin: 0.01,
            k_epochs: 1,
            bypass_epochs: 1000,
            max_resizes: 0,
            ..GuardPolicy::default()
        });
        // Hammer one shard with all-distinct keys until it trips; other
        // shards must stay active.
        let mut out = Vec::new();
        let victim = {
            // Find two keys in the same shard and one elsewhere.
            let idx: Vec<usize> = (0..64).map(|k| t.shard_index(&[k])).collect();
            idx[0]
        };
        let same_shard: Vec<u64> = (0..10_000u64)
            .filter(|&k| t.shard_index(&[k]) == victim)
            .take(2000)
            .collect();
        for &k in &same_shard {
            assert!(!t.lookup(0, &[k], &mut out));
            t.record(0, &[k], &[k]);
        }
        let states = t.shard_states();
        assert_eq!(states[victim], TableState::Bypassed);
        assert!(
            states
                .iter()
                .enumerate()
                .any(|(i, &s)| i != victim && s == TableState::Active),
            "independent shards should remain active"
        );
        assert!(t.bypassed_total() > 0);
    }
}
