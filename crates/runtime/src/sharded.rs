//! A sharded, shareable wrapper over [`MemoTable`] for concurrent probing.
//!
//! A [`MemoTable`] is `&mut`-owned by one VM and dies with the run. A
//! [`ShardedTable`] wraps the same storage kinds in N power-of-two lock
//! shards (std [`Mutex`] only — the workspace builds offline) so many
//! worker threads can probe one long-lived reuse store through `&self`.
//! Each shard is a complete `MemoTable` — storage, telemetry, and its own
//! [`AdaptiveGuard`](crate::AdaptiveGuard) — so the adaptive machinery is
//! evaluated per shard with no extra code.
//!
//! ## Sharding scheme
//!
//! A key is routed to shard `fib(jenkins(key)) >> (32 - log2 N)`:
//! [`hash_words`] streams the key's words through the Jenkins hash (no
//! single-word modulo shortcut, unlike [`crate::hash::index_of`]) and a
//! Fibonacci multiply selects the *high* bits, so the shard choice stays
//! decorrelated from the in-shard slot index (which uses the low bits).
//! Within a shard the lookup/record contract is exactly the sequential
//! one, which is what makes results store-independent: a hit only ever
//! returns outputs recorded for a bit-identical key.
//!
//! ## What merging preserves
//!
//! Every counter increment happens under exactly one shard lock, so the
//! aggregate [`ShardedTable::stats`] is a lossless sum of the per-shard
//! deltas: no access is lost or double-counted under contention (asserted
//! by `tests/sharded_prop.rs`). The aggregate taken while writers are
//! still running is a momentary snapshot; quiesce first for exact totals.
//!
//! ## Poisoning and fault injection
//!
//! A shard whose lock is poisoned (a worker panicked mid-access) is
//! recovered on the next acquisition: the poison flag is cleared and the
//! shard's *entries dropped* — its storage may have been mid-update, and
//! forgetting is always sound for a cache, so the shard restarts empty but
//! valid while every other shard keeps serving untouched. Recoveries are
//! counted ([`ShardedTable::poison_recoveries`]). For chaos testing, an
//! installed [`FaultPlan`] can force probe misses
//! ([`FailPoint::ProbeMiss`]) and [`ShardedTable::poison_shard`] poisons a
//! shard's lock for real via a deliberate panic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::faults::{FailPoint, FaultPlan, INJECTED_POISON_PANIC};
use crate::guard::{GuardPolicy, TableState};
use crate::hash::hash_words;
use crate::stats::TableStats;
use crate::{FpValidator, MemoTable, SpecError, TableSpec};

/// The three table kinds wrapped in N power-of-two lock shards, probed
/// through `&self` so one store can outlive and be shared by many runs.
#[derive(Debug)]
pub struct ShardedTable {
    shards: Vec<Mutex<MemoTable>>,
    /// `shards.len() - 1`; the length is a power of two.
    mask: u32,
    /// Times a poisoned shard was recovered (cleared and restarted empty).
    poison_recoveries: AtomicU64,
    /// Chaos plane; `None` (the default) costs one branch per lookup.
    faults: Option<Arc<FaultPlan>>,
}

impl ShardedTable {
    /// Builds a sharded store from `spec`, rounding `shards` up to the
    /// next power of two (minimum 1). The spec's slot budget is divided
    /// across the shards (at least one slot each); multi-segment specs
    /// get merged shards, single-segment specs direct-addressed ones,
    /// mirroring the pipeline's kind choice.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec is structurally invalid.
    pub fn try_from_spec(spec: &TableSpec, shards: usize) -> Result<Self, SpecError> {
        spec.validate()?;
        let n = shards.max(1).next_power_of_two();
        let per_shard = TableSpec {
            slots: (spec.slots / n).max(1),
            key_words: spec.key_words,
            out_words: spec.out_words.clone(),
        };
        let mut built = Vec::with_capacity(n);
        for _ in 0..n {
            let table = if per_shard.out_words.len() > 1 {
                MemoTable::try_merged(&per_shard)?
            } else {
                MemoTable::try_direct(&per_shard)?
            };
            built.push(Mutex::new(table));
        }
        Ok(ShardedTable {
            shards: built,
            mask: (n - 1) as u32,
            poison_recoveries: AtomicU64::new(0),
            faults: None,
        })
    }

    /// Installs (or removes, with `None`) a fault-injection plan. Takes
    /// `&mut self`: plans are wired at build time, before the store is
    /// shared. With a plan installed, [`FailPoint::ProbeMiss`] fires turn
    /// lookups into forced misses (sound: the caller recomputes, exactly
    /// as on a cold miss, and the probe is not counted in the stats).
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// Installs `policy` on every shard (each shard's guard is reset to
    /// `Active` and re-windowed). Takes `&mut self`: policies are set at
    /// build time, before the store is shared.
    pub fn set_policy(&mut self, policy: GuardPolicy) {
        for shard in &mut self.shards {
            shard
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .set_policy(policy.clone());
        }
    }

    fn shard_index(&self, key: &[u64]) -> usize {
        if self.mask == 0 || key.is_empty() {
            return 0;
        }
        let bits = (self.mask + 1).trailing_zeros();
        let h = hash_words(key).wrapping_mul(0x9E37_79B1);
        (h >> (32 - bits)) as usize
    }

    /// The shard `key` routes to (exposed so tests and fault drivers can
    /// target a specific shard deterministically).
    pub fn shard_of(&self, key: &[u64]) -> usize {
        self.shard_index(key)
    }

    fn lock(&self, i: usize) -> MutexGuard<'_, MemoTable> {
        self.shards[i].lock().unwrap_or_else(|poisoned| {
            // Another worker panicked while holding this shard: its storage
            // may be mid-update, so drop the entries (forgetting is always
            // sound for a cache) and clear the flag so later acquisitions
            // see a healthy, empty shard instead of re-recovering forever.
            self.shards[i].clear_poison();
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        })
    }

    /// Looks up `key` for segment `slot` in the shard the key hashes to.
    /// Same contract as [`MemoTable::lookup`]; a bypassed shard answers a
    /// forced miss, as does a fired [`FailPoint::ProbeMiss`] (which skips
    /// the probe entirely, leaving statistics untouched).
    pub fn lookup(&self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        if let Some(plan) = &self.faults {
            if plan.fire(FailPoint::ProbeMiss) {
                return false;
            }
        }
        self.lock(self.shard_index(key)).lookup(slot, key, out)
    }

    /// Dependency-validating lookup in the shard the key hashes to; same
    /// contract as [`MemoTable::lookup_dep`]. The validator runs under the
    /// shard lock (it only reads caller-local epoch state, so it cannot
    /// deadlock against other shards), and a fired
    /// [`FailPoint::ProbeMiss`] still skips the probe entirely.
    pub fn lookup_dep(
        &self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        validate: FpValidator,
    ) -> bool {
        if let Some(plan) = &self.faults {
            if plan.fire(FailPoint::ProbeMiss) {
                return false;
            }
        }
        self.lock(self.shard_index(key))
            .lookup_dep(slot, key, out, green, validate)
    }

    /// Records `outputs` for `key` in segment `slot` in the shard the key
    /// hashes to (dropped while that shard is bypassed).
    pub fn record(&self, slot: usize, key: &[u64], outputs: &[u64]) {
        self.lock(self.shard_index(key)).record(slot, key, outputs)
    }

    /// Records `outputs` plus a dependency fingerprint for `key` in
    /// segment `slot` (`&[]` for exact-match entries).
    pub fn record_dep(&self, slot: usize, key: &[u64], outputs: &[u64], fp: &[u64]) {
        self.lock(self.shard_index(key))
            .record_dep(slot, key, outputs, fp)
    }

    /// Declares segment `slot`'s fingerprint width on every shard; see
    /// [`MemoTable::set_deps`]. Takes `&mut self`: dependency layouts are
    /// wired at build time, before the store is shared.
    pub fn set_deps(&mut self, slot: usize, fp_words: usize) {
        for shard in &mut self.shards {
            shard
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .set_deps(slot, fp_words);
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lossless aggregate statistics: the sum of every shard's counters.
    pub fn stats(&self) -> TableStats {
        let mut total = TableStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        total
    }

    /// Per-shard statistics snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<TableStats> {
        (0..self.shards.len())
            .map(|i| *self.lock(i).stats())
            .collect()
    }

    /// Per-shard guard states, in shard order.
    pub fn shard_states(&self) -> Vec<TableState> {
        (0..self.shards.len())
            .map(|i| self.lock(i).state())
            .collect()
    }

    /// Total storage footprint across shards, in bytes.
    pub fn bytes(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).bytes()).sum()
    }

    /// Total slot count across shards.
    pub fn slots(&self) -> usize {
        (0..self.shards.len()).map(|i| self.lock(i).slots()).sum()
    }

    /// Total lookups answered as forced misses by bypassed shards.
    pub fn bypassed_total(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock(i).telemetry().bypassed_total())
            .sum()
    }

    /// Total recordings dropped by bypassed shards.
    pub fn dropped_records(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock(i).telemetry().dropped_records())
            .sum()
    }

    /// Times a poisoned shard lock was recovered (shard cleared and
    /// restarted empty).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Genuinely poisons shard `shard`'s lock by panicking while holding
    /// it (the panic is caught here; install
    /// [`crate::silence_injected_panics`] to mute its report). The next
    /// acquisition recovers the shard empty-but-valid. Chaos-testing
    /// entry point for the retryable poisoned-shard fault.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn poison_shard(&self, shard: usize) {
        assert!(shard < self.shards.len(), "shard out of range");
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.shards[shard]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::panic::panic_any(INJECTED_POISON_PANIC);
        }));
    }

    /// Forces every shard into [`TableState::Bypassed`] (service-level
    /// degradation under overload), journaling `reason` per shard.
    pub fn force_bypass(&self, reason: &'static str) {
        for i in 0..self.shards.len() {
            self.lock(i).force_bypass(reason);
        }
    }

    /// Ends a forced bypass on every shard (enabled guards re-enter via
    /// probation, disabled ones return to `Active`), journaling `reason`.
    pub fn end_forced_bypass(&self, reason: &'static str) {
        for i in 0..self.shards.len() {
            self.lock(i).end_forced_bypass(reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(slots: usize) -> TableSpec {
        TableSpec {
            slots,
            key_words: 1,
            out_words: vec![1],
        }
    }

    #[test]
    fn round_trips_through_shared_reference() {
        let t = ShardedTable::try_from_spec(&spec(64), 8).unwrap();
        let mut out = Vec::new();
        assert!(!t.lookup(0, &[42], &mut out));
        t.record(0, &[42], &[7]);
        assert!(t.lookup(0, &[42], &mut out));
        assert_eq!(out, vec![7]);
        let s = t.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (ask, got) in [(0, 1), (1, 1), (3, 4), (4, 4), (5, 8)] {
            let t = ShardedTable::try_from_spec(&spec(64), ask).unwrap();
            assert_eq!(t.shard_count(), got);
        }
    }

    #[test]
    fn slot_budget_is_divided_across_shards() {
        let t = ShardedTable::try_from_spec(&spec(64), 8).unwrap();
        assert_eq!(t.slots(), 64);
        // A tiny spec still gets one slot per shard.
        let tiny = ShardedTable::try_from_spec(&spec(2), 8).unwrap();
        assert_eq!(tiny.slots(), 8);
    }

    #[test]
    fn invalid_specs_yield_typed_errors() {
        let bad = TableSpec {
            slots: 0,
            key_words: 1,
            out_words: vec![1],
        };
        assert_eq!(
            ShardedTable::try_from_spec(&bad, 4).err(),
            Some(SpecError::ZeroSlots)
        );
    }

    #[test]
    fn keys_spread_over_shards() {
        let t = ShardedTable::try_from_spec(&spec(1024), 8).unwrap();
        for k in 0..256u64 {
            t.record(0, &[k], &[k]);
        }
        let used = t.shard_stats().iter().filter(|s| s.insertions > 0).count();
        assert!(used >= 4, "only {used} of 8 shards saw traffic");
    }

    #[test]
    fn aggregate_stats_equal_sum_of_shards() {
        let t = ShardedTable::try_from_spec(&spec(32), 4).unwrap();
        let mut out = Vec::new();
        for k in 0..100u64 {
            if !t.lookup(0, &[k % 13], &mut out) {
                t.record(0, &[k % 13], &[k]);
            }
        }
        let mut sum = TableStats::default();
        for s in t.shard_stats() {
            sum.merge(&s);
        }
        assert_eq!(t.stats(), sum);
        assert_eq!(sum.accesses, 100);
    }

    #[test]
    fn merged_specs_build_merged_shards() {
        let mspec = TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![1, 2],
        };
        let t = ShardedTable::try_from_spec(&mspec, 2).unwrap();
        let mut out = Vec::new();
        t.record(1, &[5], &[8, 9]);
        assert!(t.lookup(1, &[5], &mut out));
        assert_eq!(out, vec![8, 9]);
        assert!(!t.lookup(0, &[5], &mut out), "segment 0 not yet valid");
    }

    #[test]
    fn full_rate_probe_miss_plan_forces_every_lookup_to_miss() {
        use crate::faults::{FailPoint, FaultPlan};
        let mut t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        t.record(0, &[42], &[7]);
        assert!(t.lookup(0, &[42], &mut out), "no plan yet: genuine hit");
        let plan = std::sync::Arc::new(FaultPlan::new(1).with_rate(FailPoint::ProbeMiss, 1.0));
        t.set_fault_plan(Some(plan.clone()));
        let stats_before = t.stats();
        for _ in 0..10 {
            assert!(!t.lookup(0, &[42], &mut out), "forced miss");
        }
        assert_eq!(plan.fired(FailPoint::ProbeMiss), 10);
        assert_eq!(
            t.stats(),
            stats_before,
            "forced misses skip the probe and the stats"
        );
        t.set_fault_plan(None);
        assert!(t.lookup(0, &[42], &mut out), "entry survived the faults");
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn poisoned_shard_recovers_empty_and_counts() {
        crate::faults::silence_injected_panics();
        let t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        t.record(0, &[1], &[10]);
        let victim = t.shard_of(&[1]);
        t.poison_shard(victim);
        assert!(
            !t.lookup(0, &[1], &mut out),
            "recovered shard restarts empty"
        );
        assert_eq!(t.poison_recoveries(), 1);
        // Recovery is one-shot: the shard serves normally afterwards.
        t.record(0, &[1], &[11]);
        assert!(t.lookup(0, &[1], &mut out));
        assert_eq!(out, vec![11]);
        assert_eq!(t.poison_recoveries(), 1, "no re-recovery loop");
    }

    #[test]
    fn forced_bypass_flips_all_shards_and_ends_cleanly() {
        let t = ShardedTable::try_from_spec(&spec(64), 4).unwrap();
        let mut out = Vec::new();
        t.record(0, &[5], &[50]);
        t.force_bypass("overload shed");
        assert!(t.shard_states().iter().all(|&s| s == TableState::Bypassed));
        assert!(!t.lookup(0, &[5], &mut out), "bypassed: forced miss");
        t.end_forced_bypass("overload cleared");
        // Guards are disabled by default, so they return straight to Active.
        assert!(t.shard_states().iter().all(|&s| s == TableState::Active));
        assert!(t.lookup(0, &[5], &mut out), "entries survived the bypass");
        assert_eq!(out, vec![50]);
    }

    #[test]
    fn per_shard_guard_bypasses_independently() {
        let mut t = ShardedTable::try_from_spec(&spec(4), 4).unwrap();
        t.set_policy(GuardPolicy {
            enabled: true,
            epoch_len: 16,
            predicted_collision_rate: 0.0,
            margin: 0.01,
            k_epochs: 1,
            bypass_epochs: 1000,
            max_resizes: 0,
            ..GuardPolicy::default()
        });
        // Hammer one shard with all-distinct keys until it trips; other
        // shards must stay active.
        let mut out = Vec::new();
        let victim = {
            // Find two keys in the same shard and one elsewhere.
            let idx: Vec<usize> = (0..64).map(|k| t.shard_index(&[k])).collect();
            idx[0]
        };
        let same_shard: Vec<u64> = (0..10_000u64)
            .filter(|&k| t.shard_index(&[k]) == victim)
            .take(2000)
            .collect();
        for &k in &same_shard {
            assert!(!t.lookup(0, &[k], &mut out));
            t.record(0, &[k], &[k]);
        }
        let states = t.shard_states();
        assert_eq!(states[victim], TableState::Bypassed);
        assert!(
            states
                .iter()
                .enumerate()
                .any(|(i, &s)| i != victim && s == TableState::Active),
            "independent shards should remain active"
        );
        assert!(t.bypassed_total() > 0);
    }
}
