//! Deterministic fault injection for the reuse runtime and service.
//!
//! The paper's contract is that reuse is an *optimization*: under any
//! perturbation it may cost latency or hit ratio, never correctness
//! (DESIGN.md §8f). This module is the chaos plane that proves it. A
//! [`FaultPlan`] holds one injection rate per [`FailPoint`]; every
//! consultation ([`FaultPlan::fire`]) draws from a SplitMix64 stream
//! derived from `seed ^ point ^ draw-index` — no wall clock, no global
//! RNG — so a plan's decisions are a pure function of the seed and each
//! point's consultation count. Counters record how many draws happened
//! and how many fired, letting tests assert that faults genuinely ran.
//!
//! The plan is shared behind an `Arc` and consulted through `&self`;
//! every site holds it as `Option<Arc<FaultPlan>>`, so the disabled case
//! costs exactly one branch on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

/// Payload used by injected shard-poisoning panics, so the optional
/// panic-hook filter ([`silence_injected_panics`]) can recognise and
/// mute exactly them.
pub const INJECTED_POISON_PANIC: &str = "injected shard poison (chaos plane)";

/// Number of distinct [`FailPoint`]s.
pub const FAIL_POINT_COUNT: usize = 4;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailPoint {
    /// A [`crate::ShardedTable::lookup`] answers a forced miss without
    /// probing (sound: the caller recomputes, as on any cold miss).
    ProbeMiss,
    /// A store shard's lock is genuinely poisoned (a panic while holding
    /// it); retryable at the service layer, recovered on the next probe.
    ShardPoison,
    /// A queue push is rejected as if the queue were full; retryable.
    QueueReject,
    /// A request is charged [`FaultPlan::slow_penalty_cycles`] extra
    /// cycles, the deterministic stand-in for a stalled dependency —
    /// what request deadlines are measured against.
    SlowRequest,
}

impl FailPoint {
    /// Every fail point, in counter order.
    pub const ALL: [FailPoint; FAIL_POINT_COUNT] = [
        FailPoint::ProbeMiss,
        FailPoint::ShardPoison,
        FailPoint::QueueReject,
        FailPoint::SlowRequest,
    ];

    /// Short snake_case name (used in metrics reports).
    pub fn name(self) -> &'static str {
        match self {
            FailPoint::ProbeMiss => "probe_miss",
            FailPoint::ShardPoison => "shard_poison",
            FailPoint::QueueReject => "queue_reject",
            FailPoint::SlowRequest => "slow_request",
        }
    }

    fn index(self) -> usize {
        match self {
            FailPoint::ProbeMiss => 0,
            FailPoint::ShardPoison => 1,
            FailPoint::QueueReject => 2,
            FailPoint::SlowRequest => 3,
        }
    }

    /// Decorrelates the per-point draw streams.
    fn salt(self) -> u64 {
        [
            0xA076_1D64_78BD_642F,
            0xE703_7ED1_A0B4_28DB,
            0x8EBC_6AF0_9C88_C6E3,
            0x5899_65CC_7537_4CC3,
        ][self.index()]
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A point-in-time snapshot of a plan's draw/fired counters, one pair per
/// [`FailPoint`] in [`FailPoint::ALL`] order. Batch reports subtract two
/// snapshots ([`FaultCounters::delta_since`]) the same way table stats do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Times each point was consulted.
    pub draws: [u64; FAIL_POINT_COUNT],
    /// Times each point actually injected its fault.
    pub fired: [u64; FAIL_POINT_COUNT],
}

impl FaultCounters {
    /// Draws at `point`.
    pub fn draws_at(&self, point: FailPoint) -> u64 {
        self.draws[point.index()]
    }

    /// Fires at `point`.
    pub fn fired_at(&self, point: FailPoint) -> u64 {
        self.fired[point.index()]
    }

    /// Total injected faults across every point.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// The counters accumulated since `earlier` (saturating).
    pub fn delta_since(&self, earlier: &FaultCounters) -> FaultCounters {
        let mut d = FaultCounters::default();
        for i in 0..FAIL_POINT_COUNT {
            d.draws[i] = self.draws[i].saturating_sub(earlier.draws[i]);
            d.fired[i] = self.fired[i].saturating_sub(earlier.fired[i]);
        }
        d
    }
}

/// A deterministic, shareable fault-injection plan.
///
/// Build one with [`FaultPlan::new`] and per-point rates, wrap it in an
/// `Arc`, and hand it to the sites that should misbehave (the sharded
/// store, the request queue, the worker loop). Determinism contract: for
/// a fixed seed, the n-th consultation of a given point always answers
/// the same way, regardless of which thread asks.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; FAIL_POINT_COUNT],
    slow_penalty_cycles: u64,
    draws: [AtomicU64; FAIL_POINT_COUNT],
    fired: [AtomicU64; FAIL_POINT_COUNT],
    /// Separate stream for structural picks (which shard to poison,
    /// backoff jitter) so they never perturb the fire/no-fire sequences.
    aux: AtomicU64,
}

impl FaultPlan {
    /// A plan with every rate zero (fires nothing until rates are set).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed: splitmix64(seed ^ 0x5EED_FA17_7F1A), // decorrelate tiny seeds
            rates: [0.0; FAIL_POINT_COUNT],
            slow_penalty_cycles: 1 << 40,
            draws: Default::default(),
            fired: Default::default(),
            aux: AtomicU64::new(0),
        }
    }

    /// Sets `point`'s injection probability (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_rate(mut self, point: FailPoint, rate: f64) -> Self {
        self.rates[point.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets every point's injection probability at once.
    #[must_use]
    pub fn with_all_rates(mut self, rate: f64) -> Self {
        for r in &mut self.rates {
            *r = rate.clamp(0.0, 1.0);
        }
        self
    }

    /// Sets the synthetic cycle penalty a [`FailPoint::SlowRequest`] fire
    /// charges (default `2^40`, large enough to trip any realistic
    /// cycle deadline on its own).
    #[must_use]
    pub fn with_slow_penalty_cycles(mut self, cycles: u64) -> Self {
        self.slow_penalty_cycles = cycles;
        self
    }

    /// The (mixed) seed identifying this plan's streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `point`'s injection probability.
    pub fn rate(&self, point: FailPoint) -> f64 {
        self.rates[point.index()]
    }

    /// Cycle penalty charged per [`FailPoint::SlowRequest`] fire.
    pub fn slow_penalty_cycles(&self) -> u64 {
        self.slow_penalty_cycles
    }

    /// Whether any point can fire at all.
    pub fn any_enabled(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Draws the next decision for `point`: `true` means inject the
    /// fault. Deterministic per (seed, point, draw index).
    pub fn fire(&self, point: FailPoint) -> bool {
        let i = point.index();
        let rate = self.rates[i];
        if rate <= 0.0 {
            return false;
        }
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        let z = splitmix64(self.seed ^ point.salt() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits → uniform in [0, 1) at f64 precision.
        let hit = ((z >> 11) as f64) < rate * (1u64 << 53) as f64;
        if hit {
            self.fired[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Times `point` has injected its fault so far.
    pub fn fired(&self, point: FailPoint) -> u64 {
        self.fired[point.index()].load(Ordering::Relaxed)
    }

    /// Times `point` has been consulted so far.
    pub fn draws(&self, point: FailPoint) -> u64 {
        self.draws[point.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of every counter (for batch deltas in reports).
    pub fn counters(&self) -> FaultCounters {
        let mut c = FaultCounters::default();
        for i in 0..FAIL_POINT_COUNT {
            c.draws[i] = self.draws[i].load(Ordering::Relaxed);
            c.fired[i] = self.fired[i].load(Ordering::Relaxed);
        }
        c
    }

    fn aux_draw(&self) -> u64 {
        let n = self.aux.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed ^ 0xD6E8_FEB8_6659_FD93 ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A structural pick in `0..n` (which table, which shard), from the
    /// auxiliary stream so it never shifts the fire/no-fire sequences.
    /// Returns 0 when `n` is 0.
    pub fn pick(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.aux_draw() % n
    }

    /// Decorrelated-jitter exponential backoff (the "decorrelated jitter"
    /// scheme): a uniform draw from `[base_ns, min(cap_ns, base_ns *
    /// 3^attempt)]`, so retry storms desynchronise instead of thundering
    /// in lockstep. `attempt` counts from 1.
    pub fn backoff_ns(&self, attempt: u32, base_ns: u64, cap_ns: u64) -> u64 {
        let base = base_ns.max(1);
        let ceil = base
            .saturating_mul(3u64.saturating_pow(attempt.min(32)))
            .min(cap_ns.max(base));
        base + self.aux_draw() % (ceil - base + 1)
    }
}

/// Installs (once) a panic-hook filter that mutes the report of panics
/// whose payload is [`INJECTED_POISON_PANIC`] — the deliberate panics the
/// chaos plane uses to poison shard locks — and delegates every other
/// panic to the previous hook. Panic *propagation* is untouched; only the
/// stderr noise of intentional poisoning is suppressed.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(INJECTED_POISON_PANIC))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_POISON_PANIC));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires_and_never_draws() {
        let p = FaultPlan::new(7);
        for point in FailPoint::ALL {
            for _ in 0..100 {
                assert!(!p.fire(point));
            }
            assert_eq!(p.fired(point), 0);
            // Disabled points return before touching the draw counter.
            assert_eq!(p.draws(point), 0);
        }
    }

    #[test]
    fn full_rate_always_fires() {
        let p = FaultPlan::new(7).with_rate(FailPoint::ProbeMiss, 1.0);
        for _ in 0..50 {
            assert!(p.fire(FailPoint::ProbeMiss));
        }
        assert_eq!(p.fired(FailPoint::ProbeMiss), 50);
        assert_eq!(p.draws(FailPoint::ProbeMiss), 50);
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultPlan::new(42).with_all_rates(0.3);
        let b = FaultPlan::new(42).with_all_rates(0.3);
        for point in FailPoint::ALL {
            for _ in 0..200 {
                assert_eq!(a.fire(point), b.fire(point));
            }
        }
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1).with_all_rates(0.5);
        let b = FaultPlan::new(2).with_all_rates(0.5);
        let same = (0..256)
            .filter(|_| a.fire(FailPoint::QueueReject) == b.fire(FailPoint::QueueReject))
            .count();
        assert!(same < 256, "streams should not be identical");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = FaultPlan::new(9).with_rate(FailPoint::SlowRequest, 0.25);
        let n = 10_000;
        let hits = (0..n).filter(|_| p.fire(FailPoint::SlowRequest)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "observed rate {frac}");
        assert_eq!(p.draws(FailPoint::SlowRequest), n);
        assert_eq!(p.fired(FailPoint::SlowRequest), hits as u64);
    }

    #[test]
    fn counters_delta_subtracts() {
        let p = FaultPlan::new(3).with_all_rates(0.5);
        for _ in 0..100 {
            p.fire(FailPoint::ProbeMiss);
        }
        let before = p.counters();
        for _ in 0..40 {
            p.fire(FailPoint::ProbeMiss);
        }
        let delta = p.counters().delta_since(&before);
        assert_eq!(delta.draws_at(FailPoint::ProbeMiss), 40);
        assert!(delta.fired_at(FailPoint::ProbeMiss) <= 40);
        assert_eq!(delta.draws_at(FailPoint::QueueReject), 0);
    }

    #[test]
    fn backoff_grows_within_bounds() {
        let p = FaultPlan::new(11);
        for attempt in 1..8 {
            for _ in 0..50 {
                let ns = p.backoff_ns(attempt, 1_000, 50_000);
                assert!(ns >= 1_000, "below base: {ns}");
                assert!(ns <= 50_000, "above cap: {ns}");
            }
        }
        // Attempt 1 is bounded by base*3.
        for _ in 0..50 {
            assert!(p.backoff_ns(1, 1_000, 50_000) <= 3_000);
        }
    }

    #[test]
    fn pick_stays_in_range_and_handles_zero() {
        let p = FaultPlan::new(5);
        assert_eq!(p.pick(0), 0);
        for _ in 0..100 {
            assert!(p.pick(7) < 7);
        }
    }
}
