//! Adaptive degradation for memo tables.
//!
//! The compiler admits a segment when its *profiled* collision-deducted
//! reuse rate clears the cost-benefit bar (paper §2.1, §3.1) — but the
//! profile can diverge from deployment inputs. The guard closes that gap
//! at run time: it watches each table's windowed (per-epoch) collision
//! rate against the profile-predicted threshold and, after `k_epochs`
//! consecutive bad windows, either **resizes** the table (when growth is
//! still allowed and the table is earning hits) or **bypasses** it
//! entirely. A bypassed table periodically re-enters a one-epoch
//! **probation** probe and is re-enabled when the live collision rate has
//! come back under the threshold.
//!
//! State machine (all transitions happen at epoch boundaries):
//!
//! ```text
//!            k bad epochs, resize budget left
//!   Active ────────────────────────────────▶ Active (table doubled)
//!   Active ────────────────────────────────▶ Bypassed  (budget spent)
//!   Bypassed ──(bypass_epochs elapsed)─────▶ Probation
//!   Probation ──(window rate ≤ threshold)──▶ Active
//!   Probation ──(window rate > threshold)──▶ Bypassed
//! ```

use crate::stats::TableStats;

/// Lifecycle state of a guarded table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableState {
    /// Serving lookups and recordings normally.
    Active,
    /// Lookups return misses without probing; recordings are dropped.
    Bypassed,
    /// Serving normally for one epoch to re-measure the live rates.
    Probation,
}

impl TableState {
    /// Short lowercase name (used in metrics reports).
    pub fn name(self) -> &'static str {
        match self {
            TableState::Active => "active",
            TableState::Bypassed => "bypassed",
            TableState::Probation => "probation",
        }
    }
}

/// Tuning knobs for the adaptive guard, derived per table by the pipeline
/// (the predicted collision rate comes from the value profile) with
/// conservative defaults everywhere else.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardPolicy {
    /// Whether the guard may change state at all. When `false` the table
    /// stays `Active` forever and the guard only feeds telemetry — the
    /// default, so observation never perturbs a measurement run.
    pub enabled: bool,
    /// Accesses per observation window (bypassed probes count, so a
    /// bypassed table still makes progress toward probation).
    pub epoch_len: u64,
    /// Collision rate the profile predicted at the planned table size
    /// (`SegProfile::collision_deduction`); the live threshold sits
    /// `margin` above it.
    pub predicted_collision_rate: f64,
    /// Slack added to the prediction before a window counts as bad.
    pub margin: f64,
    /// Consecutive bad windows before the guard acts.
    pub k_epochs: u32,
    /// Windows to stay bypassed before the next probation probe.
    pub bypass_epochs: u32,
    /// Times the guard may double the table instead of bypassing.
    pub max_resizes: u32,
    /// Byte ceiling a resize must stay under (`None` = unbounded).
    pub resize_bytes_cap: Option<usize>,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy {
            enabled: false,
            epoch_len: 1024,
            predicted_collision_rate: 0.05,
            margin: 0.10,
            k_epochs: 3,
            bypass_epochs: 4,
            max_resizes: 1,
            resize_bytes_cap: None,
        }
    }
}

impl GuardPolicy {
    /// The live collision rate above which a window counts as bad.
    pub fn threshold(&self) -> f64 {
        self.predicted_collision_rate + self.margin
    }
}

/// What the table owner must do after an epoch closes.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochVerdict {
    /// `Some((from, to, reason))` when the state machine moved (a resize
    /// reports `Active → Active` with reason `"resize"`).
    pub transition: Option<(TableState, TableState, &'static str)>,
    /// `Some(new_slots)` when the table should be rebuilt at a new size.
    pub resize_to: Option<usize>,
}

impl EpochVerdict {
    fn quiet() -> Self {
        EpochVerdict {
            transition: None,
            resize_to: None,
        }
    }
}

/// Per-table adaptive controller; owned by `MemoTable`.
#[derive(Debug, Clone)]
pub struct AdaptiveGuard {
    policy: GuardPolicy,
    state: TableState,
    consecutive_bad: u32,
    bypassed_for: u32,
    resizes_done: u32,
}

impl AdaptiveGuard {
    /// A guard starting in `Active` under `policy`.
    pub fn new(policy: GuardPolicy) -> Self {
        AdaptiveGuard {
            policy,
            state: TableState::Active,
            consecutive_bad: 0,
            bypassed_for: 0,
            resizes_done: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TableState {
        self.state
    }

    /// Whether lookups/recordings should skip the table right now.
    pub fn is_bypassed(&self) -> bool {
        self.state == TableState::Bypassed
    }

    /// The active policy.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Replaces the policy and resets the state machine to `Active`.
    pub fn set_policy(&mut self, policy: GuardPolicy) {
        *self = AdaptiveGuard::new(policy);
    }

    /// Number of resizes performed so far.
    pub fn resizes_done(&self) -> u32 {
        self.resizes_done
    }

    /// Forces the guard into `Bypassed` immediately (service degradation
    /// under overload), regardless of `policy.enabled` — unlike the
    /// epoch-driven transitions, external degradation must work even on
    /// guards configured as observe-only.
    pub fn force_bypass(&mut self) {
        self.state = TableState::Bypassed;
        self.consecutive_bad = 0;
        self.bypassed_for = 0;
    }

    /// Ends an externally forced bypass. An enabled guard re-enters
    /// through the `Probation` probe (re-measuring before trusting the
    /// table again); a disabled one returns straight to `Active`, since
    /// `on_epoch` would never move it out of probation.
    pub fn end_forced_bypass(&mut self) {
        if self.state != TableState::Bypassed {
            return;
        }
        self.state = if self.policy.enabled {
            TableState::Probation
        } else {
            TableState::Active
        };
        self.consecutive_bad = 0;
        self.bypassed_for = 0;
    }

    /// Closes an observation window. `window` holds the epoch's counters
    /// (zero accesses when the table was bypassed throughout); `slots` and
    /// `entry_bytes` describe the table's current geometry for resize
    /// decisions.
    pub fn on_epoch(
        &mut self,
        window: &TableStats,
        slots: usize,
        entry_bytes: usize,
    ) -> EpochVerdict {
        if !self.policy.enabled {
            return EpochVerdict::quiet();
        }
        match self.state {
            TableState::Active => {
                if window.accesses > 0 && window.collision_rate() > self.policy.threshold() {
                    self.consecutive_bad += 1;
                } else {
                    self.consecutive_bad = 0;
                }
                if self.consecutive_bad < self.policy.k_epochs {
                    return EpochVerdict::quiet();
                }
                self.consecutive_bad = 0;
                let doubled = slots.saturating_mul(2);
                let fits = self
                    .policy
                    .resize_bytes_cap
                    .is_none_or(|cap| doubled.saturating_mul(entry_bytes) <= cap);
                // Growing only pays while the table still earns hits;
                // a table that is all collisions just gets out of the way.
                if self.resizes_done < self.policy.max_resizes && fits && window.hit_ratio() > 0.0 {
                    self.resizes_done += 1;
                    EpochVerdict {
                        transition: Some((TableState::Active, TableState::Active, "resize")),
                        resize_to: Some(doubled),
                    }
                } else {
                    self.state = TableState::Bypassed;
                    self.bypassed_for = 0;
                    EpochVerdict {
                        transition: Some((
                            TableState::Active,
                            TableState::Bypassed,
                            "collision rate over threshold",
                        )),
                        resize_to: None,
                    }
                }
            }
            TableState::Bypassed => {
                self.bypassed_for += 1;
                if self.bypassed_for < self.policy.bypass_epochs {
                    return EpochVerdict::quiet();
                }
                self.state = TableState::Probation;
                EpochVerdict {
                    transition: Some((
                        TableState::Bypassed,
                        TableState::Probation,
                        "probation probe",
                    )),
                    resize_to: None,
                }
            }
            TableState::Probation => {
                let healthy =
                    window.accesses == 0 || window.collision_rate() <= self.policy.threshold();
                if healthy {
                    self.state = TableState::Active;
                    self.consecutive_bad = 0;
                    EpochVerdict {
                        transition: Some((
                            TableState::Probation,
                            TableState::Active,
                            "probation passed",
                        )),
                        resize_to: None,
                    }
                } else {
                    self.state = TableState::Bypassed;
                    self.bypassed_for = 0;
                    EpochVerdict {
                        transition: Some((
                            TableState::Probation,
                            TableState::Bypassed,
                            "probation failed",
                        )),
                        resize_to: None,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bad_window() -> TableStats {
        TableStats {
            accesses: 100,
            hits: 0,
            misses: 100,
            collisions: 90,
            evictions: 90,
            insertions: 100,
            ..TableStats::default()
        }
    }

    fn good_window() -> TableStats {
        TableStats {
            accesses: 100,
            hits: 80,
            misses: 20,
            collisions: 2,
            evictions: 2,
            insertions: 20,
            ..TableStats::default()
        }
    }

    fn adaptive(max_resizes: u32) -> AdaptiveGuard {
        AdaptiveGuard::new(GuardPolicy {
            enabled: true,
            k_epochs: 2,
            bypass_epochs: 2,
            max_resizes,
            ..GuardPolicy::default()
        })
    }

    #[test]
    fn disabled_guard_never_moves() {
        let mut g = AdaptiveGuard::new(GuardPolicy::default());
        for _ in 0..20 {
            let v = g.on_epoch(&bad_window(), 16, 16);
            assert_eq!(v, EpochVerdict::quiet());
        }
        assert_eq!(g.state(), TableState::Active);
    }

    #[test]
    fn k_bad_epochs_bypass_without_resize_budget() {
        let mut g = adaptive(0);
        assert!(g.on_epoch(&bad_window(), 16, 16).transition.is_none());
        let v = g.on_epoch(&bad_window(), 16, 16);
        assert_eq!(
            v.transition,
            Some((
                TableState::Active,
                TableState::Bypassed,
                "collision rate over threshold"
            ))
        );
        assert!(g.is_bypassed());
    }

    #[test]
    fn good_epochs_reset_the_bad_streak() {
        let mut g = adaptive(0);
        g.on_epoch(&bad_window(), 16, 16);
        g.on_epoch(&good_window(), 16, 16);
        g.on_epoch(&bad_window(), 16, 16);
        assert_eq!(g.state(), TableState::Active, "streak was broken");
    }

    #[test]
    fn resize_budget_is_spent_before_bypass() {
        let mut g = adaptive(1);
        // A window that collides above threshold but still hits sometimes.
        let mixed = TableStats {
            accesses: 100,
            hits: 30,
            misses: 70,
            collisions: 40,
            evictions: 40,
            insertions: 70,
            ..TableStats::default()
        };
        g.on_epoch(&mixed, 16, 16);
        let v = g.on_epoch(&mixed, 16, 16);
        assert_eq!(v.resize_to, Some(32));
        assert_eq!(
            v.transition,
            Some((TableState::Active, TableState::Active, "resize"))
        );
        assert_eq!(g.state(), TableState::Active);
        // Budget is now exhausted: the next streak bypasses.
        g.on_epoch(&mixed, 32, 16);
        let v = g.on_epoch(&mixed, 32, 16);
        assert!(g.is_bypassed());
        assert!(v.resize_to.is_none());
    }

    #[test]
    fn resize_respects_bytes_cap() {
        let mut g = AdaptiveGuard::new(GuardPolicy {
            enabled: true,
            k_epochs: 1,
            max_resizes: 4,
            resize_bytes_cap: Some(16 * 16), // already at the cap
            ..GuardPolicy::default()
        });
        let v = g.on_epoch(&bad_window(), 16, 16);
        assert!(v.resize_to.is_none(), "doubling would exceed the cap");
        assert!(g.is_bypassed());
    }

    #[test]
    fn bypass_probation_reactivate_cycle() {
        let mut g = adaptive(0);
        g.on_epoch(&bad_window(), 16, 16);
        g.on_epoch(&bad_window(), 16, 16);
        assert!(g.is_bypassed());
        // Two bypassed epochs (no real accesses) then probation.
        let empty = TableStats::default();
        assert!(g.on_epoch(&empty, 16, 16).transition.is_none());
        let v = g.on_epoch(&empty, 16, 16);
        assert_eq!(g.state(), TableState::Probation);
        assert_eq!(
            v.transition,
            Some((
                TableState::Bypassed,
                TableState::Probation,
                "probation probe"
            ))
        );
        // A healthy probe window re-enables the table.
        let v = g.on_epoch(&good_window(), 16, 16);
        assert_eq!(g.state(), TableState::Active);
        assert_eq!(
            v.transition,
            Some((
                TableState::Probation,
                TableState::Active,
                "probation passed"
            ))
        );
    }

    #[test]
    fn forced_bypass_works_even_when_disabled() {
        let mut g = AdaptiveGuard::new(GuardPolicy::default());
        assert!(!g.policy().enabled);
        g.force_bypass();
        assert!(g.is_bypassed());
        g.end_forced_bypass();
        assert_eq!(
            g.state(),
            TableState::Active,
            "disabled guards skip probation"
        );
    }

    #[test]
    fn forced_bypass_ends_in_probation_when_enabled() {
        let mut g = adaptive(0);
        g.force_bypass();
        assert!(g.is_bypassed());
        g.end_forced_bypass();
        assert_eq!(g.state(), TableState::Probation);
        // A healthy probe window completes the recovery.
        g.on_epoch(&good_window(), 16, 16);
        assert_eq!(g.state(), TableState::Active);
        // Ending when not bypassed is a no-op.
        g.end_forced_bypass();
        assert_eq!(g.state(), TableState::Active);
    }

    #[test]
    fn failed_probation_goes_back_to_bypass() {
        let mut g = adaptive(0);
        g.on_epoch(&bad_window(), 16, 16);
        g.on_epoch(&bad_window(), 16, 16);
        let empty = TableStats::default();
        g.on_epoch(&empty, 16, 16);
        g.on_epoch(&empty, 16, 16);
        assert_eq!(g.state(), TableState::Probation);
        let v = g.on_epoch(&bad_window(), 16, 16);
        assert!(g.is_bypassed());
        assert_eq!(
            v.transition,
            Some((
                TableState::Probation,
                TableState::Bypassed,
                "probation failed"
            ))
        );
    }
}
