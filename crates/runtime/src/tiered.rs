//! Two-level tiering and frequency-based admission (DESIGN.md §8i).
//!
//! Two independent pieces share this module because both exist to protect
//! a shared [`crate::ShardedTable`] L2 from unprofitable traffic:
//!
//! - [`L1Cache`] — a small, per-worker, direct-mapped front cache probed
//!   before the sharded store. It is allocation-free after construction
//!   and takes no locks: each worker owns its L1 outright, so the only
//!   coherence question is staleness against the shared L2. The cache
//!   resolves it by construction: **only fingerprint-free segments are
//!   cacheable**. An entry without a dependency fingerprint maps its key
//!   to outputs as a pure function (DESIGN.md §8g), so a stale L1 copy is
//!   still a *correct* copy — the worst case is serving outputs the L2
//!   has since evicted, which a private memo table would have served too.
//!   Fingerprinted entries can genuinely go stale and are never cached.
//! - [`TinyLfu`] — a counting sketch (4-bit saturating counters, periodic
//!   halving) estimating key frequencies from the record stream. The
//!   sharded store consults it before letting a recording evict a
//!   resident entry with a different key: the candidate is admitted only
//!   when its estimated frequency *exceeds* the victim's, so one-shot
//!   keys stop churning hot entries out of a saturated table.

use crate::stats::TableStats;
use crate::TableSpec;

/// 64-bit mix (splitmix64 finaliser) used for L1 slot selection and the
/// TinyLFU row hashes. Distinct from the paper's Jenkins pipeline on
/// purpose: the sketch and the L1 want hash bits decorrelated from both
/// the L2 shard choice (Fibonacci high bits) and the in-shard index
/// (Jenkins low bits).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// 64-bit hash of a key's words, for [`TinyLfu`] frequency estimates and
/// [`L1Cache`] indexing.
pub fn key_hash64(key: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &w in key {
        h = mix64(h ^ w);
    }
    h
}

/// A per-worker direct-mapped front cache over one table of a shared
/// sharded store (DESIGN.md §8i).
///
/// Keys are admitted by *promotion only*: the first L2 hit for a key marks
/// its L1 slot as a candidate, and a second L2 hit for the same key while
/// the candidacy stands installs the entry (counted in
/// [`TableStats::promotions`]). Recordings never install fresh entries —
/// they only refresh an already-resident one (write-through), so a burst
/// of one-shot records cannot flush the L1.
#[derive(Debug, Clone)]
pub struct L1Cache {
    /// `slots - 1`; the slot count is a power of two.
    mask: u64,
    key_words: usize,
    /// Output width per segment slot (from the table's spec).
    out_words: Vec<usize>,
    /// Widest output group; the data stride reserves this much.
    max_out: usize,
    /// Per segment slot: `true` iff the segment declared no dependency
    /// fingerprint, making its entries pure key→output functions that are
    /// safe to serve stale.
    cacheable: Vec<bool>,
    /// Per L1 slot: `0` empty, else `1 | (segment_slot << 1)`.
    meta: Vec<u64>,
    /// Entry bodies at stride `key_words + max_out`.
    data: Vec<u64>,
    /// Per L1 slot: hash of the last L2-hit `(segment, key)` awaiting its
    /// second hit (`0` = no candidate).
    candidate: Vec<u64>,
    stats: TableStats,
}

impl L1Cache {
    /// A front cache with at least `slots` entries (rounded up to a power
    /// of two) for the table shaped by `spec`, whose segment `s` declared
    /// a `fp_words[s]`-word dependency fingerprint (`0` = exact-match).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `fp_words.len()` differs from the
    /// spec's segment count.
    pub fn new(slots: usize, spec: &TableSpec, fp_words: &[usize]) -> Self {
        assert!(slots > 0, "L1 must have at least one slot");
        assert_eq!(
            fp_words.len(),
            spec.out_words.len(),
            "one fingerprint width per segment"
        );
        let n = slots.next_power_of_two();
        let max_out = spec.out_words.iter().copied().max().unwrap_or(0);
        L1Cache {
            mask: (n - 1) as u64,
            key_words: spec.key_words,
            out_words: spec.out_words.clone(),
            max_out,
            cacheable: fp_words.iter().map(|&w| w == 0).collect(),
            meta: vec![0; n],
            data: vec![0; n * (spec.key_words + max_out)],
            candidate: vec![0; n],
            stats: TableStats::default(),
        }
    }

    fn stride(&self) -> usize {
        self.key_words + self.max_out
    }

    /// Number of L1 slots (a power of two).
    pub fn slots(&self) -> usize {
        self.meta.len()
    }

    /// Whether segment `slot`'s entries may be cached (declared
    /// fingerprint-free at build time).
    pub fn cacheable(&self, slot: usize) -> bool {
        self.cacheable.get(slot).copied().unwrap_or(false)
    }

    /// Counters accumulated by this cache: `accesses`/`hits`/`l1_hits` for
    /// probes it answered, `promotions` for installs. Probes it could not
    /// answer are *not* counted here — they resolve (and count) in the L2,
    /// so summing L1 and L2 stats counts every probe exactly once.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    fn index_and_hash(&self, slot: usize, key: &[u64]) -> (usize, u64) {
        let h = mix64(key_hash64(key) ^ ((slot as u64) << 1 | 1));
        ((h & self.mask) as usize, h | 1)
    }

    /// Probes the cache for segment `slot`'s outputs under `key`. Returns
    /// `true` and fills `out` on a hit; on a miss nothing is counted (the
    /// caller falls through to the L2, which counts the probe).
    ///
    /// Callers must not probe for uncacheable segments or forced-red
    /// probes (`green` with no validator) — route those straight to the
    /// L2 so its miss accounting and bypass telemetry stay exact.
    pub fn probe(&mut self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        debug_assert!(self.cacheable(slot), "probe only cacheable segments");
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let (idx, _) = self.index_and_hash(slot, key);
        let meta = self.meta[idx];
        if meta == 0 || (meta >> 1) as usize != slot {
            return false;
        }
        let base = idx * self.stride();
        if self.data[base..base + self.key_words] != *key {
            return false;
        }
        self.stats.accesses += 1;
        self.stats.hits += 1;
        self.stats.l1_hits += 1;
        let lo = base + self.key_words;
        out.clear();
        out.extend_from_slice(&self.data[lo..lo + self.out_words[slot]]);
        true
    }

    /// Feeds an L2 hit for a cacheable segment into the promotion
    /// machinery: the first hit for a `(slot, key)` marks it candidate,
    /// the second installs the entry (write path for admission-by-reuse).
    pub fn note_l2_hit(&mut self, slot: usize, key: &[u64], outputs: &[u64]) {
        if !self.cacheable(slot) {
            return;
        }
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let (idx, tag) = self.index_and_hash(slot, key);
        if self.candidate[idx] == tag {
            self.install(idx, slot, key, outputs);
            self.candidate[idx] = 0;
            self.stats.promotions += 1;
        } else {
            self.candidate[idx] = tag;
        }
    }

    /// Write-through on record: refreshes the outputs only when this exact
    /// `(slot, key)` is already resident, so the L1 never serves outputs
    /// older than the worker's own recordings. Non-resident keys are not
    /// installed — promotion is the only admission path.
    pub fn write_through(&mut self, slot: usize, key: &[u64], outputs: &[u64]) {
        if !self.cacheable(slot) {
            return;
        }
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let (idx, _) = self.index_and_hash(slot, key);
        let meta = self.meta[idx];
        if meta == 0 || (meta >> 1) as usize != slot {
            return;
        }
        let base = idx * self.stride();
        if self.data[base..base + self.key_words] != *key {
            return;
        }
        self.install(idx, slot, key, outputs);
    }

    fn install(&mut self, idx: usize, slot: usize, key: &[u64], outputs: &[u64]) {
        debug_assert_eq!(outputs.len(), self.out_words[slot], "output width mismatch");
        let base = idx * self.stride();
        self.data[base..base + self.key_words].copy_from_slice(key);
        let lo = base + self.key_words;
        self.data[lo..lo + outputs.len()].copy_from_slice(outputs);
        self.meta[idx] = 1 | ((slot as u64) << 1);
    }

    /// Drops every cached entry and candidacy, keeping the statistics.
    pub fn clear(&mut self) {
        self.meta.fill(0);
        self.candidate.fill(0);
    }
}

/// How many record observations pass before every sketch counter is
/// halved, per counter: the sample period is `HALVING_OPS_PER_COUNTER ×
/// counters`, aging old frequencies out so the sketch tracks the recent
/// stream rather than all history.
const HALVING_OPS_PER_COUNTER: u64 = 8;

/// TinyLFU-style frequency sketch: a count-min of 4 rows of 4-bit
/// saturating counters, halved every sample period (DESIGN.md §8i).
#[derive(Debug, Clone)]
pub struct TinyLfu {
    /// Packed 4-bit counters, 16 per word.
    counters: Vec<u64>,
    /// `nibbles - 1`; the nibble count is a power of two.
    mask: u64,
    /// Record observations since the last halving.
    samples: u64,
    sample_period: u64,
    halvings: u64,
}

/// Count-min rows per estimate.
const SKETCH_ROWS: u64 = 4;

impl TinyLfu {
    /// A sketch sized for a table of `slots` entries: roughly four
    /// counters per slot (rounded up to a power of two, minimum 64), so
    /// estimates stay meaningful at full occupancy.
    pub fn new(slots: usize) -> Self {
        let nibbles = (slots.max(1) * 4).next_power_of_two().max(64);
        TinyLfu {
            counters: vec![0; nibbles / 16],
            mask: (nibbles - 1) as u64,
            samples: 0,
            sample_period: HALVING_OPS_PER_COUNTER * nibbles as u64,
            halvings: 0,
        }
    }

    fn nibble(&self, idx: u64) -> u8 {
        let word = self.counters[(idx / 16) as usize];
        ((word >> ((idx % 16) * 4)) & 0xF) as u8
    }

    fn bump_nibble(&mut self, idx: u64) {
        let word = &mut self.counters[(idx / 16) as usize];
        let shift = (idx % 16) * 4;
        let v = (*word >> shift) & 0xF;
        if v < 0xF {
            *word += 1 << shift;
        }
    }

    fn rows(h: u64) -> impl Iterator<Item = u64> {
        // Double hashing: row i probes h1 + i·h2 (h2 forced odd so the
        // stride is coprime with the power-of-two nibble count).
        let h1 = h;
        let h2 = mix64(h) | 1;
        (0..SKETCH_ROWS).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)))
    }

    /// Estimated frequency of the key hashing to `h`: the count-min
    /// minimum over the rows.
    pub fn estimate(&self, h: u64) -> u8 {
        Self::rows(h)
            .map(|r| self.nibble(r & self.mask))
            .min()
            .unwrap_or(0)
    }

    /// Feeds one observation of the key hashing to `h` into the sketch,
    /// halving every counter when the sample period elapses.
    pub fn observe(&mut self, h: u64) {
        for r in Self::rows(h) {
            self.bump_nibble(r & self.mask);
        }
        self.samples += 1;
        if self.samples >= self.sample_period {
            self.halve();
        }
    }

    /// The admission decision: after observing the candidate, admit it
    /// only when its estimated frequency strictly exceeds the resident
    /// victim's. Strict comparison keeps ties with the incumbent — a
    /// candidate seen no more often than the entry it would evict is not
    /// worth the churn.
    pub fn admits(&mut self, candidate: u64, victim: u64) -> bool {
        self.observe(candidate);
        self.estimate(candidate) > self.estimate(victim)
    }

    fn halve(&mut self) {
        for word in &mut self.counters {
            // Halve all 16 nibbles at once: shift, then mask the bit that
            // leaked in from each nibble's upper neighbour.
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.samples /= 2;
        self.halvings += 1;
    }

    /// Times the sketch halved its counters (aging events).
    pub fn halvings(&self) -> u64 {
        self.halvings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TableSpec {
        TableSpec {
            slots: 64,
            key_words: 2,
            out_words: vec![2],
        }
    }

    #[test]
    fn promotion_needs_two_l2_hits() {
        let mut l1 = L1Cache::new(16, &spec(), &[0]);
        let mut out = Vec::new();
        assert!(!l1.probe(0, &[1, 2], &mut out));
        l1.note_l2_hit(0, &[1, 2], &[10, 20]);
        assert!(!l1.probe(0, &[1, 2], &mut out), "candidate, not resident");
        l1.note_l2_hit(0, &[1, 2], &[10, 20]);
        assert!(l1.probe(0, &[1, 2], &mut out), "second hit promotes");
        assert_eq!(out, vec![10, 20]);
        assert_eq!(l1.stats().promotions, 1);
        assert_eq!(l1.stats().l1_hits, 1);
        assert_eq!(l1.stats().hits, 1);
        assert_eq!(l1.stats().accesses, 1, "misses are counted by the L2");
    }

    #[test]
    fn write_through_refreshes_resident_entries_only() {
        let mut l1 = L1Cache::new(16, &spec(), &[0]);
        let mut out = Vec::new();
        l1.write_through(0, &[1, 2], &[10, 20]);
        assert!(!l1.probe(0, &[1, 2], &mut out), "records never install");
        l1.note_l2_hit(0, &[1, 2], &[10, 20]);
        l1.note_l2_hit(0, &[1, 2], &[10, 20]);
        l1.write_through(0, &[1, 2], &[11, 21]);
        assert!(l1.probe(0, &[1, 2], &mut out));
        assert_eq!(out, vec![11, 21], "resident entry refreshed");
    }

    #[test]
    fn fingerprinted_segments_are_never_cacheable() {
        let mspec = TableSpec {
            slots: 64,
            key_words: 1,
            out_words: vec![1, 1],
        };
        let mut l1 = L1Cache::new(16, &mspec, &[0, 2]);
        assert!(l1.cacheable(0));
        assert!(!l1.cacheable(1));
        l1.note_l2_hit(1, &[5], &[50]);
        l1.note_l2_hit(1, &[5], &[50]);
        assert_eq!(l1.stats().promotions, 0, "fingerprinted slot ignored");
    }

    #[test]
    fn segments_do_not_alias_each_other() {
        let mspec = TableSpec {
            slots: 64,
            key_words: 1,
            out_words: vec![1, 1],
        };
        let mut l1 = L1Cache::new(16, &mspec, &[0, 0]);
        let mut out = Vec::new();
        l1.note_l2_hit(0, &[5], &[50]);
        l1.note_l2_hit(0, &[5], &[50]);
        assert!(l1.probe(0, &[5], &mut out));
        assert!(
            !l1.probe(1, &[5], &mut out),
            "segment 1 never hits segment 0's entry"
        );
    }

    #[test]
    fn clear_drops_entries_but_keeps_stats() {
        let mut l1 = L1Cache::new(16, &spec(), &[0]);
        let mut out = Vec::new();
        l1.note_l2_hit(0, &[1, 2], &[10, 20]);
        l1.note_l2_hit(0, &[1, 2], &[10, 20]);
        assert!(l1.probe(0, &[1, 2], &mut out));
        l1.clear();
        assert!(!l1.probe(0, &[1, 2], &mut out));
        assert_eq!(l1.stats().promotions, 1);
        assert_eq!(l1.stats().l1_hits, 1);
    }

    #[test]
    fn sketch_estimates_track_frequency() {
        let mut lfu = TinyLfu::new(256);
        let hot = key_hash64(&[1]);
        let cold = key_hash64(&[2]);
        for _ in 0..10 {
            lfu.observe(hot);
        }
        lfu.observe(cold);
        assert!(lfu.estimate(hot) > lfu.estimate(cold));
    }

    #[test]
    fn admission_prefers_frequent_candidates() {
        let mut lfu = TinyLfu::new(256);
        let hot = key_hash64(&[1]);
        let one_shot = key_hash64(&[999]);
        for _ in 0..8 {
            lfu.observe(hot);
        }
        assert!(
            !lfu.admits(one_shot, hot),
            "a one-shot key must not evict a hot resident"
        );
        for _ in 0..12 {
            lfu.observe(one_shot);
        }
        assert!(
            lfu.admits(one_shot, hot),
            "a now-hotter candidate is admitted"
        );
    }

    #[test]
    fn counters_saturate_and_halve() {
        let mut lfu = TinyLfu::new(16);
        let h = key_hash64(&[7]);
        for _ in 0..100 {
            lfu.observe(h);
        }
        assert_eq!(lfu.estimate(h), 0xF, "4-bit counters saturate");
        let before = lfu.estimate(h);
        lfu.halve();
        assert_eq!(lfu.estimate(h), before / 2);
        assert!(lfu.halvings() >= 1);
    }

    #[test]
    fn halving_happens_within_the_sample_period() {
        let mut lfu = TinyLfu::new(1);
        // Tiny sketch (64 nibbles): the period is 8×64 = 512 observations.
        for k in 0..513u64 {
            lfu.observe(key_hash64(&[k]));
        }
        assert!(lfu.halvings() >= 1, "periodic aging never fired");
    }
}
