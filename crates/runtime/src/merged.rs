//! Merged hash tables (paper §2.5, Table 2).
//!
//! When multiple code segments have *identical input variables*, their hash
//! tables merge into one: each entry stores the shared key, a bit vector
//! saying which segments' outputs are valid for that key, and one output
//! group per segment. GNU Go's eight `accumulate_influence` segments are
//! the paper's motivating case — unmerged tables ran the iPAQ out of
//! memory.
//!
//! ## Flat storage
//!
//! Like [`crate::DirectTable`], entries live in flat buffers: `valid`
//! holds one validity bit vector per slot (`0` ⇔ empty) and `data` holds
//! the bodies at a fixed stride (`key ++ all output groups ++ all
//! fingerprint groups`). No allocation happens per recording, so the
//! optimistic shared probe ([`MergedTable::probe_shared`]) can read
//! entries without the shard lock: writers overwrite words in place but
//! never move the buffers once [`MergedTable::freeze_geometry`] pins the
//! layout, and the caller's version word discards torn snapshots.

use crate::hash::index_of;
use crate::stats::TableStats;
use crate::FpValidator;

/// A direct-addressed table shared by up to 64 segments with identical
/// inputs.
#[derive(Debug, Clone)]
pub struct MergedTable {
    /// Per-slot validity bit vector: bit `s` set ⇔ slot `s`'s outputs are
    /// valid for the stored key; `0` ⇔ the slot is empty.
    valid: Vec<u64>,
    /// Entry bodies at stride `key_words + total_out_words +
    /// total_fp_words`: `[key][output groups][fingerprint groups]`.
    data: Vec<u64>,
    key_words: usize,
    /// Output width per segment slot.
    out_words: Vec<usize>,
    /// Word offset of each slot's output group within an entry.
    out_offsets: Vec<usize>,
    total_out_words: usize,
    /// Dependency-fingerprint width per segment slot (zero for exact-match
    /// slots), with the same offset layout as the output groups.
    fp_words: Vec<usize>,
    fp_offsets: Vec<usize>,
    total_fp_words: usize,
    /// Geometry pinned: buffers are overwritten in place, never moved.
    frozen: bool,
    /// Aggregate counters plus per-slot counters.
    stats: TableStats,
    slot_stats: Vec<TableStats>,
    access_counts: Vec<u64>,
}

impl MergedTable {
    /// Creates a merged table with `slots` entries, keys of `key_words`
    /// words, and one output group per element of `out_words`.
    ///
    /// # Panics
    ///
    /// Panics if `slots` or `key_words` is zero, if there are no segments,
    /// or if there are more than 64 segments (the bit vector is one word).
    pub fn new(slots: usize, key_words: usize, out_words: &[usize]) -> Self {
        assert!(slots > 0, "table must have at least one slot");
        assert!(key_words > 0, "key must have at least one word");
        assert!(
            !out_words.is_empty() && out_words.len() <= 64,
            "merged table supports 1..=64 segments"
        );
        let mut out_offsets = Vec::with_capacity(out_words.len());
        let mut total = 0usize;
        for &w in out_words {
            out_offsets.push(total);
            total += w;
        }
        MergedTable {
            valid: vec![0; slots],
            data: vec![0; slots * (key_words + total)],
            key_words,
            out_words: out_words.to_vec(),
            out_offsets,
            total_out_words: total,
            fp_words: vec![0; out_words.len()],
            fp_offsets: vec![0; out_words.len()],
            total_fp_words: 0,
            frozen: false,
            stats: TableStats::default(),
            slot_stats: vec![TableStats::default(); out_words.len()],
            access_counts: vec![0; slots],
        }
    }

    fn stride(&self) -> usize {
        self.key_words + self.total_out_words + self.total_fp_words
    }

    /// Declares that segment `slot` records a dependency fingerprint of
    /// `words` words. Build-time configuration: existing entries are
    /// dropped because the per-entry fingerprint layout changes, and the
    /// flat buffer is rebuilt (requires exclusive access — never call
    /// while optimistic readers may be probing).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn set_fp_words(&mut self, slot: usize, words: usize) {
        assert!(slot < self.fp_words.len(), "slot out of range");
        self.fp_words[slot] = words;
        let mut total = 0usize;
        for (off, &w) in self.fp_offsets.iter_mut().zip(&self.fp_words) {
            *off = total;
            total += w;
        }
        self.total_fp_words = total;
        self.valid.fill(0);
        self.data = vec![0; self.valid.len() * self.stride()];
    }

    /// Creates the largest merged table fitting in `bytes`.
    pub fn with_bytes(bytes: usize, key_words: usize, out_words: &[usize]) -> Self {
        let per = Self::entry_bytes(key_words, out_words);
        let slots = (bytes / per).max(1);
        Self::new(slots, key_words, out_words)
    }

    /// Bytes one entry occupies: key + bit vector + all output groups.
    pub fn entry_bytes(key_words: usize, out_words: &[usize]) -> usize {
        (key_words + 1 + out_words.iter().sum::<usize>()) * 8 + 8
    }

    /// Number of segments sharing the table.
    pub fn segment_count(&self) -> usize {
        self.out_words.len()
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.valid.len()
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.valid.len() * Self::entry_bytes(self.key_words, &self.out_words)
    }

    /// Storage the same segments would need with *separate* tables of the
    /// same slot count (quantifies the §2.5 saving).
    pub fn unmerged_bytes(&self) -> usize {
        self.out_words
            .iter()
            .map(|&w| self.valid.len() * ((self.key_words + w) * 8 + 8))
            .sum()
    }

    /// Pins the table's geometry for lock-free shared probing; see
    /// [`crate::DirectTable::freeze_geometry`].
    pub fn freeze_geometry(&mut self) {
        self.frozen = true;
    }

    /// Whether [`MergedTable::freeze_geometry`] was called.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Looks `key` up for segment `slot`; on a hit (key matches *and* the
    /// slot's valid bit is set) copies that slot's outputs into `out`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on width mismatch or out-of-range slot
    /// (out-of-range slots still panic in release via indexing).
    pub fn lookup(&mut self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        self.lookup_dep(slot, key, out, false, None)
    }

    /// Dependency-validating lookup; same contract as
    /// [`crate::DirectTable::lookup_dep`], applied to segment `slot`'s
    /// fingerprint group.
    pub fn lookup_dep(
        &mut self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        mut validate: FpValidator,
    ) -> bool {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        assert!(slot < self.out_words.len(), "slot out of range");
        let idx = index_of(key, self.valid.len());
        self.stats.accesses += 1;
        self.slot_stats[slot].accesses += 1;
        self.access_counts[idx] += 1;
        if green && validate.is_none() {
            self.stats.misses += 1;
            self.slot_stats[slot].misses += 1;
            return false;
        }
        let base = idx * self.stride();
        if self.valid[idx] >> slot & 1 == 1 && self.data[base..base + self.key_words] == *key {
            let fplo = base + self.key_words + self.total_out_words + self.fp_offsets[slot];
            let fphi = fplo + self.fp_words[slot];
            if fphi > fplo {
                if let Some(v) = validate.as_mut() {
                    if !v(&self.data[fplo..fphi]) {
                        self.stats.misses += 1;
                        self.stats.stale_reds += 1;
                        self.slot_stats[slot].misses += 1;
                        self.slot_stats[slot].stale_reds += 1;
                        return false;
                    }
                    if green {
                        self.stats.green_hits += 1;
                        self.slot_stats[slot].green_hits += 1;
                    }
                }
            }
            self.stats.hits += 1;
            self.slot_stats[slot].hits += 1;
            let lo = base + self.key_words + self.out_offsets[slot];
            let hi = lo + self.out_words[slot];
            out.clear();
            out.extend_from_slice(&self.data[lo..hi]);
            true
        } else {
            self.stats.misses += 1;
            self.slot_stats[slot].misses += 1;
            false
        }
    }

    /// Read-only probe for the shared optimistic path: no statistics, no
    /// access counts, no validator. On a match (key equal *and* segment
    /// `slot`'s valid bit set) copies the slot's outputs into `out` and its
    /// fingerprint group into `fp` (both cleared first) and returns `true`.
    ///
    /// Words are read with `read_volatile`; the snapshot may be torn and
    /// must be discarded by the caller unless its version word is
    /// unchanged across the probe (the seqlock protocol in `sharded.rs`).
    /// All offsets derive from frozen geometry, so even a torn read stays
    /// in-bounds.
    pub fn probe_shared(
        &self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        fp: &mut Vec<u64>,
    ) -> bool {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        assert!(slot < self.out_words.len(), "slot out of range");
        let idx = index_of(key, self.valid.len());
        // SAFETY: `idx < valid.len()` and every offset below stays within
        // `data` (stride × slots), whose length is pinned while frozen.
        unsafe {
            let valid = std::ptr::read_volatile(self.valid.as_ptr().add(idx));
            if valid >> slot & 1 == 0 {
                return false;
            }
            let base = self.data.as_ptr().add(idx * self.stride());
            for (w, &kw) in key.iter().enumerate() {
                if std::ptr::read_volatile(base.add(w)) != kw {
                    return false;
                }
            }
            let lo = self.key_words + self.out_offsets[slot];
            out.clear();
            for w in 0..self.out_words[slot] {
                out.push(std::ptr::read_volatile(base.add(lo + w)));
            }
            let fplo = self.key_words + self.total_out_words + self.fp_offsets[slot];
            fp.clear();
            for w in 0..self.fp_words[slot] {
                fp.push(std::ptr::read_volatile(base.add(fplo + w)));
            }
        }
        true
    }

    /// Records `outputs` for segment `slot` under `key`.
    ///
    /// If the indexed entry holds the same key, the slot's outputs are
    /// added (or refreshed) and its valid bit set; a different key replaces
    /// the whole entry, leaving only this slot valid.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on width mismatch; out-of-range slots panic
    /// in all builds.
    pub fn record(&mut self, slot: usize, key: &[u64], outputs: &[u64]) {
        self.record_dep(slot, key, outputs, &[]);
    }

    /// Records `outputs` (and segment `slot`'s dependency fingerprint, an
    /// empty slice for exact-match slots) under `key`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `fp` does not match the width declared
    /// via [`MergedTable::set_fp_words`]; out-of-range slots panic in all
    /// builds.
    pub fn record_dep(&mut self, slot: usize, key: &[u64], outputs: &[u64], fp: &[u64]) {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        assert!(slot < self.out_words.len(), "slot out of range");
        debug_assert_eq!(outputs.len(), self.out_words[slot], "output width mismatch");
        debug_assert_eq!(fp.len(), self.fp_words[slot], "fingerprint width mismatch");
        let idx = index_of(key, self.valid.len());
        self.stats.insertions += 1;
        self.slot_stats[slot].insertions += 1;
        let stride = self.stride();
        let base = idx * stride;
        let same_key = self.valid[idx] != 0 && self.data[base..base + self.key_words] == *key;
        if !same_key {
            if self.valid[idx] != 0 {
                self.stats.collisions += 1;
                self.stats.evictions += 1;
                self.slot_stats[slot].collisions += 1;
                self.slot_stats[slot].evictions += 1;
            }
            // Fresh entry: zero every group so other slots read as zeroed
            // (they are invalid anyway), then install the key.
            self.data[base + self.key_words..base + stride].fill(0);
            self.data[base..base + self.key_words].copy_from_slice(key);
            self.valid[idx] = 0;
        }
        let lo = base + self.key_words + self.out_offsets[slot];
        self.data[lo..lo + outputs.len()].copy_from_slice(outputs);
        let fplo = base + self.key_words + self.total_out_words + self.fp_offsets[slot];
        self.data[fplo..fplo + fp.len()].copy_from_slice(fp);
        self.valid[idx] |= 1 << slot;
    }

    /// Aggregate statistics across all slots.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Snapshot geometry: `(slots, key_words, out_words, fp_words)`; see
    /// [`crate::DirectTable::snapshot_geometry`].
    pub(crate) fn snapshot_geometry(&self) -> (usize, usize, Vec<usize>, Vec<usize>) {
        (
            self.valid.len(),
            self.key_words,
            self.out_words.clone(),
            self.fp_words.clone(),
        )
    }

    /// Visits every occupied slot as `(slot, valid_word, entry_row)`;
    /// snapshot export path (DESIGN.md §8i).
    pub(crate) fn export_rows(&self, f: &mut dyn FnMut(u64, u64, &[u64])) {
        let stride = self.stride();
        for (slot, &valid) in self.valid.iter().enumerate() {
            if valid != 0 {
                let base = slot * stride;
                f(slot as u64, valid, &self.data[base..base + stride]);
            }
        }
    }

    /// Installs one snapshotted entry row without touching statistics.
    /// Returns `false` (table unchanged) when the row does not fit this
    /// table's geometry.
    pub(crate) fn import_row(&mut self, slot: usize, valid: u64, row: &[u64]) -> bool {
        let stride = self.stride();
        let segs = self.out_words.len();
        let fits = slot < self.valid.len()
            && row.len() == stride
            && valid != 0
            && (segs == 64 || valid >> segs == 0);
        if !fits {
            return false;
        }
        let base = slot * stride;
        self.data[base..base + stride].copy_from_slice(row);
        self.valid[slot] = valid;
        true
    }

    /// Overwrites the whole-run aggregate statistics (snapshot-restore
    /// baseline). Per-slot statistics stay at zero: a snapshot preserves
    /// the shard aggregate, not the per-segment split (DESIGN.md §8i).
    pub(crate) fn set_stats(&mut self, stats: TableStats) {
        self.stats = stats;
    }

    /// The key a recording of `key` would evict; see
    /// [`crate::DirectTable::resident_key`].
    pub(crate) fn resident_key(&self, key: &[u64]) -> Option<&[u64]> {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let idx = index_of(key, self.valid.len());
        if self.valid[idx] == 0 {
            return None;
        }
        let base = idx * self.stride();
        let resident = &self.data[base..base + self.key_words];
        if resident == key {
            None
        } else {
            Some(resident)
        }
    }

    /// Statistics for one segment slot.
    ///
    /// Shared optimistic probes (resolved without the shard lock) are
    /// folded into the *aggregate* shard counters only; per-slot counters
    /// see just the locked traffic.
    pub fn slot_stats(&self, slot: usize) -> &TableStats {
        &self.slot_stats[slot]
    }

    /// Per-slot access counts (entry-access histograms).
    pub fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }

    /// Drops every stored entry and zeroes the per-slot access histogram,
    /// keeping geometry and whole-run statistics (aggregate and per-slot).
    /// Forgetting is always sound for a memo table; used by shard poison
    /// recovery. Works on frozen tables: buffers are overwritten in place.
    pub fn clear(&mut self) {
        self.valid.fill(0);
        self.access_counts.fill(0);
    }

    /// Rebuilds the table with `new_slots` slots, rehashing live entries
    /// (clashing rehashes keep the later entry). Statistics are preserved;
    /// the access histogram restarts because slot identities change.
    ///
    /// # Panics
    ///
    /// Panics if `new_slots` is zero or the geometry is frozen.
    pub fn resize(&mut self, new_slots: usize) {
        assert!(new_slots > 0, "table must have at least one slot");
        assert!(!self.frozen, "cannot resize a frozen table");
        let stride = self.stride();
        let old_valid = std::mem::replace(&mut self.valid, vec![0; new_slots]);
        let old_data = std::mem::replace(&mut self.data, vec![0; new_slots * stride]);
        for (slot, &valid) in old_valid.iter().enumerate() {
            if valid == 0 {
                continue;
            }
            let old = slot * stride;
            let key = &old_data[old..old + self.key_words];
            let idx = index_of(key, new_slots);
            let new = idx * stride;
            self.data[new..new + stride].copy_from_slice(&old_data[old..old + stride]);
            self.valid[idx] = valid;
        }
        self.access_counts = vec![0; new_slots];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_share_one_key() {
        let mut t = MergedTable::new(64, 1, &[1, 1, 1]);
        let mut out = Vec::new();
        // Segment 0 records; segment 1 still misses on the same key.
        t.record(0, &[5], &[50]);
        assert!(t.lookup(0, &[5], &mut out));
        assert_eq!(out, vec![50]);
        assert!(!t.lookup(1, &[5], &mut out), "slot 1's bit not set");
        t.record(1, &[5], &[51]);
        assert!(t.lookup(1, &[5], &mut out));
        assert_eq!(out, vec![51]);
        assert!(t.lookup(0, &[5], &mut out), "slot 0 still valid");
        assert_eq!(out, vec![50]);
    }

    #[test]
    fn different_key_replacement_clears_other_slots() {
        // In a 1-slot table every distinct key collides.
        let mut t = MergedTable::new(1, 1, &[1, 1]);
        let mut out = Vec::new();
        t.record(0, &[1], &[10]);
        t.record(1, &[1], &[11]);
        t.record(0, &[2], &[20]); // replaces the whole entry
        assert_eq!(t.stats().collisions, 1);
        assert!(!t.lookup(1, &[2], &mut out), "slot 1 invalid for new key");
        assert!(t.lookup(0, &[2], &mut out));
        assert!(!t.lookup(1, &[1], &mut out), "old key gone entirely");
    }

    #[test]
    fn variable_width_output_groups() {
        let mut t = MergedTable::new(16, 2, &[3, 1, 2]);
        let mut out = Vec::new();
        t.record(2, &[7, 8], &[100, 200]);
        t.record(0, &[7, 8], &[1, 2, 3]);
        assert!(t.lookup(0, &[7, 8], &mut out));
        assert_eq!(out, vec![1, 2, 3]);
        assert!(t.lookup(2, &[7, 8], &mut out));
        assert_eq!(out, vec![100, 200]);
        assert!(!t.lookup(1, &[7, 8], &mut out));
    }

    #[test]
    fn merged_is_smaller_than_separate_tables() {
        // Eight GNU-Go-like segments: 1-word key, 1-word output each.
        let t = MergedTable::new(4096, 1, &[1; 8]);
        assert!(
            t.bytes() < t.unmerged_bytes(),
            "merging must save memory: {} vs {}",
            t.bytes(),
            t.unmerged_bytes()
        );
        // Saving comes from sharing the key: 8 keys → 1 key + bitvec.
        let saving = t.unmerged_bytes() as f64 / t.bytes() as f64;
        assert!(
            saving > 1.5,
            "expected substantial saving, got {saving:.2}x"
        );
    }

    #[test]
    fn per_slot_stats_are_separate() {
        let mut t = MergedTable::new(8, 1, &[1, 1]);
        let mut out = Vec::new();
        t.record(0, &[1], &[1]);
        t.lookup(0, &[1], &mut out);
        t.lookup(1, &[1], &mut out);
        assert_eq!(t.slot_stats(0).hits, 1);
        assert_eq!(t.slot_stats(1).hits, 0);
        assert_eq!(t.slot_stats(1).misses, 1);
        assert_eq!(t.stats().accesses, 2);
    }

    #[test]
    fn probe_shared_matches_locked_lookup() {
        let mut t = MergedTable::new(16, 1, &[2, 1]);
        t.set_fp_words(1, 2);
        t.freeze_geometry();
        t.record(0, &[5], &[50, 51]);
        t.record_dep(1, &[5], &[52], &[9, 10]);
        let mut out = Vec::new();
        let mut fp = Vec::new();
        assert!(t.probe_shared(0, &[5], &mut out, &mut fp));
        assert_eq!(out, vec![50, 51]);
        assert!(fp.is_empty());
        assert!(t.probe_shared(1, &[5], &mut out, &mut fp));
        assert_eq!(out, vec![52]);
        assert_eq!(fp, vec![9, 10]);
        assert!(!t.probe_shared(0, &[6], &mut out, &mut fp));
        assert_eq!(t.stats().accesses, 0, "shared probes leave stats alone");
    }

    #[test]
    fn resize_rehashes_flat_entries() {
        let mut t = MergedTable::new(2, 1, &[1, 2]);
        t.set_fp_words(0, 1);
        t.record_dep(0, &[3], &[30], &[7]);
        t.record(1, &[3], &[31, 32]);
        t.resize(16);
        let mut out = Vec::new();
        let mut seen = Vec::new();
        let mut grab = |fp: &[u64]| {
            seen = fp.to_vec();
            true
        };
        assert!(t.lookup_dep(0, &[3], &mut out, false, Some(&mut grab)));
        assert_eq!(out, vec![30]);
        assert_eq!(seen, vec![7]);
        assert!(t.lookup(1, &[3], &mut out));
        assert_eq!(out, vec![31, 32]);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn bad_slot_panics() {
        let mut t = MergedTable::new(8, 1, &[1]);
        let mut out = Vec::new();
        t.lookup(1, &[1], &mut out);
    }

    #[test]
    #[should_panic(expected = "1..=64 segments")]
    fn too_many_segments_panics() {
        MergedTable::new(8, 1, &[1; 65]);
    }
}
