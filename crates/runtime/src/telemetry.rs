//! Windowed observability for memo tables.
//!
//! Aggregate [`TableStats`] answer "how did the run go overall"; this
//! module answers "how is the table doing *right now*": counters are
//! additionally accumulated into fixed-length access windows (*epochs*),
//! attributed per segment slot, and every adaptive-guard state change is
//! journalled. The bench crate serialises all of it into the JSON metrics
//! report, and the guard reads the closing window to decide whether a
//! table should degrade.

use crate::guard::TableState;
use crate::stats::TableStats;

/// Counters of one closed observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Zero-based window index.
    pub epoch: u64,
    /// Counters the underlying table accumulated during the window
    /// (all-zero while the table was bypassed).
    pub stats: TableStats,
    /// Accesses answered as forced misses because the table was bypassed.
    pub bypassed: u64,
    /// Guard state when the window closed (after any transition).
    pub state: TableState,
}

/// One adaptive-guard state change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateTransition {
    /// Window index at which the transition happened.
    pub epoch: u64,
    /// State before.
    pub from: TableState,
    /// State after (a resize reports `Active → Active`).
    pub to: TableState,
    /// Human-readable cause (`"resize"`, `"probation passed"`, …).
    pub reason: &'static str,
}

/// Per-table telemetry sink: the current window, a bounded history of
/// closed windows, per-segment counters, and the transition journal.
#[derive(Debug, Clone)]
pub struct Telemetry {
    epoch_len: u64,
    epoch: u64,
    window: TableStats,
    window_bypassed: u64,
    epochs: Vec<EpochStats>,
    max_epochs: usize,
    per_segment: Vec<TableStats>,
    transitions: Vec<StateTransition>,
    bypassed_total: u64,
    dropped_records: u64,
}

impl Telemetry {
    /// A sink closing windows every `epoch_len` accesses and retaining the
    /// most recent `max_epochs` of them.
    pub fn new(epoch_len: u64, max_epochs: usize) -> Self {
        Telemetry {
            epoch_len: epoch_len.max(1),
            epoch: 0,
            window: TableStats::default(),
            window_bypassed: 0,
            epochs: Vec::new(),
            max_epochs: max_epochs.max(1),
            per_segment: Vec::new(),
            transitions: Vec::new(),
            bypassed_total: 0,
            dropped_records: 0,
        }
    }

    /// Accesses per window.
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Index of the window currently being filled.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters accumulated in the window so far.
    pub fn window(&self) -> &TableStats {
        &self.window
    }

    /// Closed windows, oldest first (bounded by `max_epochs`).
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// Whole-run per-segment counters (index = segment slot). Unmerged
    /// tables have a single element.
    pub fn per_segment(&self) -> &[TableStats] {
        &self.per_segment
    }

    /// The guard's transition journal.
    pub fn transitions(&self) -> &[StateTransition] {
        &self.transitions
    }

    /// Total accesses answered while bypassed.
    pub fn bypassed_total(&self) -> u64 {
        self.bypassed_total
    }

    /// Total recordings dropped while bypassed.
    pub fn dropped_records(&self) -> u64 {
        self.dropped_records
    }

    /// Feeds the counter increments of one table operation, attributed to
    /// segment `slot`.
    pub fn observe(&mut self, slot: usize, delta: &TableStats) {
        self.window.merge(delta);
        if self.per_segment.len() <= slot {
            self.per_segment.resize(slot + 1, TableStats::default());
        }
        self.per_segment[slot].merge(delta);
    }

    /// Counts a lookup answered as a forced miss because the table was
    /// bypassed (still advances the window clock).
    pub fn observe_bypassed(&mut self, slot: usize) {
        self.window_bypassed += 1;
        self.bypassed_total += 1;
        if self.per_segment.len() <= slot {
            self.per_segment.resize(slot + 1, TableStats::default());
        }
    }

    /// Counts a recording dropped because the table was bypassed.
    pub fn observe_dropped_record(&mut self) {
        self.dropped_records += 1;
    }

    /// Whether the current window has reached `epoch_len` accesses
    /// (real + bypassed).
    pub fn window_full(&self) -> bool {
        self.window.accesses + self.window_bypassed >= self.epoch_len
    }

    /// Closes the current window, stamping it with the guard state that
    /// holds after the epoch decision, and starts the next one. Returns
    /// the index of the closed window.
    pub fn close_window(&mut self, state: TableState) -> u64 {
        let closed = self.epoch;
        self.epochs.push(EpochStats {
            epoch: closed,
            stats: self.window,
            bypassed: self.window_bypassed,
            state,
        });
        if self.epochs.len() > self.max_epochs {
            let excess = self.epochs.len() - self.max_epochs;
            self.epochs.drain(..excess);
        }
        self.window = TableStats::default();
        self.window_bypassed = 0;
        self.epoch += 1;
        closed
    }

    /// Reinstates the running totals a snapshot preserved (DESIGN.md §8i):
    /// the next window index plus the whole-run bypass/drop counters. The
    /// window in flight, closed-window history, per-segment counters, and
    /// the transition journal are *not* restored — they describe the
    /// process that died, and replaying them would mis-attribute the new
    /// process's traffic — so the restored table resumes with an empty
    /// history at epoch `epoch`.
    pub fn restore_baseline(&mut self, epoch: u64, bypassed_total: u64, dropped_records: u64) {
        self.epoch = epoch;
        self.window = TableStats::default();
        self.window_bypassed = 0;
        self.bypassed_total = bypassed_total;
        self.dropped_records = dropped_records;
    }

    /// Journals a guard transition at window `epoch`.
    pub fn push_transition(
        &mut self,
        epoch: u64,
        from: TableState,
        to: TableState,
        reason: &'static str,
    ) {
        self.transitions.push(StateTransition {
            epoch,
            from,
            to,
            reason,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hit() -> TableStats {
        TableStats {
            accesses: 1,
            hits: 1,
            ..TableStats::default()
        }
    }

    #[test]
    fn windows_roll_at_epoch_len() {
        let mut t = Telemetry::new(2, 8);
        t.observe(0, &one_hit());
        assert!(!t.window_full());
        t.observe(0, &one_hit());
        assert!(t.window_full());
        let idx = t.close_window(TableState::Active);
        assert_eq!(idx, 0);
        assert_eq!(t.current_epoch(), 1);
        assert_eq!(t.epochs().len(), 1);
        assert_eq!(t.epochs()[0].stats.hits, 2);
        assert_eq!(t.window().accesses, 0, "window reset");
    }

    #[test]
    fn bypassed_accesses_advance_the_clock() {
        let mut t = Telemetry::new(3, 8);
        t.observe(0, &one_hit());
        t.observe_bypassed(0);
        t.observe_bypassed(0);
        assert!(t.window_full());
        t.close_window(TableState::Bypassed);
        assert_eq!(t.epochs()[0].bypassed, 2);
        assert_eq!(t.bypassed_total(), 2);
    }

    #[test]
    fn history_is_bounded() {
        let mut t = Telemetry::new(1, 3);
        for _ in 0..10 {
            t.observe(0, &one_hit());
            t.close_window(TableState::Active);
        }
        assert_eq!(t.epochs().len(), 3);
        assert_eq!(t.epochs()[0].epoch, 7, "oldest retained window");
        assert_eq!(t.current_epoch(), 10);
    }

    #[test]
    fn per_segment_counters_split_by_slot() {
        let mut t = Telemetry::new(1024, 8);
        t.observe(0, &one_hit());
        t.observe(2, &one_hit());
        t.observe(2, &one_hit());
        assert_eq!(t.per_segment().len(), 3);
        assert_eq!(t.per_segment()[0].hits, 1);
        assert_eq!(t.per_segment()[1].hits, 0);
        assert_eq!(t.per_segment()[2].hits, 2);
    }

    #[test]
    fn transitions_are_journalled_in_order() {
        let mut t = Telemetry::new(1, 8);
        t.push_transition(0, TableState::Active, TableState::Bypassed, "x");
        t.push_transition(3, TableState::Bypassed, TableState::Probation, "y");
        assert_eq!(t.transitions().len(), 2);
        assert_eq!(t.transitions()[1].epoch, 3);
    }
}
