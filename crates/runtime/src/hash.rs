//! Hash-key encoding and indexing, following the paper §3.1:
//!
//! > "We generate the hash key by concatenating the values of input
//! > variables. If the hash key is not greater than 32 bits, we use the
//! > modularization to generate hash index. Otherwise, we perform a hash
//! > function \[Jenkins, Dr. Dobb's 1997\] on the large hash key to
//! > generate a 32-bit hash key before the modularization."

/// One mixing step of Jenkins' one-at-a-time hash.
#[inline]
fn jenkins_mix(mut hash: u32, b: u8) -> u32 {
    hash = hash.wrapping_add(b as u32);
    hash = hash.wrapping_add(hash << 10);
    hash ^ (hash >> 6)
}

/// The finalisation avalanche of Jenkins' one-at-a-time hash.
#[inline]
fn jenkins_final(mut hash: u32) -> u32 {
    hash = hash.wrapping_add(hash << 3);
    hash ^= hash >> 11;
    hash.wrapping_add(hash << 15)
}

/// Bob Jenkins' one-at-a-time hash over a byte slice, producing the 32-bit
/// key the paper's scheme feeds to the modularization step.
///
/// # Examples
///
/// ```
/// use memo_runtime::hash::jenkins_one_at_a_time;
/// let h1 = jenkins_one_at_a_time(b"abc");
/// let h2 = jenkins_one_at_a_time(b"abd");
/// assert_ne!(h1, h2);
/// ```
pub fn jenkins_one_at_a_time(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0;
    for &b in bytes {
        hash = jenkins_mix(hash, b);
    }
    jenkins_final(hash)
}

/// 32-bit Jenkins hash over a key's words (little-endian byte stream).
///
/// Shard selection for [`crate::ShardedTable`] uses this instead of
/// [`index_of`]: there is no single-word modulo special case, so the shard
/// choice stays decorrelated from the in-shard index even for the paper's
/// common one-integer keys.
pub fn hash_words(key: &[u64]) -> u32 {
    let mut hash: u32 = 0;
    for &w in key {
        for b in w.to_le_bytes() {
            hash = jenkins_mix(hash, b);
        }
    }
    jenkins_final(hash)
}

/// Computes the table index for a concatenated key of 64-bit words.
///
/// Single-word keys (the common case in the paper: `quan`'s one integer
/// input) index by `key mod size` directly; longer keys are serialized and
/// Jenkins-hashed to 32 bits first.
///
/// The caller must uphold `size > 0` and `key` non-empty; both are
/// enforced when a [`crate::TableSpec`] is validated at table
/// construction, so the per-access check here is a `debug_assert!`.
///
/// # Panics
///
/// In debug builds, panics if `size` is zero or `key` is empty.
pub fn index_of(key: &[u64], size: usize) -> usize {
    debug_assert!(size > 0, "table size must be positive");
    debug_assert!(!key.is_empty(), "hash key must have at least one word");
    if key.len() == 1 {
        (key[0] % size as u64) as usize
    } else {
        // Stream the words' little-endian bytes through the hash instead
        // of serializing into a scratch buffer: this is the lookup hot
        // path, and the byte order matches the former serialized form.
        let mut hash: u32 = 0;
        for &w in key {
            for b in w.to_le_bytes() {
                hash = jenkins_mix(hash, b);
            }
        }
        (jenkins_final(hash) as usize) % size
    }
}

/// Encodes an `i64` as a key word (bit pattern, so negative values are
/// distinct from positive ones).
pub fn word_of_int(v: i64) -> u64 {
    v as u64
}

/// Encodes an `f64` as a key word (bit pattern; `-0.0` and `0.0` differ,
/// matching the paper's "bit pattern of each input value" rule).
pub fn word_of_float(v: f64) -> u64 {
    v.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jenkins_reference_values_are_stable() {
        // Fixed expected values guard against accidental algorithm edits.
        assert_eq!(jenkins_one_at_a_time(b""), 0);
        let h = jenkins_one_at_a_time(b"a");
        assert_eq!(h, jenkins_one_at_a_time(b"a"));
        assert_ne!(h, jenkins_one_at_a_time(b"b"));
    }

    #[test]
    fn jenkins_avalanches_across_word_boundaries() {
        let a = index_of(&[1, 2, 3], 1 << 20);
        let b = index_of(&[1, 2, 4], 1 << 20);
        let c = index_of(&[2, 2, 3], 1 << 20);
        // Not a strong statistical test, just different inputs should not
        // trivially collide for a roomy table.
        assert!(!(a == b && b == c));
    }

    #[test]
    fn single_word_key_uses_modulo() {
        assert_eq!(index_of(&[17], 10), 7);
        assert_eq!(index_of(&[10], 10), 0);
        // Negative int maps through its bit pattern.
        let w = word_of_int(-1);
        assert_eq!(index_of(&[w], 16), (u64::MAX % 16) as usize);
    }

    #[test]
    fn float_words_distinguish_sign_of_zero() {
        assert_ne!(word_of_float(0.0), word_of_float(-0.0));
        assert_eq!(word_of_float(1.5), word_of_float(1.5));
    }

    #[test]
    fn streamed_multiword_hash_matches_serialized_reference() {
        // The no-allocation streaming path must agree with Jenkins over
        // the explicit little-endian serialization it replaced.
        for key in [&[1u64, 2, 3][..], &[u64::MAX, 0, 0x0123_4567_89AB_CDEF]] {
            let mut bytes = Vec::with_capacity(key.len() * 8);
            for &w in key {
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            let reference = (jenkins_one_at_a_time(&bytes) as usize) % 4096;
            assert_eq!(index_of(key, 4096), reference);
        }
    }

    #[test]
    #[should_panic(expected = "table size must be positive")]
    fn zero_size_panics() {
        index_of(&[1], 0);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_key_panics() {
        index_of(&[], 4);
    }
}
