//! A small fully-associative buffer with LRU replacement.
//!
//! Models the *hardware* reuse buffers the paper compares against: Table 5
//! reports hit ratios "when the hash table size is limited to 1-entry,
//! 4-entry, 16-entry and 64-entry respectively. The LRU replacement policy
//! is used." Capacities are small, so lookup is a linear scan.

use crate::stats::TableStats;
use crate::FpValidator;

/// One buffer entry: `(key words, output words, dependency fingerprint)`.
/// The fingerprint is empty for exact-match-only entries (an empty boxed
/// slice does not allocate).
type LruEntry = (Box<[u64]>, Box<[u64]>, Box<[u64]>);

/// A fixed-capacity, fully-associative memo buffer with LRU eviction.
#[derive(Debug, Clone)]
pub struct LruTable {
    /// Entries in most-recently-used-first order.
    entries: Vec<LruEntry>,
    capacity: usize,
    key_words: usize,
    out_words: usize,
    stats: TableStats,
}

impl LruTable {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `key_words` is zero.
    pub fn new(capacity: usize, key_words: usize, out_words: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(key_words > 0, "key must have at least one word");
        LruTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            key_words,
            out_words,
            stats: TableStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Storage footprint in bytes (paper Table 5 last column reports the
    /// 64-entry size).
    pub fn bytes(&self) -> usize {
        self.capacity * (self.key_words + self.out_words) * 8
    }

    /// Looks `key` up; on a hit copies outputs into `out`, promotes the
    /// entry to most-recently-used, and returns `true`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `key` has the wrong number of words.
    pub fn lookup(&mut self, key: &[u64], out: &mut Vec<u64>) -> bool {
        self.lookup_dep(key, out, false, None)
    }

    /// Dependency-validating lookup; same contract as
    /// [`crate::DirectTable::lookup_dep`].
    pub fn lookup_dep(
        &mut self,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        mut validate: FpValidator,
    ) -> bool {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        self.stats.accesses += 1;
        if green && validate.is_none() {
            self.stats.misses += 1;
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|(k, _, _)| **k == *key) {
            if !self.entries[pos].2.is_empty() {
                if let Some(v) = validate.as_mut() {
                    if !v(&self.entries[pos].2) {
                        self.stats.misses += 1;
                        self.stats.stale_reds += 1;
                        return false;
                    }
                    if green {
                        self.stats.green_hits += 1;
                    }
                }
            }
            let entry = self.entries.remove(pos);
            out.clear();
            out.extend_from_slice(&entry.1);
            self.entries.insert(0, entry);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Records `outputs` for `key`, evicting the least-recently-used entry
    /// if the buffer is full.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if widths mismatch.
    pub fn record(&mut self, key: &[u64], outputs: &[u64]) {
        self.record_dep(key, outputs, &[]);
    }

    /// Records `outputs` for `key` together with a dependency fingerprint
    /// (pass `&[]` for exact-match-only entries).
    pub fn record_dep(&mut self, key: &[u64], outputs: &[u64], fp: &[u64]) {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        debug_assert_eq!(outputs.len(), self.out_words, "output width mismatch");
        self.stats.insertions += 1;
        if let Some(pos) = self.entries.iter().position(|(k, _, _)| **k == *key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
            self.stats.collisions += 1; // an eviction of a different key
            self.stats.evictions += 1;
        }
        self.entries
            .insert(0, (key.into(), outputs.into(), fp.into()));
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Drops every buffered entry, keeping capacity and whole-run
    /// statistics. Forgetting is always sound for a memo buffer; used by
    /// shard poison recovery.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Changes the buffer capacity; shrinking drops least-recently-used
    /// entries (counted as evictions).
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity` is zero.
    pub fn set_capacity(&mut self, new_capacity: usize) {
        assert!(new_capacity > 0, "capacity must be positive");
        while self.entries.len() > new_capacity {
            self.entries.pop();
            self.stats.evictions += 1;
        }
        self.capacity = new_capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(t: &mut LruTable, keys: &[u64]) {
        for &k in keys {
            t.record(&[k], &[k * 10]);
        }
    }

    #[test]
    fn hit_promotes_to_mru() {
        let mut t = LruTable::new(2, 1, 1);
        fill(&mut t, &[1, 2]); // MRU order: 2, 1
        let mut out = Vec::new();
        assert!(t.lookup(&[1], &mut out)); // order: 1, 2
        t.record(&[3], &[30]); // evicts 2
        assert!(t.lookup(&[1], &mut out));
        assert!(!t.lookup(&[2], &mut out), "2 was LRU and evicted");
        assert!(t.lookup(&[3], &mut out));
    }

    #[test]
    fn one_entry_buffer_thrashes() {
        // The paper's 1-entry column: alternating keys never hit.
        let mut t = LruTable::new(1, 1, 1);
        let mut out = Vec::new();
        let mut hits = 0;
        for i in 0..100 {
            let k = i % 2;
            if t.lookup(&[k], &mut out) {
                hits += 1;
            } else {
                t.record(&[k], &[k]);
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn repeated_key_always_hits_after_first() {
        let mut t = LruTable::new(4, 1, 1);
        let mut out = Vec::new();
        assert!(!t.lookup(&[7], &mut out));
        t.record(&[7], &[70]);
        for _ in 0..10 {
            assert!(t.lookup(&[7], &mut out));
            assert_eq!(out, vec![70]);
        }
        assert_eq!(t.stats().hit_ratio(), 10.0 / 11.0);
    }

    #[test]
    fn working_set_within_capacity_hits_fully() {
        // 31 distinct patterns in a 64-entry buffer (the paper's RASTA row
        // reaches 99.6% with 64 entries because all 31 DIPs fit).
        let mut t = LruTable::new(64, 1, 1);
        let mut out = Vec::new();
        for round in 0..10 {
            for k in 0..31u64 {
                if !t.lookup(&[k], &mut out) {
                    assert_eq!(round, 0, "misses only in the first round");
                    t.record(&[k], &[k]);
                }
            }
        }
        assert_eq!(t.stats().misses, 31);
        assert_eq!(t.stats().hits, 31 * 9);
    }

    #[test]
    fn rerecord_same_key_does_not_grow() {
        let mut t = LruTable::new(2, 1, 1);
        t.record(&[1], &[1]);
        t.record(&[1], &[2]);
        assert_eq!(t.len(), 1);
        let mut out = Vec::new();
        assert!(t.lookup(&[1], &mut out));
        assert_eq!(out, vec![2]);
        assert_eq!(t.stats().collisions, 0);
    }

    #[test]
    fn bytes_reflect_capacity() {
        // 64 entries × (1 key + 1 out) × 8 B/word = 1024 B in our 64-bit
        // layout (the paper's 32-bit layout reports 512 B).
        let t = LruTable::new(64, 1, 1);
        assert_eq!(t.bytes(), 1024);
    }
}
