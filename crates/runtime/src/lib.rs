//! # memo-runtime — software reuse tables for computation reuse
//!
//! The runtime half of the `compreuse` workspace (a reproduction of
//! Ding & Li, *A Compiler Scheme for Reusing Intermediate Computation
//! Results*, CGO 2004). The compiler half decides *which* code segments to
//! memoize; this crate provides the hash tables the transformed code uses
//! at run time:
//!
//! - [`DirectTable`] — the paper's direct-addressed table (§3.1): index by
//!   `key mod size` (one-word keys) or `jenkins(key) mod size` (longer
//!   keys); collisions replace in place;
//! - [`LruTable`] — a small fully-associative LRU buffer modelling the
//!   hardware reuse buffers the paper compares against (Table 5);
//! - [`MergedTable`] — one table shared by segments with identical inputs,
//!   with a validity bit vector per entry (§2.5, Table 2);
//! - [`MemoTable`] — a uniform handle over the three kinds, used by the VM.
//!
//! ```
//! use memo_runtime::{MemoTable, TableSpec};
//! let spec = TableSpec { slots: 1024, key_words: 1, out_words: vec![1] };
//! let mut table = MemoTable::direct(&spec);
//! let mut out = Vec::new();
//! assert!(!table.lookup(0, &[42], &mut out)); // cold miss
//! table.record(0, &[42], &[7]);
//! assert!(table.lookup(0, &[42], &mut out)); // warm hit
//! assert_eq!(out, vec![7]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod direct;
pub mod hash;
pub mod lru;
pub mod merged;
pub mod stats;

pub use direct::DirectTable;
pub use lru::LruTable;
pub use merged::MergedTable;
pub use stats::TableStats;

use serde::{Deserialize, Serialize};

/// Shape of a memo table: slot count, key width, and the output width of
/// each segment sharing it (one element for unmerged tables).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Number of entries.
    pub slots: usize,
    /// Key width in 64-bit words.
    pub key_words: usize,
    /// Output width per segment slot, in 64-bit words.
    pub out_words: Vec<usize>,
}

impl TableSpec {
    /// Recommended slot count for an expected number of distinct input
    /// patterns: the next power of two at or above `4/3 · dip`, so the
    /// table holds all profiled patterns with headroom against collisions
    /// (the paper sizes tables "based on the value profiling information").
    pub fn recommended_slots(dip: usize) -> usize {
        let want = dip.max(1) * 4 / 3;
        want.next_power_of_two()
    }

    /// Bytes per entry for this spec.
    pub fn entry_bytes(&self) -> usize {
        if self.out_words.len() == 1 {
            DirectTable::entry_bytes(self.key_words, self.out_words[0])
        } else {
            MergedTable::entry_bytes(self.key_words, &self.out_words)
        }
    }

    /// Total bytes for this spec.
    pub fn bytes(&self) -> usize {
        self.slots * self.entry_bytes()
    }
}

/// A uniform handle over the three table kinds.
#[derive(Debug, Clone)]
pub enum MemoTable {
    /// Direct-addressed (the paper's software scheme).
    Direct(DirectTable),
    /// Small associative LRU buffer (hardware-buffer model).
    Lru(LruTable),
    /// Merged table shared by several segments.
    Merged(MergedTable),
}

impl MemoTable {
    /// Builds a direct-addressed table from `spec` (must have exactly one
    /// output group).
    ///
    /// # Panics
    ///
    /// Panics if `spec.out_words.len() != 1`.
    pub fn direct(spec: &TableSpec) -> Self {
        assert_eq!(spec.out_words.len(), 1, "direct tables have one segment");
        MemoTable::Direct(DirectTable::new(
            spec.slots,
            spec.key_words,
            spec.out_words[0],
        ))
    }

    /// Builds an LRU buffer with `spec.slots` entries.
    ///
    /// # Panics
    ///
    /// Panics if `spec.out_words.len() != 1`.
    pub fn lru(spec: &TableSpec) -> Self {
        assert_eq!(spec.out_words.len(), 1, "LRU buffers have one segment");
        MemoTable::Lru(LruTable::new(spec.slots, spec.key_words, spec.out_words[0]))
    }

    /// Builds a merged table from `spec`.
    pub fn merged(spec: &TableSpec) -> Self {
        MemoTable::Merged(MergedTable::new(
            spec.slots,
            spec.key_words,
            &spec.out_words,
        ))
    }

    /// Looks up `key` for segment `slot` (always 0 for unmerged tables).
    ///
    /// On a hit, copies the recorded outputs into `out` and returns `true`.
    pub fn lookup(&mut self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        match self {
            MemoTable::Direct(t) => {
                debug_assert_eq!(slot, 0);
                t.lookup(key, out)
            }
            MemoTable::Lru(t) => {
                debug_assert_eq!(slot, 0);
                t.lookup(key, out)
            }
            MemoTable::Merged(t) => t.lookup(slot, key, out),
        }
    }

    /// Records `outputs` for `key` in segment `slot`.
    pub fn record(&mut self, slot: usize, key: &[u64], outputs: &[u64]) {
        match self {
            MemoTable::Direct(t) => {
                debug_assert_eq!(slot, 0);
                t.record(key, outputs)
            }
            MemoTable::Lru(t) => {
                debug_assert_eq!(slot, 0);
                t.record(key, outputs)
            }
            MemoTable::Merged(t) => t.record(slot, key, outputs),
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &TableStats {
        match self {
            MemoTable::Direct(t) => t.stats(),
            MemoTable::Lru(t) => t.stats(),
            MemoTable::Merged(t) => t.stats(),
        }
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            MemoTable::Direct(t) => t.bytes(),
            MemoTable::Lru(t) => t.bytes(),
            MemoTable::Merged(t) => t.bytes(),
        }
    }

    /// Per-entry access counts, if the kind tracks them (direct and merged
    /// tables do; LRU buffers have no stable entry identity).
    pub fn access_counts(&self) -> Option<&[u64]> {
        match self {
            MemoTable::Direct(t) => Some(t.access_counts()),
            MemoTable::Merged(t) => Some(t.access_counts()),
            MemoTable::Lru(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_slots_cover_dip() {
        for dip in [1usize, 31, 9155, 22902, 46283] {
            let slots = TableSpec::recommended_slots(dip);
            assert!(slots >= dip, "dip {dip} → slots {slots}");
            assert!(slots.is_power_of_two());
        }
        assert_eq!(TableSpec::recommended_slots(0), 1);
    }

    #[test]
    fn spec_bytes_match_tables() {
        let spec = TableSpec {
            slots: 128,
            key_words: 2,
            out_words: vec![3],
        };
        assert_eq!(MemoTable::direct(&spec).bytes(), spec.bytes());
        let mspec = TableSpec {
            slots: 128,
            key_words: 1,
            out_words: vec![1; 8],
        };
        assert_eq!(MemoTable::merged(&mspec).bytes(), mspec.bytes());
    }

    #[test]
    fn uniform_handle_round_trips_all_kinds() {
        let spec = TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![2],
        };
        for mut t in [
            MemoTable::direct(&spec),
            MemoTable::lru(&spec),
            MemoTable::merged(&spec),
        ] {
            let mut out = Vec::new();
            assert!(!t.lookup(0, &[9], &mut out));
            t.record(0, &[9], &[1, 2]);
            assert!(t.lookup(0, &[9], &mut out));
            assert_eq!(out, vec![1, 2]);
            assert_eq!(t.stats().accesses, 2);
        }
    }
}
