//! # memo-runtime — software reuse tables for computation reuse
//!
//! The runtime half of the `compreuse` workspace (a reproduction of
//! Ding & Li, *A Compiler Scheme for Reusing Intermediate Computation
//! Results*, CGO 2004). The compiler half decides *which* code segments to
//! memoize; this crate provides the hash tables the transformed code uses
//! at run time:
//!
//! - [`DirectTable`] — the paper's direct-addressed table (§3.1): index by
//!   `key mod size` (one-word keys) or `jenkins(key) mod size` (longer
//!   keys); collisions replace in place;
//! - [`LruTable`] — a small fully-associative LRU buffer modelling the
//!   hardware reuse buffers the paper compares against (Table 5);
//! - [`MergedTable`] — one table shared by segments with identical inputs,
//!   with a validity bit vector per entry (§2.5, Table 2);
//! - [`MemoTable`] — a uniform handle over the three kinds, used by the VM.
//!
//! ```
//! use memo_runtime::{MemoTable, TableSpec};
//! let spec = TableSpec { slots: 1024, key_words: 1, out_words: vec![1] };
//! let mut table = MemoTable::try_direct(&spec)?;
//! let mut out = Vec::new();
//! assert!(!table.lookup(0, &[42], &mut out)); // cold miss
//! table.record(0, &[42], &[7]);
//! assert!(table.lookup(0, &[42], &mut out)); // warm hit
//! assert_eq!(out, vec![7]);
//! # Ok::<(), memo_runtime::SpecError>(())
//! ```
//!
//! For a store shared by several worker threads, wrap the same specs in a
//! [`ShardedTable`] (N power-of-two lock shards probed through `&self`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod direct;
pub mod faults;
pub mod guard;
pub mod hash;
pub mod lru;
pub mod merged;
pub mod persist;
pub mod sharded;
pub mod stats;
pub mod telemetry;
pub mod tiered;

pub use direct::DirectTable;
pub use faults::{
    silence_injected_panics, FailPoint, FaultCounters, FaultPlan, FAIL_POINT_COUNT,
    INJECTED_POISON_PANIC,
};
pub use guard::{AdaptiveGuard, EpochVerdict, GuardPolicy, TableState};
pub use lru::LruTable;
pub use merged::MergedTable;
pub use persist::{
    read_snapshot, restore_words, snapshot_json, snapshot_words, write_snapshot, SnapshotError,
    SNAPSHOT_VERSION,
};
pub use sharded::ShardedTable;
pub use stats::TableStats;
pub use telemetry::{EpochStats, StateTransition, Telemetry};
pub use tiered::{key_hash64, L1Cache, TinyLfu};

/// Probe-time dependency-fingerprint validator (DESIGN.md §8g): given an
/// entry's recorded fingerprint, decide whether its dependencies still
/// hold (`true` promotes the entry green). `None` disables validation —
/// green-marked entries are then forced red, invariant-only fingerprints
/// are trusted as-is.
pub type FpValidator<'a> = Option<&'a mut dyn FnMut(&[u64]) -> bool>;

/// A structurally invalid [`TableSpec`], reported once at table
/// construction (the per-access checks are `debug_assert!`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// `slots` was zero.
    ZeroSlots,
    /// `key_words` was zero.
    ZeroKeyWords,
    /// `out_words` was empty.
    NoSegments,
    /// More than 64 segments (the merged validity bit vector is one word).
    TooManySegments(usize),
    /// A single-segment table kind (direct, LRU) got a multi-segment spec.
    MultiSegment(usize),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroSlots => write!(f, "table must have at least one slot"),
            SpecError::ZeroKeyWords => write!(f, "key must have at least one word"),
            SpecError::NoSegments => write!(f, "spec needs at least one output group"),
            SpecError::TooManySegments(n) => {
                write!(f, "merged table supports 1..=64 segments, got {n}")
            }
            SpecError::MultiSegment(n) => {
                write!(f, "table kind holds one segment, spec has {n}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Shape of a memo table: slot count, key width, and the output width of
/// each segment sharing it (one element for unmerged tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Number of entries.
    pub slots: usize,
    /// Key width in 64-bit words.
    pub key_words: usize,
    /// Output width per segment slot, in 64-bit words.
    pub out_words: Vec<usize>,
}

impl TableSpec {
    /// Checks the structural invariants every table kind relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.slots == 0 {
            return Err(SpecError::ZeroSlots);
        }
        if self.key_words == 0 {
            return Err(SpecError::ZeroKeyWords);
        }
        if self.out_words.is_empty() {
            return Err(SpecError::NoSegments);
        }
        if self.out_words.len() > 64 {
            return Err(SpecError::TooManySegments(self.out_words.len()));
        }
        Ok(())
    }

    /// Recommended slot count for an expected number of distinct input
    /// patterns: the next power of two at or above `4/3 · dip`, so the
    /// table holds all profiled patterns with headroom against collisions
    /// (the paper sizes tables "based on the value profiling information").
    pub fn recommended_slots(dip: usize) -> usize {
        let want = dip.max(1) * 4 / 3;
        want.next_power_of_two()
    }

    /// Bytes per entry for this spec.
    pub fn entry_bytes(&self) -> usize {
        if self.out_words.len() == 1 {
            DirectTable::entry_bytes(self.key_words, self.out_words[0])
        } else {
            MergedTable::entry_bytes(self.key_words, &self.out_words)
        }
    }

    /// Total bytes for this spec.
    pub fn bytes(&self) -> usize {
        self.slots * self.entry_bytes()
    }
}

/// The storage backing a [`MemoTable`].
#[derive(Debug, Clone)]
pub enum TableKind {
    /// Direct-addressed (the paper's software scheme).
    Direct(DirectTable),
    /// Small associative LRU buffer (hardware-buffer model).
    Lru(LruTable),
    /// Merged table shared by several segments.
    Merged(MergedTable),
}

impl TableKind {
    fn lookup(&mut self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        match self {
            TableKind::Direct(t) => {
                debug_assert_eq!(slot, 0);
                t.lookup(key, out)
            }
            TableKind::Lru(t) => {
                debug_assert_eq!(slot, 0);
                t.lookup(key, out)
            }
            TableKind::Merged(t) => t.lookup(slot, key, out),
        }
    }

    fn lookup_dep(
        &mut self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        validate: FpValidator,
    ) -> bool {
        match self {
            TableKind::Direct(t) => {
                debug_assert_eq!(slot, 0);
                t.lookup_dep(key, out, green, validate)
            }
            TableKind::Lru(t) => {
                debug_assert_eq!(slot, 0);
                t.lookup_dep(key, out, green, validate)
            }
            TableKind::Merged(t) => t.lookup_dep(slot, key, out, green, validate),
        }
    }

    fn record_dep(&mut self, slot: usize, key: &[u64], outputs: &[u64], fp: &[u64]) {
        match self {
            TableKind::Direct(t) => {
                debug_assert_eq!(slot, 0);
                t.record_dep(key, outputs, fp)
            }
            TableKind::Lru(t) => {
                debug_assert_eq!(slot, 0);
                t.record_dep(key, outputs, fp)
            }
            TableKind::Merged(t) => t.record_dep(slot, key, outputs, fp),
        }
    }

    fn stats(&self) -> &TableStats {
        match self {
            TableKind::Direct(t) => t.stats(),
            TableKind::Lru(t) => t.stats(),
            TableKind::Merged(t) => t.stats(),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            TableKind::Direct(t) => t.bytes(),
            TableKind::Lru(t) => t.bytes(),
            TableKind::Merged(t) => t.bytes(),
        }
    }

    fn slots(&self) -> usize {
        match self {
            TableKind::Direct(t) => t.slots(),
            TableKind::Lru(t) => t.capacity(),
            TableKind::Merged(t) => t.slots(),
        }
    }

    fn entry_bytes(&self) -> usize {
        (self.bytes() / self.slots().max(1)).max(1)
    }

    fn resize(&mut self, new_slots: usize) {
        match self {
            TableKind::Direct(t) => t.resize(new_slots),
            TableKind::Lru(t) => t.set_capacity(new_slots),
            TableKind::Merged(t) => t.resize(new_slots),
        }
    }

    fn freeze_geometry(&mut self) {
        match self {
            TableKind::Direct(t) => t.freeze_geometry(),
            TableKind::Merged(t) => t.freeze_geometry(),
            // The LRU kind reorders its entries on every access, so it has
            // no lock-free probe path and nothing to freeze (sharded
            // stores never build it).
            TableKind::Lru(_) => {}
        }
    }

    fn is_frozen(&self) -> bool {
        match self {
            TableKind::Direct(t) => t.is_frozen(),
            TableKind::Merged(t) => t.is_frozen(),
            TableKind::Lru(_) => false,
        }
    }

    fn clear(&mut self) {
        match self {
            TableKind::Direct(t) => t.clear(),
            TableKind::Lru(t) => t.clear(),
            TableKind::Merged(t) => t.clear(),
        }
    }
}

/// A uniform handle over the three table kinds, wrapping the storage with
/// a [`Telemetry`] sink (always on) and an [`AdaptiveGuard`] (inert until
/// a policy with `enabled: true` is installed via
/// [`MemoTable::set_policy`]).
#[derive(Debug, Clone)]
pub struct MemoTable {
    kind: TableKind,
    guard: AdaptiveGuard,
    telemetry: Telemetry,
}

/// Closed observation windows retained per table.
const TELEMETRY_EPOCH_HISTORY: usize = 64;

impl MemoTable {
    fn with_kind(kind: TableKind, policy: GuardPolicy) -> Self {
        let telemetry = Telemetry::new(policy.epoch_len, TELEMETRY_EPOCH_HISTORY);
        MemoTable {
            kind,
            guard: AdaptiveGuard::new(policy),
            telemetry,
        }
    }

    /// Builds a direct-addressed table from `spec` (must have exactly one
    /// output group).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec is structurally invalid or has
    /// more than one output group.
    pub fn try_direct(spec: &TableSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        if spec.out_words.len() != 1 {
            return Err(SpecError::MultiSegment(spec.out_words.len()));
        }
        Ok(Self::with_kind(
            TableKind::Direct(DirectTable::new(
                spec.slots,
                spec.key_words,
                spec.out_words[0],
            )),
            GuardPolicy::default(),
        ))
    }

    /// Builds an LRU buffer with `spec.slots` entries.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec is structurally invalid or has
    /// more than one output group.
    pub fn try_lru(spec: &TableSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        if spec.out_words.len() != 1 {
            return Err(SpecError::MultiSegment(spec.out_words.len()));
        }
        Ok(Self::with_kind(
            TableKind::Lru(LruTable::new(spec.slots, spec.key_words, spec.out_words[0])),
            GuardPolicy::default(),
        ))
    }

    /// Builds a merged table from `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when the spec is structurally invalid.
    pub fn try_merged(spec: &TableSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self::with_kind(
            TableKind::Merged(MergedTable::new(
                spec.slots,
                spec.key_words,
                &spec.out_words,
            )),
            GuardPolicy::default(),
        ))
    }

    /// Builds a direct-addressed table from `spec` (must have exactly one
    /// output group).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`TableSpec::validate`] or has more than
    /// one output group; use [`MemoTable::try_direct`] for a typed error.
    pub fn direct(spec: &TableSpec) -> Self {
        Self::try_direct(spec).unwrap_or_else(|e| panic!("invalid direct table spec: {e}"))
    }

    /// Builds an LRU buffer with `spec.slots` entries.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`TableSpec::validate`] or has more than
    /// one output group; use [`MemoTable::try_lru`] for a typed error.
    pub fn lru(spec: &TableSpec) -> Self {
        Self::try_lru(spec).unwrap_or_else(|e| panic!("invalid LRU table spec: {e}"))
    }

    /// Builds a merged table from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`TableSpec::validate`]; use
    /// [`MemoTable::try_merged`] for a typed error.
    pub fn merged(spec: &TableSpec) -> Self {
        Self::try_merged(spec).unwrap_or_else(|e| panic!("invalid merged table spec: {e}"))
    }

    /// Looks up `key` for segment `slot` (always 0 for unmerged tables).
    ///
    /// On a hit, copies the recorded outputs into `out` and returns
    /// `true`. While the table is [`TableState::Bypassed`] the lookup is
    /// answered as a miss without touching the storage (the caller then
    /// executes the segment body normally, so program results are
    /// unaffected).
    pub fn lookup(&mut self, slot: usize, key: &[u64], out: &mut Vec<u64>) -> bool {
        if self.guard.is_bypassed() {
            self.telemetry.observe_bypassed(slot);
            self.roll_epoch_if_due();
            return false;
        }
        let before = *self.kind.stats();
        let hit = self.kind.lookup(slot, key, out);
        let delta = self.kind.stats().delta_since(&before);
        self.telemetry.observe(slot, &delta);
        self.roll_epoch_if_due();
        hit
    }

    /// Dependency-validating lookup: the red/green probe path.
    ///
    /// `green` marks segment `slot` as depending on *mutable* regions.
    /// With `validate: None` (exact-match mode) a green segment's probe is
    /// answered as a forced red recompute — exact matching cannot trust
    /// external dependencies — while fingerprint-free and invariant-only
    /// entries behave exactly like [`MemoTable::lookup`]. With a closure,
    /// a key-matched entry's fingerprint is passed to it; `true` promotes
    /// the entry to a hit (a *green hit* when `green`), `false` demotes the
    /// probe to a stale red (counted in both `misses` and `stale_reds`).
    /// Bypassed tables answer a forced miss without consulting storage or
    /// the validator.
    pub fn lookup_dep(
        &mut self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        validate: FpValidator,
    ) -> bool {
        if self.guard.is_bypassed() {
            self.telemetry.observe_bypassed(slot);
            self.roll_epoch_if_due();
            return false;
        }
        let before = *self.kind.stats();
        let hit = self.kind.lookup_dep(slot, key, out, green, validate);
        let delta = self.kind.stats().delta_since(&before);
        self.telemetry.observe(slot, &delta);
        self.roll_epoch_if_due();
        hit
    }

    /// Records `outputs` for `key` in segment `slot` (dropped while the
    /// table is bypassed).
    pub fn record(&mut self, slot: usize, key: &[u64], outputs: &[u64]) {
        self.record_dep(slot, key, outputs, &[]);
    }

    /// Records `outputs` for `key` in segment `slot` together with a
    /// dependency fingerprint (`&[]` for exact-match entries; dropped while
    /// the table is bypassed).
    pub fn record_dep(&mut self, slot: usize, key: &[u64], outputs: &[u64], fp: &[u64]) {
        if self.guard.is_bypassed() {
            self.telemetry.observe_dropped_record();
            return;
        }
        let before = *self.kind.stats();
        self.kind.record_dep(slot, key, outputs, fp);
        let delta = self.kind.stats().delta_since(&before);
        self.telemetry.observe(slot, &delta);
    }

    /// Declares that segment `slot` records an `fp_words`-word dependency
    /// fingerprint. The merged kind needs the widths ahead of time (its
    /// per-entry fingerprint groups share one buffer); the direct kind
    /// reserves flat-buffer capacity so later recordings never reallocate
    /// (required before [`MemoTable::freeze_geometry`]); the LRU kind
    /// stores whatever fingerprint each recording passes. Build-time
    /// configuration, called before the table sees traffic.
    pub fn set_deps(&mut self, slot: usize, fp_words: usize) {
        match &mut self.kind {
            TableKind::Merged(t) => t.set_fp_words(slot, fp_words),
            TableKind::Direct(t) => {
                debug_assert_eq!(slot, 0);
                t.reserve_fp_words(fp_words);
            }
            TableKind::Lru(_) => {}
        }
    }

    /// Pins the storage geometry so the flat entry buffers are only ever
    /// overwritten in place, never reallocated: guard-driven resizes are
    /// skipped from now on and undeclared fingerprint growth panics.
    /// [`ShardedTable`] freezes every shard at build time — the contract
    /// that makes its lock-free optimistic probes stay in-bounds.
    pub fn freeze_geometry(&mut self) {
        self.kind.freeze_geometry();
    }

    /// Read-only probe of the storage for the shared optimistic path: no
    /// statistics, telemetry, guard, or validator involvement. Returns
    /// `None` when the kind has no lock-free probe path (LRU) or the
    /// geometry is not frozen; otherwise `Some(matched)`, filling `out`
    /// and `fp` on a match. The copies may be torn — the caller must
    /// discard them unless its shard version word is unchanged across the
    /// probe (see `sharded.rs`).
    pub fn probe_shared(
        &self,
        slot: usize,
        key: &[u64],
        out: &mut Vec<u64>,
        fp: &mut Vec<u64>,
    ) -> Option<bool> {
        match &self.kind {
            TableKind::Direct(t) if t.is_frozen() => {
                debug_assert_eq!(slot, 0);
                Some(t.probe_shared(key, out, fp))
            }
            TableKind::Merged(t) if t.is_frozen() => Some(t.probe_shared(slot, key, out, fp)),
            _ => None,
        }
    }

    /// Feeds counter increments that were resolved *outside* the lock (the
    /// sharded store's optimistic probes) into this table's telemetry so
    /// observation windows — and with them the adaptive guard's epoch
    /// clock — keep advancing even when most probes never take the shard
    /// lock. Attributed to segment 0: per-slot attribution is a documented
    /// casualty of the lock-free path. Whole-run [`MemoTable::stats`] are
    /// *not* touched — the sharded store folds the same counters into its
    /// aggregates from its own atomics, and adding them here would double
    /// count.
    pub(crate) fn absorb_shared_delta(&mut self, delta: &TableStats) {
        if delta.accesses == 0 {
            return;
        }
        self.telemetry.observe(0, delta);
        self.roll_epoch_if_due();
    }

    /// Snapshot geometry `(slots, key_words, out_words, fp_words)` used by
    /// the persist layer to refuse imports into a differently-shaped
    /// table. `None` for the LRU kind (no snapshot path — sharded stores
    /// never build it).
    pub(crate) fn snapshot_geometry(&self) -> Option<(usize, usize, Vec<usize>, Vec<usize>)> {
        match &self.kind {
            TableKind::Direct(t) => Some(t.snapshot_geometry()),
            TableKind::Merged(t) => Some(t.snapshot_geometry()),
            TableKind::Lru(_) => None,
        }
    }

    /// Visits every occupied entry as `(slot, meta_word, entry_row)`;
    /// snapshot export (DESIGN.md §8i). No-op for the LRU kind.
    pub(crate) fn export_rows(&self, f: &mut dyn FnMut(u64, u64, &[u64])) {
        match &self.kind {
            TableKind::Direct(t) => t.export_rows(f),
            TableKind::Merged(t) => t.export_rows(f),
            TableKind::Lru(_) => {}
        }
    }

    /// Installs one snapshotted entry row, bypassing statistics and the
    /// guard. Returns `false` when the row does not fit the geometry (or
    /// the kind has no snapshot path).
    pub(crate) fn import_row(&mut self, slot: usize, meta: u64, row: &[u64]) -> bool {
        match &mut self.kind {
            TableKind::Direct(t) => t.import_row(slot, meta, row),
            TableKind::Merged(t) => t.import_row(slot, meta, row),
            TableKind::Lru(_) => false,
        }
    }

    /// Overwrites the whole-run statistics with a snapshot baseline.
    pub(crate) fn set_stats_baseline(&mut self, stats: TableStats) {
        match &mut self.kind {
            TableKind::Direct(t) => t.set_stats(stats),
            TableKind::Merged(t) => t.set_stats(stats),
            TableKind::Lru(_) => {}
        }
    }

    /// Reinstates snapshot-preserved telemetry running totals; see
    /// [`Telemetry::restore_baseline`].
    pub(crate) fn restore_telemetry_baseline(
        &mut self,
        epoch: u64,
        bypassed_total: u64,
        dropped_records: u64,
    ) {
        self.telemetry
            .restore_baseline(epoch, bypassed_total, dropped_records);
    }

    /// The key a recording of `key` would evict (occupied slot, different
    /// key), for the TinyLFU admission decision. `None` when recording
    /// `key` evicts nothing — or for the LRU kind, which evicts by recency
    /// and takes no admission gate.
    pub(crate) fn resident_key(&self, key: &[u64]) -> Option<&[u64]> {
        match &self.kind {
            TableKind::Direct(t) => t.resident_key(key),
            TableKind::Merged(t) => t.resident_key(key),
            TableKind::Lru(_) => None,
        }
    }

    fn roll_epoch_if_due(&mut self) {
        if !self.telemetry.window_full() {
            return;
        }
        let verdict = self.guard.on_epoch(
            self.telemetry.window(),
            self.kind.slots(),
            self.kind.entry_bytes(),
        );
        if let Some(new_slots) = verdict.resize_to {
            // A frozen table's buffers must never move (optimistic readers
            // hold no lock), so the guard's resize advice is dropped.
            if !self.kind.is_frozen() {
                self.kind.resize(new_slots);
            }
        }
        let epoch = self.telemetry.close_window(self.guard.state());
        if let Some((from, to, reason)) = verdict.transition {
            self.telemetry.push_transition(epoch, from, to, reason);
        }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &TableStats {
        self.kind.stats()
    }

    /// Storage footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.kind.bytes()
    }

    /// Current slot count (buffer capacity for the LRU kind). May change
    /// at run time when an enabled guard resizes the table.
    pub fn slots(&self) -> usize {
        self.kind.slots()
    }

    /// Per-entry access counts, if the kind tracks them (direct and merged
    /// tables do; LRU buffers have no stable entry identity).
    pub fn access_counts(&self) -> Option<&[u64]> {
        match &self.kind {
            TableKind::Direct(t) => Some(t.access_counts()),
            TableKind::Merged(t) => Some(t.access_counts()),
            TableKind::Lru(_) => None,
        }
    }

    /// The storage kind.
    pub fn kind(&self) -> &TableKind {
        &self.kind
    }

    /// The merged storage, when this table is merged.
    pub fn as_merged(&self) -> Option<&MergedTable> {
        match &self.kind {
            TableKind::Merged(t) => Some(t),
            _ => None,
        }
    }

    /// Current guard state.
    pub fn state(&self) -> TableState {
        self.guard.state()
    }

    /// The telemetry collected so far.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The active guard policy.
    pub fn policy(&self) -> &GuardPolicy {
        self.guard.policy()
    }

    /// Installs `policy`, resetting the guard to `Active` and restarting
    /// telemetry windows at the policy's epoch length (whole-run counters
    /// in [`MemoTable::stats`] are unaffected).
    pub fn set_policy(&mut self, policy: GuardPolicy) {
        self.telemetry = Telemetry::new(policy.epoch_len, TELEMETRY_EPOCH_HISTORY);
        self.guard.set_policy(policy);
    }

    /// Drops every stored entry, keeping geometry, whole-run statistics,
    /// guard state, and telemetry. A memo table is a cache — forgetting is
    /// always sound; the caller re-derives on the resulting misses. Used
    /// by poison recovery, where a shard's storage may be mid-update.
    pub fn clear(&mut self) {
        self.kind.clear();
    }

    /// Forces the table into [`TableState::Bypassed`] now, journaling the
    /// transition under `reason`. Service-level degradation (overload,
    /// fault recovery) uses this; the guard's own epoch machinery is not
    /// consulted and need not be enabled. No-op when already bypassed.
    pub fn force_bypass(&mut self, reason: &'static str) {
        let from = self.guard.state();
        if from == TableState::Bypassed {
            return;
        }
        self.guard.force_bypass();
        self.telemetry.push_transition(
            self.telemetry.current_epoch(),
            from,
            TableState::Bypassed,
            reason,
        );
    }

    /// Ends a forced bypass, journaling the transition under `reason`:
    /// enabled guards re-enter through `Probation` (re-measuring before
    /// trusting the table), disabled ones return straight to `Active`.
    /// No-op unless currently bypassed.
    pub fn end_forced_bypass(&mut self, reason: &'static str) {
        if self.guard.state() != TableState::Bypassed {
            return;
        }
        self.guard.end_forced_bypass();
        self.telemetry.push_transition(
            self.telemetry.current_epoch(),
            TableState::Bypassed,
            self.guard.state(),
            reason,
        );
    }
}

impl From<DirectTable> for MemoTable {
    fn from(t: DirectTable) -> Self {
        MemoTable::with_kind(TableKind::Direct(t), GuardPolicy::default())
    }
}

impl From<LruTable> for MemoTable {
    fn from(t: LruTable) -> Self {
        MemoTable::with_kind(TableKind::Lru(t), GuardPolicy::default())
    }
}

impl From<MergedTable> for MemoTable {
    fn from(t: MergedTable) -> Self {
        MemoTable::with_kind(TableKind::Merged(t), GuardPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_slots_cover_dip() {
        for dip in [1usize, 31, 9155, 22902, 46283] {
            let slots = TableSpec::recommended_slots(dip);
            assert!(slots >= dip, "dip {dip} → slots {slots}");
            assert!(slots.is_power_of_two());
        }
        assert_eq!(TableSpec::recommended_slots(0), 1);
    }

    #[test]
    fn spec_bytes_match_tables() {
        let spec = TableSpec {
            slots: 128,
            key_words: 2,
            out_words: vec![3],
        };
        assert_eq!(MemoTable::direct(&spec).bytes(), spec.bytes());
        let mspec = TableSpec {
            slots: 128,
            key_words: 1,
            out_words: vec![1; 8],
        };
        assert_eq!(MemoTable::merged(&mspec).bytes(), mspec.bytes());
    }

    #[test]
    fn uniform_handle_round_trips_all_kinds() {
        let spec = TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![2],
        };
        for mut t in [
            MemoTable::direct(&spec),
            MemoTable::lru(&spec),
            MemoTable::merged(&spec),
        ] {
            let mut out = Vec::new();
            assert!(!t.lookup(0, &[9], &mut out));
            t.record(0, &[9], &[1, 2]);
            assert!(t.lookup(0, &[9], &mut out));
            assert_eq!(out, vec![1, 2]);
            assert_eq!(t.stats().accesses, 2);
        }
    }

    #[test]
    fn dep_lookup_promotes_green_and_demotes_stale() {
        let spec = TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![1],
        };
        for mut t in [
            MemoTable::direct(&spec),
            MemoTable::lru(&spec),
            MemoTable::merged(&spec),
        ] {
            t.set_deps(0, 2);
            let mut out = Vec::new();
            // Cold miss, then record with a fingerprint.
            let mut nope = |_: &[u64]| unreachable!("no entry to validate");
            assert!(!t.lookup_dep(0, &[9], &mut out, true, Some(&mut nope)));
            t.record_dep(0, &[9], &[42], &[0b1010, 77]);
            // Validator accepts: green hit.
            let mut seen = Vec::new();
            let mut ok = |fp: &[u64]| {
                seen = fp.to_vec();
                true
            };
            assert!(t.lookup_dep(0, &[9], &mut out, true, Some(&mut ok)));
            assert_eq!(out, vec![42]);
            assert_eq!(seen, vec![0b1010, 77], "validator sees the stored fp");
            // Validator rejects: stale red, counted as a miss too.
            let mut no = |_: &[u64]| false;
            assert!(!t.lookup_dep(0, &[9], &mut out, true, Some(&mut no)));
            // Exact-match mode never trusts a mutable-dep entry.
            assert!(!t.lookup_dep(0, &[9], &mut out, true, None));
            let s = t.stats();
            assert_eq!(s.accesses, 4);
            assert_eq!(s.hits, 1);
            assert_eq!(s.green_hits, 1);
            assert_eq!(s.stale_reds, 1);
            assert_eq!(s.misses, 3);
        }
    }

    #[test]
    fn invariant_only_entries_hit_without_a_validator() {
        let spec = TableSpec {
            slots: 8,
            key_words: 1,
            out_words: vec![1],
        };
        let mut t = MemoTable::direct(&spec);
        let mut out = Vec::new();
        t.record_dep(0, &[3], &[30], &[u64::MAX, 5]);
        // green=false: an invariant-only segment's entry is trusted in
        // exact-match mode (matching the profile-trusting seed behavior)…
        assert!(t.lookup_dep(0, &[3], &mut out, false, None));
        assert_eq!(out, vec![30]);
        // …and validated when a validator is supplied, without counting as
        // a green hit.
        let mut ok = |_: &[u64]| true;
        assert!(t.lookup_dep(0, &[3], &mut out, false, Some(&mut ok)));
        assert_eq!(t.stats().green_hits, 0);
        let mut no = |_: &[u64]| false;
        assert!(!t.lookup_dep(0, &[3], &mut out, false, Some(&mut no)));
        assert_eq!(t.stats().stale_reds, 1);
    }

    #[test]
    fn fingerprint_free_entries_ignore_the_validator() {
        let spec = TableSpec {
            slots: 8,
            key_words: 1,
            out_words: vec![1],
        };
        let mut t = MemoTable::direct(&spec);
        let mut out = Vec::new();
        t.record(0, &[4], &[40]);
        let mut boom = |_: &[u64]| panic!("fp-free entry must not validate");
        assert!(t.lookup_dep(0, &[4], &mut out, false, Some(&mut boom)));
        assert_eq!(out, vec![40]);
    }

    #[test]
    fn invalid_specs_yield_typed_errors() {
        let good = TableSpec {
            slots: 16,
            key_words: 1,
            out_words: vec![2],
        };
        assert!(good.validate().is_ok());

        let zero_slots = TableSpec {
            slots: 0,
            ..good.clone()
        };
        assert_eq!(zero_slots.validate(), Err(SpecError::ZeroSlots));
        assert!(MemoTable::try_direct(&zero_slots).is_err());

        let zero_key = TableSpec {
            key_words: 0,
            ..good.clone()
        };
        assert_eq!(zero_key.validate(), Err(SpecError::ZeroKeyWords));

        let no_segs = TableSpec {
            out_words: vec![],
            ..good.clone()
        };
        assert_eq!(no_segs.validate(), Err(SpecError::NoSegments));

        let too_many = TableSpec {
            out_words: vec![1; 65],
            ..good.clone()
        };
        assert_eq!(too_many.validate(), Err(SpecError::TooManySegments(65)));

        let multi = TableSpec {
            out_words: vec![1, 2],
            ..good
        };
        assert!(
            multi.validate().is_ok(),
            "merged tables accept several segments"
        );
        assert_eq!(
            MemoTable::try_direct(&multi).err(),
            Some(SpecError::MultiSegment(2))
        );
        assert_eq!(
            MemoTable::try_lru(&multi).err(),
            Some(SpecError::MultiSegment(2))
        );
        assert!(MemoTable::try_merged(&multi).is_ok());
    }

    #[test]
    fn telemetry_windows_accumulate_through_the_handle() {
        let spec = TableSpec {
            slots: 8,
            key_words: 1,
            out_words: vec![1],
        };
        let mut t = MemoTable::direct(&spec);
        t.set_policy(GuardPolicy {
            epoch_len: 4,
            ..GuardPolicy::default()
        });
        let mut out = Vec::new();
        for k in 0..6u64 {
            if !t.lookup(0, &[k], &mut out) {
                t.record(0, &[k], &[k * 10]);
            }
        }
        assert_eq!(
            t.telemetry().epochs().len(),
            1,
            "one window closed at 4 accesses"
        );
        assert_eq!(t.telemetry().epochs()[0].stats.accesses, 4);
        assert_eq!(t.telemetry().window().accesses, 2);
        assert_eq!(t.telemetry().per_segment().len(), 1);
        assert_eq!(
            t.stats().accesses,
            6,
            "whole-run counters unaffected by windows"
        );
    }

    #[test]
    fn guard_disabled_by_default_never_bypasses() {
        let spec = TableSpec {
            slots: 1,
            key_words: 1,
            out_words: vec![1],
        };
        let mut t = MemoTable::direct(&spec);
        let mut out = Vec::new();
        // Forced collisions on a 1-slot table: every record evicts.
        for k in 0..10_000u64 {
            assert!(!t.lookup(0, &[k], &mut out));
            t.record(0, &[k], &[k]);
        }
        assert_eq!(t.state(), TableState::Active);
        assert_eq!(t.telemetry().bypassed_total(), 0);
    }

    #[test]
    fn enabled_guard_bypasses_and_recovers_through_the_handle() {
        let spec = TableSpec {
            slots: 1,
            key_words: 1,
            out_words: vec![1],
        };
        let mut t = MemoTable::direct(&spec);
        // epoch_len must leave the one collision the probation probe incurs
        // (its first record evicts the stale adversarial key) under the
        // threshold: 1/16 = 0.0625 ≤ 0.05 + 0.05.
        t.set_policy(GuardPolicy {
            enabled: true,
            epoch_len: 16,
            predicted_collision_rate: 0.05,
            margin: 0.05,
            k_epochs: 2,
            bypass_epochs: 2,
            max_resizes: 0,
            ..GuardPolicy::default()
        });
        let mut out = Vec::new();
        // Adversarial all-distinct keys: collision rate ≈ 1 per window.
        let mut k = 0u64;
        while t.state() != TableState::Bypassed {
            assert!(!t.lookup(0, &[k], &mut out));
            t.record(0, &[k], &[k]);
            k += 1;
            assert!(k < 10_000, "guard never tripped");
        }
        // While bypassed, lookups are forced misses and records dropped.
        let before = t.stats().accesses;
        assert!(!t.lookup(0, &[1], &mut out));
        t.record(0, &[1], &[1]);
        assert_eq!(
            t.stats().accesses,
            before,
            "storage untouched while bypassed"
        );
        assert!(t.telemetry().dropped_records() > 0);
        // Bypassed windows still roll, so the guard reaches probation and,
        // fed a healthy (hit-only) stream, returns to Active.
        let mut spins = 0u64;
        while t.state() == TableState::Bypassed {
            assert!(!t.lookup(0, &[2], &mut out));
            spins += 1;
            assert!(spins < 10_000, "never reached probation");
        }
        assert_eq!(t.state(), TableState::Probation);
        t.record(0, &[2], &[2]);
        while t.state() == TableState::Probation {
            assert!(t.lookup(0, &[2], &mut out));
            spins += 1;
            assert!(spins < 20_000, "never re-activated");
        }
        assert_eq!(t.state(), TableState::Active);
        let names: Vec<&str> = t
            .telemetry()
            .transitions()
            .iter()
            .map(|tr| tr.to.name())
            .collect();
        assert!(names.contains(&"bypassed"));
        assert!(names.contains(&"probation"));
        assert!(names.contains(&"active"));
    }
}
