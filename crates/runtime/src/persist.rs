//! Snapshot/restore for sharded reuse stores (DESIGN.md §8i).
//!
//! A service that restarts cold pays the warm-up toll all over again:
//! BENCH_pr4 measured a warm shared-store hit ratio of 0.8795 against
//! 0.8575 cold. This module serialises the *contents* of a set of
//! [`ShardedTable`]s — every occupied entry (key, outputs, dependency
//! fingerprint), each shard's folded statistics, and the telemetry
//! running totals — into a compact versioned word stream, so a restarted
//! service can resume at the warm hit ratio instead of re-deriving it.
//!
//! ## Format
//!
//! The stream is a sequence of 64-bit little-endian words:
//!
//! ```text
//! magic ("CRSNAP01")  version  store_count
//! per store:  shard_count
//!   per shard:  slots  key_words  seg_count
//!               per segment: out_words  fp_words
//!               13 statistics words (TableStats field order)
//!               3 telemetry words (epoch, bypassed_total, dropped_records)
//!               entry_count
//!               per entry: slot  meta_word  stride row words
//! checksum (wrapping sum of every preceding word)
//! ```
//!
//! The per-shard geometry is written *redundantly* — the restore target
//! is always rebuilt from the same pipeline specs — precisely so a
//! snapshot taken under different specs (or a corrupted one) is detected
//! and refused with a typed [`SnapshotError`] instead of poisoning the
//! store: restore never panics, and a failed restore leaves the caller
//! free to fall back to a clean cold start. Restored shards re-freeze
//! their geometry, so the §8h optimistic probe path stays valid.
//!
//! What a snapshot deliberately does **not** carry: guard state (the
//! restored store re-learns it from live traffic), per-segment telemetry
//! splits and closed epoch windows (they describe the dead process), and
//! TinyLFU sketch frequencies (stale frequencies would mis-admit; the
//! sketch re-warms in one sample period). A strict JSON sibling of the
//! metadata ([`snapshot_json`]) exists for debugging and is parseable by
//! the bench crate's reader.

use std::io::Write;
use std::path::Path;

use crate::sharded::ShardedTable;
use crate::stats::TableStats;

/// Snapshot format version; bumped on any layout change.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Magic word opening every snapshot ("CRSNAP01").
const SNAPSHOT_MAGIC: u64 = u64::from_le_bytes(*b"CRSNAP01");

/// Words one [`TableStats`] occupies in the stream.
const STATS_WORDS: usize = 13;

/// Why a snapshot could not be written or restored. Every restore-side
/// variant means "fall back to a cold start" — never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure reading or writing the snapshot.
    Io(std::io::Error),
    /// The stream does not open with the snapshot magic.
    BadMagic,
    /// The stream's version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u64),
    /// The stream ended before the structure it promised.
    Truncated,
    /// The trailing checksum does not match the stream.
    ChecksumMismatch,
    /// A structurally invalid record (reason attached).
    Corrupt(&'static str),
    /// The snapshot was taken under a different store shape (reason
    /// attached); restoring it would scramble entries.
    GeometryMismatch(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot version {v} unsupported (want {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::GeometryMismatch(why) => {
                write!(f, "snapshot geometry mismatch: {why}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn stats_to_words(s: &TableStats, words: &mut Vec<u64>) {
    words.extend_from_slice(&[
        s.accesses,
        s.hits,
        s.green_hits,
        s.stale_reds,
        s.misses,
        s.collisions,
        s.evictions,
        s.insertions,
        s.optimistic_hits,
        s.optimistic_retries,
        s.l1_hits,
        s.promotions,
        s.admission_rejects,
    ]);
}

fn stats_from_words(w: &[u64]) -> TableStats {
    TableStats {
        accesses: w[0],
        hits: w[1],
        green_hits: w[2],
        stale_reds: w[3],
        misses: w[4],
        collisions: w[5],
        evictions: w[6],
        insertions: w[7],
        optimistic_hits: w[8],
        optimistic_retries: w[9],
        l1_hits: w[10],
        promotions: w[11],
        admission_rejects: w[12],
    }
}

/// Serialises `stores` (one [`ShardedTable`] per memo table) into the
/// snapshot word stream, checksum included. Each shard is exported under
/// its lock, so a live store may be snapshotted while serving — the
/// result is a per-shard-consistent point-in-time capture.
pub fn snapshot_words(stores: &[&ShardedTable]) -> Vec<u64> {
    let mut words = vec![SNAPSHOT_MAGIC, SNAPSHOT_VERSION, stores.len() as u64];
    for store in stores {
        words.push(store.shard_count() as u64);
        let shard_stats = store.shard_stats();
        for (i, stats) in shard_stats.iter().enumerate() {
            store.with_shard(i, |t| {
                let (slots, key_words, out_words, fp_words) = t
                    .snapshot_geometry()
                    .expect("sharded stores only build snapshot-capable kinds");
                words.push(slots as u64);
                words.push(key_words as u64);
                words.push(out_words.len() as u64);
                for (&o, &p) in out_words.iter().zip(&fp_words) {
                    words.push(o as u64);
                    words.push(p as u64);
                }
                stats_to_words(stats, &mut words);
                let tel = t.telemetry();
                words.push(tel.current_epoch());
                words.push(tel.bypassed_total());
                words.push(tel.dropped_records());
                let count_at = words.len();
                words.push(0);
                let mut entries = 0u64;
                t.export_rows(&mut |slot, meta, row| {
                    words.push(slot);
                    words.push(meta);
                    words.extend_from_slice(row);
                    entries += 1;
                });
                words[count_at] = entries;
            });
        }
    }
    let checksum = words.iter().fold(0u64, |a, &w| a.wrapping_add(w));
    words.push(checksum);
    words
}

/// Writes a snapshot of `stores` to `path` (atomically enough for the
/// single-writer service: a full rewrite, no partial append).
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] on filesystem failure.
pub fn write_snapshot(stores: &[&ShardedTable], path: &Path) -> Result<(), SnapshotError> {
    let words = snapshot_words(stores);
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    file.flush()?;
    Ok(())
}

/// Bounded reader over the snapshot word stream.
struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Result<u64, SnapshotError> {
        let w = *self.words.get(self.pos).ok_or(SnapshotError::Truncated)?;
        self.pos += 1;
        Ok(w)
    }

    fn next_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.next()?).map_err(|_| SnapshotError::Corrupt("count overflows usize"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u64], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self
            .words
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
}

/// Restores a snapshot word stream into `stores`, which must be freshly
/// rebuilt from the same pipeline specs (same table count, shard counts,
/// and per-shard geometry — all verified against the stream before any
/// entry is installed; shard entries are cleared first regardless).
/// On success every shard holds the snapshotted entries, statistics
/// baseline, and telemetry running totals, and has its geometry
/// (re-)frozen for the §8h optimistic probe path.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`]; the caller should treat any error
/// as "discard this store and cold-start" (a failed restore may leave
/// some shards imported and others not).
pub fn restore_words(stores: &mut [&mut ShardedTable], words: &[u64]) -> Result<(), SnapshotError> {
    if words.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let body = &words[..words.len() - 1];
    let checksum = body.iter().fold(0u64, |a, &w| a.wrapping_add(w));
    if checksum != words[words.len() - 1] {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut c = Cursor {
        words: body,
        pos: 0,
    };
    if c.next()? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = c.next()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if c.next_usize()? != stores.len() {
        return Err(SnapshotError::GeometryMismatch("store count"));
    }
    for store in stores.iter_mut() {
        if c.next_usize()? != store.shard_count() {
            return Err(SnapshotError::GeometryMismatch("shard count"));
        }
        for i in 0..store.shard_count() {
            let slots = c.next_usize()?;
            let key_words = c.next_usize()?;
            let segs = c.next_usize()?;
            if segs == 0 || segs > 64 {
                return Err(SnapshotError::Corrupt("segment count out of range"));
            }
            let mut out_words = Vec::with_capacity(segs);
            let mut fp_words = Vec::with_capacity(segs);
            for _ in 0..segs {
                out_words.push(c.next_usize()?);
                fp_words.push(c.next_usize()?);
            }
            let stats = stats_from_words(c.take(STATS_WORDS)?);
            let epoch = c.next()?;
            let bypassed_total = c.next()?;
            let dropped_records = c.next()?;
            let entries = c.next_usize()?;
            if entries > slots {
                return Err(SnapshotError::Corrupt("more entries than slots"));
            }
            let stride =
                key_words + out_words.iter().sum::<usize>() + fp_words.iter().sum::<usize>();
            store.with_shard_mut(i, |t| {
                let fresh = t
                    .snapshot_geometry()
                    .ok_or(SnapshotError::GeometryMismatch("table kind"))?;
                if fresh != (slots, key_words, out_words.clone(), fp_words.clone()) {
                    return Err(SnapshotError::GeometryMismatch("shard shape"));
                }
                t.clear();
                for _ in 0..entries {
                    let slot = c.next_usize()?;
                    let meta = c.next()?;
                    let row = c.take(stride)?;
                    if !t.import_row(slot, meta, row) {
                        return Err(SnapshotError::Corrupt("entry row rejected"));
                    }
                }
                t.set_stats_baseline(stats);
                t.restore_telemetry_baseline(epoch, bypassed_total, dropped_records);
                t.freeze_geometry();
                Ok(())
            })?;
        }
    }
    if c.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing words after last shard"));
    }
    Ok(())
}

/// Reads the snapshot at `path` into `stores`; see [`restore_words`].
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] (treat any error as "cold-start").
pub fn read_snapshot(stores: &mut [&mut ShardedTable], path: &Path) -> Result<(), SnapshotError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() % 8 != 0 {
        return Err(SnapshotError::Truncated);
    }
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect();
    restore_words(stores, &words)
}

fn json_stats(s: &TableStats) -> String {
    format!(
        concat!(
            "{{\"accesses\":{},\"hits\":{},\"green_hits\":{},\"stale_reds\":{},",
            "\"misses\":{},\"collisions\":{},\"evictions\":{},\"insertions\":{},",
            "\"optimistic_hits\":{},\"optimistic_retries\":{},",
            "\"l1_hits\":{},\"promotions\":{},\"admission_rejects\":{}}}"
        ),
        s.accesses,
        s.hits,
        s.green_hits,
        s.stale_reds,
        s.misses,
        s.collisions,
        s.evictions,
        s.insertions,
        s.optimistic_hits,
        s.optimistic_retries,
        s.l1_hits,
        s.promotions,
        s.admission_rejects,
    )
}

/// Strict JSON rendering of a snapshot's *metadata* (geometry, entry
/// counts, statistics, telemetry totals — not the entry payloads), for
/// debugging and the bench reports. The output parses under the bench
/// crate's strict JSON reader.
pub fn snapshot_json(stores: &[&ShardedTable]) -> String {
    let rendered: Vec<String> = stores
        .iter()
        .map(|store| {
            let shard_stats = store.shard_stats();
            let shards: Vec<String> = (0..store.shard_count())
                .map(|i| {
                    store.with_shard(i, |t| {
                        let (slots, key_words, out_words, fp_words) = t
                            .snapshot_geometry()
                            .expect("sharded stores only build snapshot-capable kinds");
                        let mut entries = 0u64;
                        t.export_rows(&mut |_, _, _| entries += 1);
                        let ow: Vec<String> = out_words.iter().map(usize::to_string).collect();
                        let fw: Vec<String> = fp_words.iter().map(usize::to_string).collect();
                        let tel = t.telemetry();
                        format!(
                            concat!(
                                "{{\"slots\":{},\"key_words\":{},\"out_words\":[{}],",
                                "\"fp_words\":[{}],\"entries\":{},\"stats\":{},",
                                "\"telemetry\":{{\"epoch\":{},\"bypassed_total\":{},",
                                "\"dropped_records\":{}}}}}"
                            ),
                            slots,
                            key_words,
                            ow.join(","),
                            fw.join(","),
                            entries,
                            json_stats(&shard_stats[i]),
                            tel.current_epoch(),
                            tel.bypassed_total(),
                            tel.dropped_records(),
                        )
                    })
                })
                .collect();
            format!("{{\"shards\":[{}]}}", shards.join(","))
        })
        .collect();
    format!(
        "{{\"snapshot\":\"crsnap\",\"version\":{},\"stores\":[{}]}}",
        SNAPSHOT_VERSION,
        rendered.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableSpec;

    fn spec(slots: usize, segs: usize) -> TableSpec {
        TableSpec {
            slots,
            key_words: 1,
            out_words: vec![1; segs],
        }
    }

    fn build(slots: usize, segs: usize, shards: usize) -> ShardedTable {
        ShardedTable::try_from_spec(&spec(slots, segs), shards).unwrap()
    }

    #[test]
    fn round_trip_preserves_entries_and_stats() {
        let mut a = build(64, 1, 4);
        a.set_deps(0, 2);
        let mut out = Vec::new();
        // 16 keys with distinct mod-16 residues: no direct-map collisions,
        // so every recorded entry is still resident at snapshot time.
        for k in 0..16u64 {
            if !a.lookup(0, &[k], &mut out) {
                a.record_dep(0, &[k], &[k * 3], &[k, k + 1]);
            }
        }
        for k in 0..16u64 {
            assert!(a.lookup(0, &[k], &mut out));
        }
        let words = snapshot_words(&[&a]);
        let mut b = build(64, 1, 4);
        b.set_deps(0, 2);
        restore_words(&mut [&mut b], &words).unwrap();
        assert_eq!(b.stats(), a.stats(), "statistics baseline restored");
        let mut seen = Vec::new();
        for k in 0..16u64 {
            let mut grab = |fp: &[u64]| {
                seen = fp.to_vec();
                true
            };
            assert!(b.lookup_dep(0, &[k], &mut out, false, Some(&mut grab)));
            assert_eq!(out, vec![k * 3]);
            assert_eq!(seen, vec![k, k + 1], "fingerprints survive the trip");
        }
    }

    #[test]
    fn merged_stores_round_trip() {
        let mut a = build(32, 3, 2);
        a.set_deps(1, 1);
        let mut out = Vec::new();
        a.record(0, &[7], &[70]);
        a.record_dep(1, &[7], &[71], &[9]);
        a.record(2, &[8], &[82]);
        let words = snapshot_words(&[&a]);
        let mut b = build(32, 3, 2);
        b.set_deps(1, 1);
        restore_words(&mut [&mut b], &words).unwrap();
        assert!(b.lookup(0, &[7], &mut out));
        assert_eq!(out, vec![70]);
        let mut ok = |fp: &[u64]| fp == [9];
        assert!(b.lookup_dep(1, &[7], &mut out, true, Some(&mut ok)));
        assert_eq!(out, vec![71]);
        assert!(b.lookup(2, &[8], &mut out));
        assert_eq!(out, vec![82]);
        assert!(!b.lookup(1, &[8], &mut out), "unset valid bit stays unset");
    }

    #[test]
    fn corrupt_streams_are_refused_not_panicked() {
        let a = build(16, 1, 2);
        a.record(0, &[3], &[30]);
        let good = snapshot_words(&[&a]);

        let mut b = build(16, 1, 2);
        // Truncation (checksum word gone).
        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            restore_words(&mut [&mut b], truncated),
            Err(SnapshotError::ChecksumMismatch | SnapshotError::Truncated)
        ));
        // Bit flip mid-stream.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(matches!(
            restore_words(&mut [&mut b], &flipped),
            Err(SnapshotError::ChecksumMismatch)
        ));
        // Recomputes the trailing checksum so the tampered stream is
        // "valid" and the targeted structural check is what rejects it.
        fn fix_checksum(words: &mut [u64]) {
            let n = words.len();
            words[n - 1] = words[..n - 1].iter().fold(0u64, |a, &w| a.wrapping_add(w));
        }
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 1;
        fix_checksum(&mut bad_magic);
        assert!(matches!(
            restore_words(&mut [&mut b], &bad_magic),
            Err(SnapshotError::BadMagic)
        ));
        // Version bump.
        let mut bumped = good.clone();
        bumped[1] += 1;
        fix_checksum(&mut bumped);
        assert!(matches!(
            restore_words(&mut [&mut b], &bumped),
            Err(SnapshotError::UnsupportedVersion(v)) if v == SNAPSHOT_VERSION + 1
        ));
        // Empty stream.
        assert!(matches!(
            restore_words(&mut [&mut b], &[]),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn geometry_mismatches_are_refused() {
        let a = build(64, 1, 4);
        a.record(0, &[1], &[10]);
        let words = snapshot_words(&[&a]);
        // Different shard count.
        let mut b = build(64, 1, 8);
        assert!(matches!(
            restore_words(&mut [&mut b], &words),
            Err(SnapshotError::GeometryMismatch(_))
        ));
        // Different slot budget.
        let mut c = build(128, 1, 4);
        assert!(matches!(
            restore_words(&mut [&mut c], &words),
            Err(SnapshotError::GeometryMismatch(_))
        ));
        // Different store count.
        let mut d1 = build(64, 1, 4);
        let mut d2 = build(64, 1, 4);
        assert!(matches!(
            restore_words(&mut [&mut d1, &mut d2], &words),
            Err(SnapshotError::GeometryMismatch("store count"))
        ));
    }

    #[test]
    fn file_round_trip_and_cold_fallback() {
        let dir = std::env::temp_dir().join("compreuse-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let a = build(32, 1, 2);
        let mut out = Vec::new();
        for k in 0..10u64 {
            a.record(0, &[k], &[k + 100]);
        }
        write_snapshot(&[&a], &path).unwrap();
        let mut b = build(32, 1, 2);
        read_snapshot(&mut [&mut b], &path).unwrap();
        for k in 0..10u64 {
            assert!(b.lookup(0, &[k], &mut out));
            assert_eq!(out, vec![k + 100]);
        }
        // Truncated file: typed error, not a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        let mut c = build(32, 1, 2);
        assert!(read_snapshot(&mut [&mut c], &path).is_err());
        // Missing file.
        let mut d = build(32, 1, 2);
        assert!(matches!(
            read_snapshot(&mut [&mut d], &dir.join("absent.snap")),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restored_store_keeps_optimistic_probes() {
        let a = build(64, 1, 4);
        a.record(0, &[5], &[50]);
        let words = snapshot_words(&[&a]);
        let mut b = build(64, 1, 4);
        restore_words(&mut [&mut b], &words).unwrap();
        let mut out = Vec::new();
        let before = b.stats().optimistic_hits;
        assert!(b.lookup(0, &[5], &mut out));
        assert_eq!(
            b.stats().optimistic_hits,
            before + 1,
            "restored shards stay frozen: warm hits resolve lock-free"
        );
    }

    #[test]
    fn snapshot_json_is_structurally_sound() {
        let a = build(16, 2, 2);
        a.record(0, &[1], &[10]);
        let json = snapshot_json(&[&a]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"snapshot\":\"crsnap\""));
        assert!(json.contains(&format!("\"version\":{SNAPSHOT_VERSION}")));
        assert!(json.contains("\"admission_rejects\""));
    }
}
