//! The paper's direct-addressed hash table (§3.1, Table 1).
//!
//! One slot per index; the index is `key mod size` for one-word keys and
//! `jenkins(key) mod size` for longer keys. A colliding recording replaces
//! the previous entry in place. The table additionally counts per-slot
//! accesses so the harness can regenerate the paper's Figures 7/8
//! ("histogram of accessed table entries").

use crate::hash::index_of;
use crate::stats::TableStats;
use crate::FpValidator;

/// A direct-addressed memo table mapping an input key (concatenated 64-bit
/// words) to recorded output words.
#[derive(Debug, Clone)]
pub struct DirectTable {
    entries: Vec<Option<Entry>>,
    key_words: usize,
    out_words: usize,
    stats: TableStats,
    access_counts: Vec<u64>,
}

#[derive(Debug, Clone)]
struct Entry {
    key: Box<[u64]>,
    out: Box<[u64]>,
    /// Dependency fingerprint (empty for exact-match-only entries): pairs
    /// of `(chunk mask, chained-epoch sum)` per dependency region, opaque
    /// to the table. An empty boxed slice does not allocate.
    fp: Box<[u64]>,
}

impl DirectTable {
    /// Creates a table with `slots` entries for keys of `key_words` words
    /// and outputs of `out_words` words.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero (outputs may be zero-width only when
    /// the segment memoizes just a return value — pass `out_words = 0` is
    /// therefore allowed).
    pub fn new(slots: usize, key_words: usize, out_words: usize) -> Self {
        assert!(slots > 0, "table must have at least one slot");
        assert!(key_words > 0, "key must have at least one word");
        DirectTable {
            entries: vec![None; slots],
            key_words,
            out_words,
            stats: TableStats::default(),
            access_counts: vec![0; slots],
        }
    }

    /// Creates the largest table fitting in `bytes` bytes (at least one
    /// slot), for the paper's Figures 14/15 size sweep.
    pub fn with_bytes(bytes: usize, key_words: usize, out_words: usize) -> Self {
        let per = Self::entry_bytes(key_words, out_words);
        let slots = (bytes / per).max(1);
        Self::new(slots, key_words, out_words)
    }

    /// Bytes one entry occupies (key + outputs + occupancy bookkeeping).
    pub fn entry_bytes(key_words: usize, out_words: usize) -> usize {
        (key_words + out_words) * 8 + 8
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Storage footprint in bytes (the paper's Table 3 last column).
    pub fn bytes(&self) -> usize {
        self.entries.len() * Self::entry_bytes(self.key_words, self.out_words)
    }

    /// Looks `key` up; on a hit copies the recorded outputs into `out`
    /// (cleared first) and returns `true`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `key` has the wrong number of words
    /// (widths are validated once at spec level; see
    /// [`crate::TableSpec::validate`]).
    pub fn lookup(&mut self, key: &[u64], out: &mut Vec<u64>) -> bool {
        self.lookup_dep(key, out, false, None)
    }

    /// Dependency-validating lookup (the red/green probe path).
    ///
    /// `green` marks the probing segment as depending on *mutable* regions:
    /// with no `validate` closure (exact-match mode) such entries can never
    /// be trusted and the probe is answered as a forced red recompute; with
    /// a closure, a key-matched entry's fingerprint is passed to it and the
    /// entry is promoted to a hit only on `true` (counted in `green_hits`),
    /// otherwise the probe is a stale red (`stale_reds`, also a miss).
    /// Entries recorded without a fingerprint behave exactly as before.
    pub fn lookup_dep(
        &mut self,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        mut validate: FpValidator,
    ) -> bool {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let idx = index_of(key, self.entries.len());
        self.stats.accesses += 1;
        self.access_counts[idx] += 1;
        if green && validate.is_none() {
            // Exact-match mode cannot verify external dependencies, so the
            // entry (if any) is untrusted: forced red.
            self.stats.misses += 1;
            return false;
        }
        match &self.entries[idx] {
            Some(e) if *e.key == *key => {
                if !e.fp.is_empty() {
                    if let Some(v) = validate.as_mut() {
                        if !v(&e.fp) {
                            self.stats.misses += 1;
                            self.stats.stale_reds += 1;
                            return false;
                        }
                        if green {
                            self.stats.green_hits += 1;
                        }
                    }
                }
                self.stats.hits += 1;
                out.clear();
                out.extend_from_slice(&e.out);
                true
            }
            _ => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Records `outputs` for `key`, replacing whatever occupied the slot.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `key` or `outputs` have the wrong number
    /// of words.
    pub fn record(&mut self, key: &[u64], outputs: &[u64]) {
        self.record_dep(key, outputs, &[]);
    }

    /// Records `outputs` for `key` together with a dependency fingerprint
    /// (pass `&[]` for exact-match-only entries).
    pub fn record_dep(&mut self, key: &[u64], outputs: &[u64], fp: &[u64]) {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        debug_assert_eq!(outputs.len(), self.out_words, "output width mismatch");
        let idx = index_of(key, self.entries.len());
        self.stats.insertions += 1;
        if let Some(prev) = &self.entries[idx] {
            if *prev.key != *key {
                self.stats.collisions += 1;
                self.stats.evictions += 1;
            }
        }
        self.entries[idx] = Some(Entry {
            key: key.into(),
            out: outputs.into(),
            fp: fp.into(),
        });
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Per-slot access counts (for the accessed-entries histograms).
    pub fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Drops every stored entry and zeroes the per-slot access histogram,
    /// keeping geometry and whole-run statistics. Forgetting is always
    /// sound for a memo table; used by shard poison recovery.
    pub fn clear(&mut self) {
        self.entries.fill_with(|| None);
        self.access_counts.fill(0);
    }

    /// Rebuilds the table with `new_slots` slots, rehashing the live
    /// entries (entries whose new indices clash keep the later one, as a
    /// normal collision would). Statistics are preserved; the per-slot
    /// access histogram restarts at zero because slot identities change.
    ///
    /// # Panics
    ///
    /// Panics if `new_slots` is zero.
    pub fn resize(&mut self, new_slots: usize) {
        assert!(new_slots > 0, "table must have at least one slot");
        let old = std::mem::replace(&mut self.entries, vec![None; new_slots]);
        for e in old.into_iter().flatten() {
            let idx = index_of(&e.key, new_slots);
            self.entries[idx] = Some(e);
        }
        self.access_counts = vec![0; new_slots];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = DirectTable::new(16, 1, 1);
        let mut out = Vec::new();
        assert!(!t.lookup(&[5], &mut out));
        t.record(&[5], &[50]);
        assert!(t.lookup(&[5], &mut out));
        assert_eq!(out, vec![50]);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().accesses, 2);
    }

    #[test]
    fn collision_replaces_previous_entry() {
        // Keys 3 and 19 collide in a 16-slot table (3 mod 16 == 19 mod 16).
        let mut t = DirectTable::new(16, 1, 1);
        let mut out = Vec::new();
        t.record(&[3], &[30]);
        t.record(&[19], &[190]);
        assert_eq!(t.stats().collisions, 1);
        assert!(!t.lookup(&[3], &mut out), "3 was evicted");
        assert!(t.lookup(&[19], &mut out));
        assert_eq!(out, vec![190]);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn same_key_rerecord_is_not_a_collision() {
        let mut t = DirectTable::new(8, 1, 1);
        t.record(&[2], &[1]);
        t.record(&[2], &[2]);
        assert_eq!(t.stats().collisions, 0);
        let mut out = Vec::new();
        assert!(t.lookup(&[2], &mut out));
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn multi_word_keys_hash_through_jenkins() {
        let mut t = DirectTable::new(1024, 64, 2);
        let key_a: Vec<u64> = (0..64).collect();
        let key_b: Vec<u64> = (1..65).collect();
        t.record(&key_a, &[7, 8]);
        let mut out = Vec::new();
        assert!(t.lookup(&key_a, &mut out));
        assert_eq!(out, vec![7, 8]);
        assert!(!t.lookup(&key_b, &mut out));
    }

    #[test]
    fn access_counts_track_slots() {
        let mut t = DirectTable::new(4, 1, 1);
        let mut out = Vec::new();
        t.record(&[1], &[1]);
        for _ in 0..5 {
            t.lookup(&[1], &mut out);
        }
        t.lookup(&[2], &mut out); // miss at slot 2
        assert_eq!(t.access_counts()[1], 5);
        assert_eq!(t.access_counts()[2], 1);
    }

    #[test]
    fn with_bytes_caps_footprint() {
        let t = DirectTable::with_bytes(512, 1, 1);
        assert!(t.bytes() <= 512);
        assert!(t.slots() >= 1);
        let tiny = DirectTable::with_bytes(1, 64, 64);
        assert_eq!(tiny.slots(), 1, "always at least one slot");
    }

    #[test]
    fn zero_output_words_supported() {
        // A segment whose only output is the return value stores no output
        // words in the table body.
        let mut t = DirectTable::new(4, 1, 0);
        t.record(&[1], &[]);
        let mut out = vec![99];
        assert!(t.lookup(&[1], &mut out));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn wrong_key_width_panics() {
        let mut t = DirectTable::new(4, 2, 1);
        let mut out = Vec::new();
        t.lookup(&[1], &mut out);
    }
}
