//! The paper's direct-addressed hash table (§3.1, Table 1).
//!
//! One slot per index; the index is `key mod size` for one-word keys and
//! `jenkins(key) mod size` for longer keys. A colliding recording replaces
//! the previous entry in place. The table additionally counts per-slot
//! accesses so the harness can regenerate the paper's Figures 7/8
//! ("histogram of accessed table entries").
//!
//! ## Flat storage
//!
//! Entries live in two flat buffers instead of per-entry boxes: `meta`
//! holds one occupancy/fingerprint-length word per slot and `data` holds
//! the entry bodies at a fixed stride (`key ++ outputs ++ fingerprint
//! capacity`). Nothing is allocated or freed per recording, which is what
//! makes the optimistic shared probe ([`DirectTable::probe_shared`])
//! sound: a racing writer can overwrite words in place but can never make
//! a reader's pointer dangle. Once [`DirectTable::freeze_geometry`] is
//! called the buffers never move again (resizes and record-time
//! fingerprint growth are forbidden), so lock-free readers only ever read
//! stable, in-bounds memory and rely on the caller's version-word
//! protocol (see `sharded.rs`) to discard torn snapshots.

use crate::hash::index_of;
use crate::stats::TableStats;
use crate::FpValidator;

/// A direct-addressed memo table mapping an input key (concatenated 64-bit
/// words) to recorded output words.
#[derive(Debug, Clone)]
pub struct DirectTable {
    /// Per-slot occupancy word: `0` for an empty slot, else
    /// `1 | (fp_len << 1)` where `fp_len` is the entry's fingerprint
    /// length in words.
    meta: Vec<u64>,
    /// Entry bodies at stride `key_words + out_words + fp_cap`:
    /// `[key][outputs][fingerprint]` per slot.
    data: Vec<u64>,
    key_words: usize,
    out_words: usize,
    /// Fingerprint capacity per entry (grown on demand until frozen).
    fp_cap: usize,
    /// Geometry pinned: `data`/`meta` may be overwritten in place but
    /// never reallocated, so shared optimistic readers stay in-bounds.
    frozen: bool,
    stats: TableStats,
    access_counts: Vec<u64>,
}

impl DirectTable {
    /// Creates a table with `slots` entries for keys of `key_words` words
    /// and outputs of `out_words` words.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero (outputs may be zero-width only when
    /// the segment memoizes just a return value — pass `out_words = 0` is
    /// therefore allowed).
    pub fn new(slots: usize, key_words: usize, out_words: usize) -> Self {
        assert!(slots > 0, "table must have at least one slot");
        assert!(key_words > 0, "key must have at least one word");
        DirectTable {
            meta: vec![0; slots],
            data: vec![0; slots * (key_words + out_words)],
            key_words,
            out_words,
            fp_cap: 0,
            frozen: false,
            stats: TableStats::default(),
            access_counts: vec![0; slots],
        }
    }

    /// Creates the largest table fitting in `bytes` bytes (at least one
    /// slot), for the paper's Figures 14/15 size sweep.
    pub fn with_bytes(bytes: usize, key_words: usize, out_words: usize) -> Self {
        let per = Self::entry_bytes(key_words, out_words);
        let slots = (bytes / per).max(1);
        Self::new(slots, key_words, out_words)
    }

    /// Bytes one entry occupies (key + outputs + occupancy bookkeeping).
    pub fn entry_bytes(key_words: usize, out_words: usize) -> usize {
        (key_words + out_words) * 8 + 8
    }

    fn stride(&self) -> usize {
        self.key_words + self.out_words + self.fp_cap
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.meta.len()
    }

    /// Storage footprint in bytes (the paper's Table 3 last column).
    pub fn bytes(&self) -> usize {
        self.meta.len() * Self::entry_bytes(self.key_words, self.out_words)
    }

    /// Pins the table's geometry: after this call the entry buffers are
    /// only ever overwritten in place, never reallocated or resized.
    /// Required before the table is probed through
    /// [`DirectTable::probe_shared`] concurrently with writers; recordings
    /// whose fingerprint exceeds the declared capacity
    /// ([`DirectTable::reserve_fp_words`]) then panic instead of growing.
    pub fn freeze_geometry(&mut self) {
        self.frozen = true;
    }

    /// Whether [`DirectTable::freeze_geometry`] was called.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Ensures entries can hold fingerprints of up to `words` words,
    /// rebuilding the flat buffer if capacity grows. Build-time
    /// configuration: call before [`DirectTable::freeze_geometry`] (or
    /// while holding exclusive access — the buffer may reallocate).
    pub fn reserve_fp_words(&mut self, words: usize) {
        if words > self.fp_cap {
            self.grow_fp_cap(words);
        }
    }

    fn grow_fp_cap(&mut self, new_cap: usize) {
        debug_assert!(new_cap > self.fp_cap);
        let old_stride = self.stride();
        let new_stride = self.key_words + self.out_words + new_cap;
        let mut data = vec![0u64; self.meta.len() * new_stride];
        for slot in 0..self.meta.len() {
            if self.meta[slot] != 0 {
                let old = slot * old_stride;
                let new = slot * new_stride;
                data[new..new + old_stride].copy_from_slice(&self.data[old..old + old_stride]);
            }
        }
        self.data = data;
        self.fp_cap = new_cap;
    }

    /// Looks `key` up; on a hit copies the recorded outputs into `out`
    /// (cleared first) and returns `true`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `key` has the wrong number of words
    /// (widths are validated once at spec level; see
    /// [`crate::TableSpec::validate`]).
    pub fn lookup(&mut self, key: &[u64], out: &mut Vec<u64>) -> bool {
        self.lookup_dep(key, out, false, None)
    }

    /// Dependency-validating lookup (the red/green probe path).
    ///
    /// `green` marks the probing segment as depending on *mutable* regions:
    /// with no `validate` closure (exact-match mode) such entries can never
    /// be trusted and the probe is answered as a forced red recompute; with
    /// a closure, a key-matched entry's fingerprint is passed to it and the
    /// entry is promoted to a hit only on `true` (counted in `green_hits`),
    /// otherwise the probe is a stale red (`stale_reds`, also a miss).
    /// Entries recorded without a fingerprint behave exactly as before.
    pub fn lookup_dep(
        &mut self,
        key: &[u64],
        out: &mut Vec<u64>,
        green: bool,
        mut validate: FpValidator,
    ) -> bool {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let idx = index_of(key, self.meta.len());
        self.stats.accesses += 1;
        self.access_counts[idx] += 1;
        if green && validate.is_none() {
            // Exact-match mode cannot verify external dependencies, so the
            // entry (if any) is untrusted: forced red.
            self.stats.misses += 1;
            return false;
        }
        let meta = self.meta[idx];
        let base = idx * self.stride();
        if meta != 0 && self.data[base..base + self.key_words] == *key {
            let fp_len = (meta >> 1) as usize;
            if fp_len > 0 {
                if let Some(v) = validate.as_mut() {
                    let fplo = base + self.key_words + self.out_words;
                    if !v(&self.data[fplo..fplo + fp_len]) {
                        self.stats.misses += 1;
                        self.stats.stale_reds += 1;
                        return false;
                    }
                    if green {
                        self.stats.green_hits += 1;
                    }
                }
            }
            self.stats.hits += 1;
            let lo = base + self.key_words;
            out.clear();
            out.extend_from_slice(&self.data[lo..lo + self.out_words]);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Read-only probe for the shared optimistic path: no statistics, no
    /// access counts, no validator. On a key match copies the outputs into
    /// `out` and the fingerprint into `fp` (both cleared first) and returns
    /// `true`.
    ///
    /// Every word is read with `read_volatile` because a writer holding
    /// the shard lock may be overwriting the same entry concurrently; the
    /// copies may therefore be *torn* and the caller must discard them
    /// unless its version word is unchanged across the probe (the seqlock
    /// protocol in `sharded.rs`). A torn `meta` word cannot read out of
    /// bounds: the fingerprint length is clamped to the frozen capacity
    /// and all offsets derive from frozen geometry.
    pub fn probe_shared(&self, key: &[u64], out: &mut Vec<u64>, fp: &mut Vec<u64>) -> bool {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let idx = index_of(key, self.meta.len());
        // SAFETY: `idx < meta.len()` and all offsets below stay within
        // `data` (stride × slots), whose length is pinned while frozen.
        unsafe {
            let meta = std::ptr::read_volatile(self.meta.as_ptr().add(idx));
            if meta == 0 {
                return false;
            }
            let base = self.data.as_ptr().add(idx * self.stride());
            for (w, &kw) in key.iter().enumerate() {
                if std::ptr::read_volatile(base.add(w)) != kw {
                    return false;
                }
            }
            out.clear();
            for w in 0..self.out_words {
                out.push(std::ptr::read_volatile(base.add(self.key_words + w)));
            }
            let fp_len = ((meta >> 1) as usize).min(self.fp_cap);
            fp.clear();
            for w in 0..fp_len {
                fp.push(std::ptr::read_volatile(
                    base.add(self.key_words + self.out_words + w),
                ));
            }
        }
        true
    }

    /// Records `outputs` for `key`, replacing whatever occupied the slot.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `key` or `outputs` have the wrong number
    /// of words.
    pub fn record(&mut self, key: &[u64], outputs: &[u64]) {
        self.record_dep(key, outputs, &[]);
    }

    /// Records `outputs` for `key` together with a dependency fingerprint
    /// (pass `&[]` for exact-match-only entries).
    ///
    /// # Panics
    ///
    /// Panics if the fingerprint exceeds the declared capacity of a frozen
    /// table (declare widths via [`DirectTable::reserve_fp_words`] before
    /// freezing — growing would move the buffer under optimistic readers).
    pub fn record_dep(&mut self, key: &[u64], outputs: &[u64], fp: &[u64]) {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        debug_assert_eq!(outputs.len(), self.out_words, "output width mismatch");
        if fp.len() > self.fp_cap {
            assert!(
                !self.frozen,
                "fingerprint of {} words exceeds the frozen capacity of {}",
                fp.len(),
                self.fp_cap
            );
            self.grow_fp_cap(fp.len());
        }
        let idx = index_of(key, self.meta.len());
        self.stats.insertions += 1;
        let base = idx * self.stride();
        if self.meta[idx] != 0 && self.data[base..base + self.key_words] != *key {
            self.stats.collisions += 1;
            self.stats.evictions += 1;
        }
        self.data[base..base + self.key_words].copy_from_slice(key);
        let lo = base + self.key_words;
        self.data[lo..lo + self.out_words].copy_from_slice(outputs);
        let fplo = lo + self.out_words;
        self.data[fplo..fplo + fp.len()].copy_from_slice(fp);
        self.meta[idx] = 1 | ((fp.len() as u64) << 1);
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Snapshot geometry: `(slots, key_words, out_words, fp_cap)`. The
    /// persist layer refuses to import entries into a table whose
    /// geometry differs from the one snapshotted.
    pub(crate) fn snapshot_geometry(&self) -> (usize, usize, Vec<usize>, Vec<usize>) {
        (
            self.meta.len(),
            self.key_words,
            vec![self.out_words],
            vec![self.fp_cap],
        )
    }

    /// Visits every occupied slot as `(slot, meta_word, entry_row)` where
    /// the row is the full `stride()`-word body (key, outputs, fingerprint
    /// capacity). Snapshot export path (DESIGN.md §8i).
    pub(crate) fn export_rows(&self, f: &mut dyn FnMut(u64, u64, &[u64])) {
        let stride = self.stride();
        for (slot, &meta) in self.meta.iter().enumerate() {
            if meta != 0 {
                let base = slot * stride;
                f(slot as u64, meta, &self.data[base..base + stride]);
            }
        }
    }

    /// Installs one snapshotted entry row without touching statistics or
    /// access counts. Returns `false` (leaving the table unchanged) when
    /// the row does not fit this table's geometry — the restore path then
    /// reports corruption instead of panicking.
    pub(crate) fn import_row(&mut self, slot: usize, meta: u64, row: &[u64]) -> bool {
        let stride = self.stride();
        let fits = slot < self.meta.len()
            && row.len() == stride
            && meta & 1 == 1
            && ((meta >> 1) as usize) <= self.fp_cap;
        if !fits {
            return false;
        }
        let base = slot * stride;
        self.data[base..base + stride].copy_from_slice(row);
        self.meta[slot] = meta;
        true
    }

    /// Overwrites the whole-run statistics (snapshot-restore baseline).
    pub(crate) fn set_stats(&mut self, stats: TableStats) {
        self.stats = stats;
    }

    /// The key resident in the slot `key` indexes to, when that slot is
    /// occupied by a *different* key — i.e. the entry a recording of `key`
    /// would evict. `None` when the slot is empty or already holds `key`
    /// (no eviction, so admission has nothing to decide).
    pub(crate) fn resident_key(&self, key: &[u64]) -> Option<&[u64]> {
        debug_assert_eq!(key.len(), self.key_words, "key width mismatch");
        let idx = index_of(key, self.meta.len());
        if self.meta[idx] == 0 {
            return None;
        }
        let base = idx * self.stride();
        let resident = &self.data[base..base + self.key_words];
        if resident == key {
            None
        } else {
            Some(resident)
        }
    }

    /// Per-slot access counts (for the accessed-entries histograms).
    pub fn access_counts(&self) -> &[u64] {
        &self.access_counts
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m != 0).count()
    }

    /// Drops every stored entry and zeroes the per-slot access histogram,
    /// keeping geometry and whole-run statistics. Forgetting is always
    /// sound for a memo table; used by shard poison recovery. Works on
    /// frozen tables: the buffers are overwritten in place, not moved.
    pub fn clear(&mut self) {
        self.meta.fill(0);
        self.access_counts.fill(0);
    }

    /// Rebuilds the table with `new_slots` slots, rehashing the live
    /// entries (entries whose new indices clash keep the later one, as a
    /// normal collision would). Statistics are preserved; the per-slot
    /// access histogram restarts at zero because slot identities change.
    ///
    /// # Panics
    ///
    /// Panics if `new_slots` is zero or the geometry is frozen.
    pub fn resize(&mut self, new_slots: usize) {
        assert!(new_slots > 0, "table must have at least one slot");
        assert!(!self.frozen, "cannot resize a frozen table");
        let stride = self.stride();
        let old_meta = std::mem::replace(&mut self.meta, vec![0; new_slots]);
        let old_data = std::mem::replace(&mut self.data, vec![0; new_slots * stride]);
        for (slot, &meta) in old_meta.iter().enumerate() {
            if meta == 0 {
                continue;
            }
            let old = slot * stride;
            let key = &old_data[old..old + self.key_words];
            let idx = index_of(key, new_slots);
            let new = idx * stride;
            self.data[new..new + stride].copy_from_slice(&old_data[old..old + stride]);
            self.meta[idx] = meta;
        }
        self.access_counts = vec![0; new_slots];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = DirectTable::new(16, 1, 1);
        let mut out = Vec::new();
        assert!(!t.lookup(&[5], &mut out));
        t.record(&[5], &[50]);
        assert!(t.lookup(&[5], &mut out));
        assert_eq!(out, vec![50]);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().accesses, 2);
    }

    #[test]
    fn collision_replaces_previous_entry() {
        // Keys 3 and 19 collide in a 16-slot table (3 mod 16 == 19 mod 16).
        let mut t = DirectTable::new(16, 1, 1);
        let mut out = Vec::new();
        t.record(&[3], &[30]);
        t.record(&[19], &[190]);
        assert_eq!(t.stats().collisions, 1);
        assert!(!t.lookup(&[3], &mut out), "3 was evicted");
        assert!(t.lookup(&[19], &mut out));
        assert_eq!(out, vec![190]);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn same_key_rerecord_is_not_a_collision() {
        let mut t = DirectTable::new(8, 1, 1);
        t.record(&[2], &[1]);
        t.record(&[2], &[2]);
        assert_eq!(t.stats().collisions, 0);
        let mut out = Vec::new();
        assert!(t.lookup(&[2], &mut out));
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn multi_word_keys_hash_through_jenkins() {
        let mut t = DirectTable::new(1024, 64, 2);
        let key_a: Vec<u64> = (0..64).collect();
        let key_b: Vec<u64> = (1..65).collect();
        t.record(&key_a, &[7, 8]);
        let mut out = Vec::new();
        assert!(t.lookup(&key_a, &mut out));
        assert_eq!(out, vec![7, 8]);
        assert!(!t.lookup(&key_b, &mut out));
    }

    #[test]
    fn access_counts_track_slots() {
        let mut t = DirectTable::new(4, 1, 1);
        let mut out = Vec::new();
        t.record(&[1], &[1]);
        for _ in 0..5 {
            t.lookup(&[1], &mut out);
        }
        t.lookup(&[2], &mut out); // miss at slot 2
        assert_eq!(t.access_counts()[1], 5);
        assert_eq!(t.access_counts()[2], 1);
    }

    #[test]
    fn with_bytes_caps_footprint() {
        let t = DirectTable::with_bytes(512, 1, 1);
        assert!(t.bytes() <= 512);
        assert!(t.slots() >= 1);
        let tiny = DirectTable::with_bytes(1, 64, 64);
        assert_eq!(tiny.slots(), 1, "always at least one slot");
    }

    #[test]
    fn zero_output_words_supported() {
        // A segment whose only output is the return value stores no output
        // words in the table body.
        let mut t = DirectTable::new(4, 1, 0);
        t.record(&[1], &[]);
        let mut out = vec![99];
        assert!(t.lookup(&[1], &mut out));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn wrong_key_width_panics() {
        let mut t = DirectTable::new(4, 2, 1);
        let mut out = Vec::new();
        t.lookup(&[1], &mut out);
    }

    #[test]
    fn fingerprints_survive_capacity_growth() {
        let mut t = DirectTable::new(16, 1, 1);
        t.record_dep(&[1], &[10], &[0xAA]);
        // A wider fingerprint on another key grows capacity; key 1's entry
        // (including its shorter fingerprint) must survive the rebuild.
        t.record_dep(&[2], &[20], &[0xBB, 0xCC, 0xDD]);
        let mut out = Vec::new();
        let mut seen = Vec::new();
        let mut grab = |fp: &[u64]| {
            seen = fp.to_vec();
            true
        };
        assert!(t.lookup_dep(&[1], &mut out, false, Some(&mut grab)));
        assert_eq!(out, vec![10]);
        assert_eq!(seen, vec![0xAA]);
        let mut grab2 = |fp: &[u64]| {
            seen = fp.to_vec();
            true
        };
        assert!(t.lookup_dep(&[2], &mut out, false, Some(&mut grab2)));
        assert_eq!(seen, vec![0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn probe_shared_matches_locked_lookup() {
        let mut t = DirectTable::new(16, 2, 2);
        t.reserve_fp_words(2);
        t.freeze_geometry();
        t.record_dep(&[1, 2], &[10, 20], &[7, 8]);
        t.record(&[3, 4], &[30, 40]);
        let mut out = Vec::new();
        let mut fp = Vec::new();
        assert!(t.probe_shared(&[1, 2], &mut out, &mut fp));
        assert_eq!(out, vec![10, 20]);
        assert_eq!(fp, vec![7, 8]);
        assert!(t.probe_shared(&[3, 4], &mut out, &mut fp));
        assert_eq!(out, vec![30, 40]);
        assert!(fp.is_empty(), "exact-match entry has no fingerprint");
        assert!(!t.probe_shared(&[9, 9], &mut out, &mut fp));
        assert_eq!(t.stats().accesses, 0, "shared probes leave stats alone");
        assert!(t.access_counts().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds the frozen capacity")]
    fn frozen_table_rejects_undeclared_fingerprint_growth() {
        let mut t = DirectTable::new(8, 1, 1);
        t.reserve_fp_words(1);
        t.freeze_geometry();
        t.record_dep(&[1], &[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot resize a frozen table")]
    fn frozen_table_rejects_resize() {
        let mut t = DirectTable::new(8, 1, 1);
        t.freeze_geometry();
        t.resize(16);
    }

    #[test]
    fn resize_rehashes_flat_entries() {
        let mut t = DirectTable::new(4, 1, 1);
        t.record_dep(&[9], &[90], &[5]);
        t.resize(32);
        let mut out = Vec::new();
        let mut seen = Vec::new();
        let mut grab = |fp: &[u64]| {
            seen = fp.to_vec();
            true
        };
        assert!(t.lookup_dep(&[9], &mut out, false, Some(&mut grab)));
        assert_eq!(out, vec![90]);
        assert_eq!(seen, vec![5]);
        assert_eq!(t.occupancy(), 1);
    }
}
