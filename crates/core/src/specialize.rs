//! Code specialization to reduce hashing overhead (paper §2.4).
//!
//! > "Specialization makes multiple versions of a code segment. In certain
//! > versions, some input variables become invariants."
//!
//! The motivating example is G721's `quan(val, table, size)` (Fig. 4):
//! every call site passes `table = power2` (a never-modified global) and
//! `size = 15`, so a specialized `quan` with a single `val` input becomes
//! a profitable reuse candidate.
//!
//! This pass finds, for each non-recursive function, parameters whose
//! value agrees at **every** direct call site and is either an integer /
//! float literal or a never-modified global array (decayed to its base).
//! It clones the function with those parameters substituted and rewrites
//! the call sites. The original function is kept (it may still be reached
//! through function pointers).

use analysis::{Analyses, VarId};
use minic::ast::{Expr, ExprKind, FuncDef, Param, Program, UnOp};
use minic::sema::{Checked, Res};
use minic::visit::{walk_expr_mut, VisitMut};
use std::collections::{HashMap, HashSet};

/// What a specialized-away parameter is replaced with.
#[derive(Debug, Clone, PartialEq)]
enum Binding {
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A never-modified global (arrays decay; scalars read directly).
    Global(String),
}

/// Report of one specialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Specialization {
    /// Original function name.
    pub original: String,
    /// New function name.
    pub specialized: String,
    /// Names of the parameters that were bound away.
    pub bound_params: Vec<String>,
}

/// Runs the specialization pass; returns the rewritten program and a
/// report of what was specialized.
///
/// The returned program is unchecked (node ids are stale); re-run
/// [`minic::check`] before using it.
pub fn specialize(checked: &Checked, an: &Analyses) -> (Program, Vec<Specialization>) {
    let mut out = checked.program.clone();
    let mut reports = Vec::new();
    let never_modified: HashSet<VarId> = {
        let ever = an.modref.ever_modified();
        (0..checked.info.globals.len())
            .map(VarId::Global)
            .filter(|v| !ever.contains(v))
            .collect()
    };

    let n = checked.program.funcs.len();
    for target in 0..n {
        let fname = checked.program.funcs[target].name.clone();
        if fname == "main" || an.cg.is_recursive(target) || an.cg.address_taken[target] {
            continue;
        }
        let nparams = checked.program.funcs[target].params.len();
        if nparams < 2 {
            continue; // nothing to shrink meaningfully
        }

        // Gather the binding candidate of every call-site argument.
        let mut per_param: Vec<Option<Binding>> = vec![None; nparams];
        let mut consistent = vec![true; nparams];
        let mut any_site = false;
        for (ci, caller) in checked.program.funcs.iter().enumerate() {
            minic::visit::for_each_expr(&caller.body, |e| {
                if let ExprKind::Call(callee, args) = &e.kind {
                    if direct_target(checked, callee) != Some(target) {
                        return;
                    }
                    any_site = true;
                    for (i, arg) in args.iter().enumerate().take(nparams) {
                        if !consistent[i] {
                            continue;
                        }
                        match binding_of(checked, &never_modified, ci, arg) {
                            Some(b) => match &per_param[i] {
                                None => per_param[i] = Some(b),
                                Some(prev) if *prev == b => {}
                                Some(_) => consistent[i] = false,
                            },
                            None => consistent[i] = false,
                        }
                    }
                }
            });
        }
        if !any_site {
            continue;
        }
        let bindings: Vec<(usize, Binding)> = per_param
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                if consistent[i] {
                    b.clone().map(|b| (i, b))
                } else {
                    None
                }
            })
            .collect();
        if bindings.is_empty() || bindings.len() == nparams {
            // Either nothing to bind, or the function would take no
            // arguments at all (a constant — out of scope here).
            if bindings.len() == nparams {
                continue;
            }
            continue;
        }

        // Refuse if a bound global's name is shadowed inside the function.
        let func_def = &checked.program.funcs[target];
        if bindings
            .iter()
            .any(|(_, b)| matches!(b, Binding::Global(g) if name_shadowed_in(func_def, g)))
        {
            continue;
        }

        // Build the specialized clone.
        let spec_name = format!("{fname}__spec");
        if checked.info.func_index.contains_key(&spec_name) {
            continue; // name collision; skip rather than mangle further
        }
        let bound_idx: HashSet<usize> = bindings.iter().map(|&(i, _)| i).collect();
        let mut clone = func_def.clone();
        clone.name = spec_name.clone();
        let kept_params: Vec<Param> = clone
            .params
            .iter()
            .enumerate()
            .filter(|(i, _)| !bound_idx.contains(i))
            .map(|(_, p)| p.clone())
            .collect();
        let substitutions: HashMap<String, Binding> = bindings
            .iter()
            .map(|(i, b)| (clone.params[*i].name.clone(), b.clone()))
            .collect();
        clone.params = kept_params;
        let mut subst = Substituter {
            map: &substitutions,
        };
        subst.visit_block_mut(&mut clone.body);

        // Rewrite every direct call site to call the specialized clone
        // with the bound arguments dropped.
        for f in &mut out.funcs {
            rewrite_calls(checked, f, target, &spec_name, &bound_idx);
        }
        out.funcs.push(clone);
        reports.push(Specialization {
            original: fname,
            specialized: spec_name,
            bound_params: bindings
                .iter()
                .map(|(i, _)| func_def.params[*i].name.clone())
                .collect(),
        });
    }
    (out, reports)
}

fn direct_target(checked: &Checked, callee: &Expr) -> Option<usize> {
    let mut c = callee;
    while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
        c = inner;
    }
    match checked.info.res.get(&c.id) {
        Some(Res::Func(f)) => Some(*f),
        _ => None,
    }
}

/// Can this argument be bound at specialization time?
fn binding_of(
    checked: &Checked,
    never_modified: &HashSet<VarId>,
    caller: usize,
    arg: &Expr,
) -> Option<Binding> {
    match &arg.kind {
        ExprKind::IntLit(v) => Some(Binding::Int(*v)),
        ExprKind::FloatLit(v) => Some(Binding::Float(*v)),
        ExprKind::Unary(UnOp::Neg, inner) => match &inner.kind {
            ExprKind::IntLit(v) => Some(Binding::Int(-v)),
            ExprKind::FloatLit(v) => Some(Binding::Float(-v)),
            _ => None,
        },
        ExprKind::Var(name) => {
            let v = VarId::of_expr(&checked.info, caller, arg)?;
            if matches!(v, VarId::Global(_)) && never_modified.contains(&v) {
                Some(Binding::Global(name.clone()))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn name_shadowed_in(f: &FuncDef, name: &str) -> bool {
    if f.params.iter().any(|p| p.name == name) {
        return true;
    }
    let mut shadowed = false;
    minic::visit::for_each_stmt(&f.body, |s| {
        if let minic::ast::StmtKind::Decl { name: n, .. } = &s.kind {
            if n == name {
                shadowed = true;
            }
        }
    });
    shadowed
}

struct Substituter<'a> {
    map: &'a HashMap<String, Binding>,
}

impl VisitMut for Substituter<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if let ExprKind::Var(name) = &e.kind {
            if let Some(b) = self.map.get(name) {
                e.kind = match b {
                    Binding::Int(v) => ExprKind::IntLit(*v),
                    Binding::Float(v) => ExprKind::FloatLit(*v),
                    Binding::Global(g) => ExprKind::Var(g.clone()),
                };
                return;
            }
        }
        walk_expr_mut(self, e);
    }
}

fn rewrite_calls(
    checked: &Checked,
    f: &mut FuncDef,
    target: usize,
    spec_name: &str,
    bound_idx: &HashSet<usize>,
) {
    struct Rewriter<'a> {
        checked: &'a Checked,
        target: usize,
        spec_name: &'a str,
        bound_idx: &'a HashSet<usize>,
    }
    impl VisitMut for Rewriter<'_> {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            walk_expr_mut(self, e);
            if let ExprKind::Call(callee, args) = &mut e.kind {
                if direct_target(self.checked, callee) == Some(self.target) {
                    callee.kind = ExprKind::Var(self.spec_name.to_string());
                    let mut i = 0usize;
                    args.retain(|_| {
                        let keep = !self.bound_idx.contains(&i);
                        i += 1;
                        keep
                    });
                }
            }
        }
    }
    let mut rw = Rewriter {
        checked,
        target,
        spec_name,
        bound_idx,
    };
    rw.visit_block_mut(&mut f.body);
}

#[cfg(test)]
mod tests {
    use super::*;

    const G721_SHAPE: &str = "
        int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
        int quan(int val, int *table, int size) {
            int i;
            for (i = 0; i < size; i++)
                if (val < table[i])
                    break;
            return i;
        }
        int main() {
            int s = 0;
            for (int v = 0; v < 40; v++) s += quan(v * 7, power2, 15);
            s += quan(5, power2, 15);
            return s;
        }";

    fn run_spec(src: &str) -> (minic::Checked, Program, Vec<Specialization>) {
        let checked = minic::compile(src).unwrap();
        let an = Analyses::build(&checked);
        let (prog, reports) = specialize(&checked, &an);
        (checked, prog, reports)
    }

    #[test]
    fn quan_specializes_like_the_paper() {
        let (_, prog, reports) = run_spec(G721_SHAPE);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].original, "quan");
        assert_eq!(reports[0].specialized, "quan__spec");
        assert_eq!(reports[0].bound_params, vec!["table", "size"]);
        let spec = prog.func("quan__spec").expect("clone exists");
        assert_eq!(spec.params.len(), 1);
        assert_eq!(spec.params[0].name, "val");
        // Body now references power2 directly and the literal 15.
        let text = minic::pretty::print_program(&prog);
        assert!(
            text.contains("power2[i]") || text.contains("power2 + i") || text.contains("*(power2"),
            "{text}"
        );
        assert!(text.contains("i < 15"), "{text}");
        // Call sites rewritten.
        assert!(text.contains("quan__spec(v * 7)"), "{text}");
        assert!(text.contains("quan__spec(5)"), "{text}");
    }

    #[test]
    fn specialized_program_is_semantically_equal() {
        let (checked, prog, _) = run_spec(G721_SHAPE);
        let rechecked = minic::check(prog).expect("specialized program checks");
        let orig = vm::run(&vm::lower(&checked), vm::RunConfig::default()).unwrap();
        let spec = vm::run(&vm::lower(&rechecked), vm::RunConfig::default()).unwrap();
        assert_eq!(orig.ret, spec.ret);
    }

    #[test]
    fn divergent_sites_block_binding() {
        let src = "
            int t1[4]; int t2[4];
            int look(int v, int *t, int n) {
                int i;
                for (i = 0; i < n; i++) if (v < t[i]) break;
                return i;
            }
            int main() { return look(1, t1, 4) + look(2, t2, 4); }";
        let (_, prog, reports) = run_spec(src);
        // `t` differs across sites; only `n` binds.
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].bound_params, vec!["n"]);
        let spec = prog.func("look__spec").unwrap();
        assert_eq!(spec.params.len(), 2);
    }

    #[test]
    fn mutated_global_does_not_bind() {
        let src = "
            int table[4];
            int look(int v, int *t) {
                int i;
                for (i = 0; i < 4; i++) if (v < t[i]) break;
                return i;
            }
            int main() {
                table[0] = 5;
                return look(1, table) + look(2, table);
            }";
        let (_, _, reports) = run_spec(src);
        assert!(
            reports.is_empty(),
            "mutated table must not bind: {reports:?}"
        );
    }

    #[test]
    fn recursive_functions_skipped() {
        let src = "
            int f(int n, int k) { if (n == 0) return k; return f(n - 1, 7); }
            int main() { return f(3, 7); }";
        let (_, _, reports) = run_spec(src);
        assert!(reports.is_empty());
    }

    #[test]
    fn address_taken_functions_skipped() {
        let src = "
            int op(int a, int b) { return a + b; }
            int main() {
                int (*fp)(int, int);
                fp = op;
                return fp(1, 2) + op(3, 2);
            }";
        let (_, _, reports) = run_spec(src);
        assert!(reports.is_empty());
    }

    #[test]
    fn single_param_functions_untouched() {
        let src = "int sq(int x) { return x * x; } int main() { return sq(4) + sq(4); }";
        let (_, _, reports) = run_spec(src);
        assert!(reports.is_empty());
    }
}
