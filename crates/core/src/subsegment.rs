//! Sub-segment exposure — the paper's stated future work (§5):
//!
//! > "Most important of all, a candidate code segment can be a part of a
//! > loop body, a function body, or an IF branch, instead of the entire
//! > body. How to identify the most cost-effective part remains our
//! > future work."
//!
//! [`expose`] finds bodies whose whole-body segment is structurally
//! illegal (it performs I/O or its control flow escapes) and wraps the
//! *maximal contiguous ranges* of statements that are individually legal
//! into bare `{ ... }` block statements. Bare blocks enumerate as
//! [`analysis::SegKind::BareBlock`] candidates, after which the normal
//! machinery — interface analysis, profiling, formula 3, nesting — decides
//! their fate. Cost-effectiveness of the exposed part is thus answered by
//! the paper's own cost-benefit analysis rather than a new heuristic.

use analysis::Analyses;
use minic::ast::{Block, Expr, ExprKind, NodeId, Program, Stmt, StmtKind, UnOp};
use minic::sema::{Builtin, Checked, Res};

/// Runs the exposure pass; returns the rewritten program (re-check before
/// use) and the number of ranges wrapped.
pub fn expose(checked: &Checked, an: &Analyses) -> (Program, usize) {
    // Function bodies that are already legal segments need no exposure at
    // their top level (the whole body is a candidate).
    let legal_bodies: Vec<bool> = analysis::segments::enumerate(checked)
        .into_iter()
        .filter(|s| matches!(s.kind, analysis::SegKind::FuncBody))
        .map(|s| analysis::segments::check_structure(checked, &an.cg, &an.io, &s).is_ok())
        .collect();
    let mut out = checked.program.clone();
    let mut wrapped = 0usize;
    for (fi, f) in out.funcs.iter_mut().enumerate() {
        let body = std::mem::take(&mut f.body);
        let wrap_here = !legal_bodies.get(fi).copied().unwrap_or(false);
        f.body = expose_block(checked, an, fi, body, wrap_here, &mut wrapped);
    }
    (out, wrapped)
}

/// Innermost enclosing loop statement of `target` inside `body`, if any
/// (used by the pipeline to estimate a bare block's execution frequency).
pub fn enclosing_loop(body: &Block, target: NodeId) -> Option<NodeId> {
    fn search(b: &Block, target: NodeId, current: Option<NodeId>) -> Option<Option<NodeId>> {
        for s in &b.stmts {
            if s.id == target {
                return Some(current);
            }
            let hit = match &s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => search(then_blk, target, current)
                    .or_else(|| else_blk.as_ref().and_then(|eb| search(eb, target, current))),
                StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. }
                | StmtKind::For { body, .. } => search(body, target, Some(s.id)),
                StmtKind::Block(inner) => search(inner, target, current),
                StmtKind::Profile(p) => search(&p.body, target, current),
                StmtKind::Memo(m) => search(&m.body, target, current),
                _ => None,
            };
            if hit.is_some() {
                return hit;
            }
        }
        None
    }
    search(body, target, None).flatten()
}

/// Rewrites one block: recurse into compound statements, then wrap
/// eligible top-level ranges (when `wrap_here`).
fn expose_block(
    checked: &Checked,
    an: &Analyses,
    func: usize,
    b: Block,
    wrap_here: bool,
    wrapped: &mut usize,
) -> Block {
    // Recurse first so inner bodies get their own exposure.
    let stmts: Vec<Stmt> = b
        .stmts
        .into_iter()
        .map(|mut s| {
            match &mut s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    let t = std::mem::take(then_blk);
                    *then_blk = expose_block(checked, an, func, t, true, wrapped);
                    if let Some(eb) = else_blk {
                        let e = std::mem::take(eb);
                        *eb = expose_block(checked, an, func, e, true, wrapped);
                    }
                }
                StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. }
                | StmtKind::For { body, .. } => {
                    let inner = std::mem::take(body);
                    *body = expose_block(checked, an, func, inner, true, wrapped);
                }
                StmtKind::Block(inner) => {
                    let i = std::mem::take(inner);
                    *inner = expose_block(checked, an, func, i, true, wrapped);
                }
                _ => {}
            }
            s
        })
        .collect();

    // Does this statement sequence contain anything illegal for a segment?
    // If not, the enclosing body is (or will be) a candidate itself and
    // wrapping ranges would only create redundant nesting.
    let illegal: Vec<bool> = stmts
        .iter()
        .map(|s| stmt_illegal(checked, an, func, s))
        .collect();
    if !wrap_here || !illegal.iter().any(|&x| x) {
        return Block::new(stmts);
    }

    // Range barriers beyond illegality:
    // - top-level declarations (wrapping one would end its scope early —
    //   and accumulator initializers like `int acc = 0;` make better
    //   *constant inputs* when left outside);
    // - self-referential accumulator updates (`s = s + ...`, `s += ...`,
    //   `s++`): including one keys the range on an ever-changing value,
    //   destroying the reuse rate.
    let barrier: Vec<bool> = stmts
        .iter()
        .zip(&illegal)
        .map(|(s, &bad)| bad || is_decl(s) || is_accumulator_update(s))
        .collect();

    // Wrap maximal barrier-free ranges that look worth memoizing.
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut run: Vec<Stmt> = Vec::new();
    for (s, bad) in stmts.into_iter().zip(barrier) {
        if bad {
            flush(&mut run, &mut out, wrapped);
            out.push(s);
        } else {
            run.push(s);
        }
    }
    flush(&mut run, &mut out, wrapped);
    Block::new(out)
}

fn is_decl(s: &Stmt) -> bool {
    matches!(s.kind, StmtKind::Decl { .. })
}

/// `v = …v…`, `v op= …`, `v++`/`v--` at statement level.
fn is_accumulator_update(s: &Stmt) -> bool {
    let StmtKind::Expr(e) = &s.kind else {
        return false;
    };
    match &e.kind {
        ExprKind::AssignOp(_, l, _) | ExprKind::IncDec(_, l) => l.as_var().is_some(),
        ExprKind::Assign(l, r) => {
            let Some(name) = l.as_var() else {
                return false;
            };
            let mut self_ref = false;
            walk_expr_names(r, &mut |n| {
                if n == name {
                    self_ref = true;
                }
            });
            self_ref
        }
        _ => false,
    }
}

fn walk_expr_names(e: &Expr, f: &mut impl FnMut(&str)) {
    if let Some(n) = e.as_var() {
        f(n);
    }
    match &e.kind {
        ExprKind::Unary(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => {
            walk_expr_names(a, f)
        }
        ExprKind::Binary(_, a, b)
        | ExprKind::Assign(a, b)
        | ExprKind::AssignOp(_, a, b)
        | ExprKind::Index(a, b) => {
            walk_expr_names(a, f);
            walk_expr_names(b, f);
        }
        ExprKind::Ternary(c, t, fl) => {
            walk_expr_names(c, f);
            walk_expr_names(t, f);
            walk_expr_names(fl, f);
        }
        ExprKind::Call(c, args) => {
            walk_expr_names(c, f);
            for a in args {
                walk_expr_names(a, f);
            }
        }
        ExprKind::Member(a, _) | ExprKind::Arrow(a, _) => walk_expr_names(a, f),
        _ => {}
    }
}

/// Emits a pending legal range, wrapping it when it is substantial.
fn flush(run: &mut Vec<Stmt>, out: &mut Vec<Stmt>, wrapped: &mut usize) {
    if run.is_empty() {
        return;
    }
    let range = std::mem::take(run);
    if worth_wrapping(&range) {
        *wrapped += 1;
        out.push(Stmt::synth(StmtKind::Block(Block::new(range))));
    } else {
        out.extend(range);
    }
}

/// A range is worth exposing if it contains a loop or a call — otherwise
/// its granularity cannot beat a table probe.
fn worth_wrapping(range: &[Stmt]) -> bool {
    let mut has_work = false;
    for s in range {
        minic::visit::for_each_stmt(&Block::new(vec![s.clone()]), |st| {
            if matches!(
                st.kind,
                StmtKind::While { .. } | StmtKind::DoWhile { .. } | StmtKind::For { .. }
            ) {
                has_work = true;
            }
        });
        minic::visit::for_each_expr(&Block::new(vec![s.clone()]), |e| {
            if matches!(e.kind, ExprKind::Call(..)) {
                has_work = true;
            }
        });
        if has_work {
            break;
        }
    }
    has_work
}

/// Whether a single statement disqualifies any segment containing it at
/// this nesting level: direct escape (`break`/`continue`/`return` at range
/// level) or I/O anywhere inside.
fn stmt_illegal(checked: &Checked, an: &Analyses, func: usize, s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Break | StmtKind::Continue | StmtKind::Return(_) => true,
        _ => {
            let mut io = false;
            minic::visit::for_each_stmt(&Block::new(vec![s.clone()]), |st| {
                // Escapes inside nested loops are fine (handled by the
                // structural screen later); only direct-level ones matter,
                // and those are caught by the arm above on the top call.
                let _ = st;
            });
            minic::visit::for_each_expr(&Block::new(vec![s.clone()]), |e| {
                if let ExprKind::Call(callee, _) = &e.kind {
                    if call_is_io(checked, an, func, callee) {
                        io = true;
                    }
                }
            });
            // A return/break/continue nested *directly* in an if-branch of
            // this statement still escapes the range; detect any such
            // statement not enclosed by a loop within `s`.
            io || has_shallow_escape(s)
        }
    }
}

fn call_is_io(checked: &Checked, an: &Analyses, _func: usize, callee: &Expr) -> bool {
    let mut c = callee;
    while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
        c = inner;
    }
    match checked.info.res.get(&c.id) {
        Some(Res::Builtin(Builtin::Print | Builtin::Input | Builtin::Eof | Builtin::Assert)) => {
            true
        }
        Some(Res::Func(f)) => an.io[*f],
        _ => an.io.iter().any(|&b| b), // indirect: conservative
    }
}

/// Whether `s` contains a break/continue/return not enclosed by a loop
/// inside `s` itself (so it would escape a range wrapping `s`).
fn has_shallow_escape(s: &Stmt) -> bool {
    fn block_escapes(b: &Block, depth: usize) -> bool {
        b.stmts.iter().any(|s| stmt_escapes(s, depth))
    }
    fn stmt_escapes(s: &Stmt, depth: usize) -> bool {
        match &s.kind {
            StmtKind::Break | StmtKind::Continue => depth == 0,
            StmtKind::Return(_) => true,
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                block_escapes(then_blk, depth)
                    || else_blk.as_ref().is_some_and(|b| block_escapes(b, depth))
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => block_escapes(body, depth + 1),
            StmtKind::Block(b) => block_escapes(b, depth),
            StmtKind::Profile(p) => block_escapes(&p.body, depth),
            StmtKind::Memo(m) => block_escapes(&m.body, depth),
            _ => false,
        }
    }
    match &s.kind {
        // The statement itself at range level was handled by the caller.
        StmtKind::If {
            then_blk, else_blk, ..
        } => block_escapes(then_blk, 0) || else_blk.as_ref().is_some_and(|b| block_escapes(b, 0)),
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => block_escapes(body, 1),
        StmtKind::Block(b) => block_escapes(b, 0),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pipeline, PipelineConfig};
    use vm::RunConfig;

    /// UNEPIC-before-refactoring shape: the loop body itself does I/O, so
    /// without sub-segments nothing is transformable; with them, the heavy
    /// middle becomes a candidate and wins.
    const IO_LOOP: &str = "
        int total = 0;
        int main() {
            while (!eof()) {
                int c = input() % 50;
                int acc = 0;
                for (int t = 0; t < 40; t++) {
                    acc = (acc + (c + t) * (t | 3)) & 1048575;
                }
                total = (total + acc) & 1048575;
            }
            print(total);
            return 0;
        }";

    fn pipeline(src: &str, subsegments: bool, input: Vec<i64>) -> crate::ReuseOutcome {
        let program = minic::parse(src).unwrap();
        run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input,
                enable_subsegments: subsegments,
                ..PipelineConfig::default()
            },
        )
        .unwrap()
    }

    fn io_loop_input() -> Vec<i64> {
        (0..5000).map(|i| i % 50).collect()
    }

    #[test]
    fn without_subsegments_nothing_transforms() {
        let outcome = pipeline(IO_LOOP, false, io_loop_input());
        assert_eq!(
            outcome.report.transformed, 0,
            "{:?}",
            outcome.report.decisions
        );
    }

    #[test]
    fn subsegments_expose_the_heavy_middle() {
        let input = io_loop_input();
        let outcome = pipeline(IO_LOOP, true, input.clone());
        assert!(
            outcome.report.transformed >= 1,
            "decisions: {:?} rejects: {:?}",
            outcome.report.decisions,
            outcome.report.rejects
        );
        let block_dec = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name.contains("block#") && d.chosen)
            .expect("a bare-block segment was chosen");
        assert!(block_dec.reuse_rate > 0.9, "{block_dec:?}");

        // And it must win at run time with identical output.
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .unwrap();
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.output_text(), memo.output_text());
        assert!(
            memo.cycles < base.cycles,
            "{} vs {}",
            memo.cycles,
            base.cycles
        );
    }

    #[test]
    fn ranges_with_escapes_are_not_wrapped() {
        let src = "
            int total = 0;
            int main() {
                while (!eof()) {
                    int c = input() % 10;
                    int acc = 0;
                    for (int t = 0; t < 30; t++) acc += c * t;
                    if (acc > 100000) break;
                    total = (total + acc) & 65535;
                }
                print(total);
                return 0;
            }";
        let input: Vec<i64> = (0..4000).map(|i| i % 10).collect();
        let outcome = pipeline(src, true, input.clone());
        // The `if (...) break;` statement cannot join a range, but the
        // heavy for-loop before it can still be wrapped; whatever the
        // decision, semantics hold.
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .unwrap();
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.output_text(), memo.output_text());
    }

    #[test]
    fn trivial_ranges_are_left_alone() {
        // A body with I/O but only trivial other statements: no wrapping.
        let src = "
            int main() {
                int s = 0;
                while (!eof()) {
                    int v = input();
                    s = s + v;
                    s = s & 65535;
                }
                print(s);
                return 0;
            }";
        let checked = minic::compile(src).unwrap();
        let an = Analyses::build(&checked);
        let (_, wrapped) = expose(&checked, &an);
        assert_eq!(wrapped, 0, "straight-line arithmetic is not worth a block");
    }

    #[test]
    fn enclosing_loop_finds_innermost() {
        let src = "
            int main() {
                int s = 0;
                for (int i = 0; i < 3; i++) {
                    while (s < 100) {
                        { s += i; }
                    }
                }
                return s;
            }";
        let checked = minic::compile(src).unwrap();
        let f = &checked.program.funcs[0];
        // Find the bare block's id and the while's id.
        let mut block_id = None;
        let mut while_id = None;
        minic::visit::for_each_stmt(&f.body, |s| match &s.kind {
            StmtKind::Block(_) => block_id = Some(s.id),
            StmtKind::While { .. } => while_id = Some(s.id),
            _ => {}
        });
        assert_eq!(
            enclosing_loop(&f.body, block_id.unwrap()),
            while_id,
            "innermost loop is the while"
        );
    }

    #[test]
    fn legal_bodies_are_untouched() {
        // No I/O anywhere: the pass must not wrap anything (whole bodies
        // are already candidates).
        let src = "
            int heavy(int x) {
                int acc = 0;
                for (int t = 0; t < 30; t++) acc += x * t;
                return acc;
            }
            int main() {
                int s = 0;
                for (int i = 0; i < 100; i++) s = (s + heavy(i % 5)) & 65535;
                print(s);
                return 0;
            }";
        let checked = minic::compile(src).unwrap();
        let an = Analyses::build(&checked);
        let (_, wrapped) = expose(&checked, &an);
        // main's body has print() at top level → its loop is a legal range
        // candidate... but the loop body itself is already a segment; the
        // loop *statement* is wrapped only if the sequence containing it
        // is otherwise illegal. heavy() is fully legal → untouched; main
        // may wrap its for-loop. Either way the count is small and the
        // heavy function is not wrapped.
        assert!(wrapped <= 1, "only main's range may wrap, got {wrapped}");
    }

    #[test]
    fn varying_subsegment_is_not_chosen() {
        // The exposed block's inputs include the loop induction variable →
        // zero reuse → formula 3 rejects it.
        let src = "
            int total = 0;
            int main() {
                int tick = 0;
                while (!eof()) {
                    int c = input() % 50;
                    tick = tick + 1;
                    int acc = 0;
                    for (int t = 0; t < 40; t++) {
                        acc = (acc + (c + tick + t) * 3) & 1048575;
                    }
                    total = (total + acc) & 1048575;
                }
                print(total);
                return 0;
            }";
        let input: Vec<i64> = (0..4000).map(|i| i % 50).collect();
        let outcome = pipeline(src, true, input);
        let chosen_blocks = outcome
            .report
            .decisions
            .iter()
            .filter(|d| d.name.contains("block#") && d.chosen)
            .count();
        assert_eq!(chosen_blocks, 0, "{:?}", outcome.report.decisions);
    }
}
