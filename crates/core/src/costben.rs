//! Cost-benefit analysis (paper §2.2, formulas 1–4).
//!
//! For a segment with computation granularity `C`, hashing overhead `O`,
//! and reuse rate `R`:
//!
//! - new cost with reuse: `(C+O)(1−R) + O·R`    (formula 1)
//! - gain: `C − [(C+O)(1−R) + O·R] ≡ R·C − O`   (formula 2)
//! - transform iff `R·C − O > 0`, i.e. `R > O/C` (formula 3)
//!
//! For nested segments (§2.3), with outer gain `g1`, inner gain `g2`, and
//! `n` inner instances per outer instance: reuse the inner segment iff
//! `g1 − n·g2 < 0` (formula 4).

/// The three measured quantities driving the decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBenefit {
    /// Computation granularity `C` in cycles per execution.
    pub granularity: f64,
    /// Hashing overhead `O` in cycles per table probe.
    pub overhead: f64,
    /// Reuse rate `R ∈ [0, 1]` (collision-deducted).
    pub reuse_rate: f64,
}

impl CostBenefit {
    /// Creates a cost-benefit record.
    ///
    /// # Panics
    ///
    /// Panics if `reuse_rate` is outside `[0, 1]` or the costs are
    /// negative/non-finite.
    pub fn new(granularity: f64, overhead: f64, reuse_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&reuse_rate),
            "reuse rate {reuse_rate} outside [0, 1]"
        );
        assert!(
            granularity >= 0.0 && granularity.is_finite(),
            "bad granularity {granularity}"
        );
        assert!(
            overhead >= 0.0 && overhead.is_finite(),
            "bad overhead {overhead}"
        );
        CostBenefit {
            granularity,
            overhead,
            reuse_rate,
        }
    }

    /// Expected cost per execution *with* computation reuse (formula 1):
    /// `(C+O)(1−R) + O·R`.
    pub fn cost_with_reuse(&self) -> f64 {
        (self.granularity + self.overhead) * (1.0 - self.reuse_rate)
            + self.overhead * self.reuse_rate
    }

    /// Expected gain per execution (formula 2): `R·C − O`.
    pub fn gain(&self) -> f64 {
        self.reuse_rate * self.granularity - self.overhead
    }

    /// The transformation decision (formula 3): `R·C − O > 0`.
    pub fn profitable(&self) -> bool {
        self.gain() > 0.0
    }

    /// The pre-profiling screen: `O/C < 1` (a segment with `O ≥ C` can
    /// never profit because `R ≤ 1`).
    pub fn feasible(&self) -> bool {
        self.granularity > 0.0 && self.overhead / self.granularity < 1.0
    }
}

/// Formula 4: `true` when the *inner* segment should be reused instead of
/// the outer one (`g1 − n·g2 < 0`).
pub fn prefer_inner(outer_gain: f64, n: f64, inner_gain: f64) -> bool {
    outer_gain - n * inner_gain < 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_identity_holds() {
        // C − [(C+O)(1−R) + O·R] must equal R·C − O for any values.
        for &(c, o, r) in &[
            (100.0, 10.0, 0.9),
            (13859.0, 49.4, 0.098),
            (1.28, 0.12, 0.994),
            (29.45, 0.61, 0.651),
        ] {
            let cb = CostBenefit::new(c, o, r);
            let lhs = c - cb.cost_with_reuse();
            assert!(
                (lhs - cb.gain()).abs() < 1e-9,
                "identity broken at C={c} O={o} R={r}"
            );
        }
    }

    #[test]
    fn paper_table3_rows_are_profitable() {
        // Table 3 values (converted: C and O in the same unit) — all seven
        // programs' chosen segments satisfy formula 3.
        let rows = [
            (1.28, 0.12, 0.994),    // G721_encode
            (1.38, 0.15, 0.997),    // G721_decode
            (13859.0, 49.4, 0.098), // MPEG2_encode
            (12029.0, 52.7, 0.486), // MPEG2_decode
            (333.7, 59.5, 0.996),   // RASTA
            (29.45, 0.61, 0.651),   // UNEPIC
            (26.3, 2.14, 0.982),    // GNUGO
        ];
        for (c, o, r) in rows {
            let cb = CostBenefit::new(c, o, r);
            assert!(cb.profitable(), "C={c} O={o} R={r} should be profitable");
            assert!(cb.feasible());
        }
    }

    #[test]
    fn break_even_is_r_equals_o_over_c() {
        let c = 100.0;
        let o = 25.0;
        let below = CostBenefit::new(c, o, 0.2499);
        let above = CostBenefit::new(c, o, 0.2501);
        assert!(!below.profitable());
        assert!(above.profitable());
    }

    #[test]
    fn infeasible_when_overhead_dominates() {
        let cb = CostBenefit::new(10.0, 15.0, 1.0);
        assert!(!cb.feasible());
        assert!(!cb.profitable(), "even at R=1, O>C loses");
    }

    #[test]
    fn prefer_inner_matches_formula4() {
        // Outer gains 50 per execution; inner gains 2 but runs 30 times
        // per outer execution → inner wins.
        assert!(prefer_inner(50.0, 30.0, 2.0));
        // Inner runs 10 times → outer wins.
        assert!(!prefer_inner(50.0, 10.0, 2.0));
        // Tie goes to the outer segment (strict <).
        assert!(!prefer_inner(20.0, 10.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_rate_panics() {
        CostBenefit::new(1.0, 1.0, 1.5);
    }
}
