//! Program transformation: inserting profiling probes and memoized
//! segments (the paper's "code generation for computation reuse",
//! Fig. 2(b), as a source-to-source rewrite on the AST).
//!
//! Segments are addressed by their pre-transformation statement ids
//! (`SegKind::LoopBody(id)` / `IfBranch(id, _)`), so all insertions are
//! applied to a clone of the *same* checked AST before a single re-check
//! renumbers everything.

use analysis::{SegKind, Segment};
use minic::ast::{
    Block, MemoDep, MemoOperand, MemoStmt, NodeId, ProfileStmt, Program, ScalarKind, Stmt, StmtKind,
};

/// A profiling-probe request: wrap `segment` and record `inputs`.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// The segment to wrap.
    pub func: usize,
    /// Which part of the function.
    pub kind: SegKind,
    /// Probe name (for reports).
    pub name: String,
    /// Dense segment index in the profiling plan.
    pub seg_index: usize,
    /// Input operands to record.
    pub inputs: Vec<MemoOperand>,
}

impl ProbeSpec {
    /// Builds a probe spec from a segment and its inputs.
    pub fn for_segment(seg: &Segment, seg_index: usize, inputs: Vec<MemoOperand>) -> Self {
        ProbeSpec {
            func: seg.func,
            kind: seg.kind,
            name: seg.name.clone(),
            seg_index,
            inputs,
        }
    }
}

/// A memoization request for one segment.
#[derive(Debug, Clone)]
pub struct MemoSpec {
    /// The segment to wrap.
    pub func: usize,
    /// Which part of the function.
    pub kind: SegKind,
    /// Segment name (for reports and pretty-printing).
    pub name: String,
    /// Runtime table id (shared by merged segments).
    pub table: usize,
    /// Output slot within the (possibly merged) table.
    pub slot: usize,
    /// Key operands.
    pub inputs: Vec<MemoOperand>,
    /// Output operands.
    pub outputs: Vec<MemoOperand>,
    /// Validated dependency regions (fingerprinted, not hashed).
    pub deps: Vec<MemoDep>,
    /// Memoized return kind for function-body segments.
    pub ret: Option<ScalarKind>,
}

/// Inserts profiling probes into a clone of `program`.
///
/// # Panics
///
/// Panics if a probe's segment cannot be located (stale ids).
pub fn insert_probes(program: &Program, probes: &[ProbeSpec]) -> Program {
    let mut out = program.clone();
    for p in probes {
        let f = &mut out.funcs[p.func];
        let wrap = |body: Block| -> Block {
            Block::new(vec![Stmt::synth(StmtKind::Profile(ProfileStmt {
                segment: p.name.clone(),
                seg_index: p.seg_index,
                inputs: p.inputs.clone(),
                body,
            }))])
        };
        apply_wrap(&mut f.body, &p.kind, &wrap, &p.name);
    }
    out
}

/// Inserts memoized segments into a clone of `program`.
///
/// # Panics
///
/// Panics if a spec's segment cannot be located (stale ids).
pub fn insert_memos(program: &Program, memos: &[MemoSpec]) -> Program {
    let mut out = program.clone();
    for m in memos {
        let f = &mut out.funcs[m.func];
        let wrap = |body: Block| -> Block {
            Block::new(vec![Stmt::synth(StmtKind::Memo(MemoStmt {
                segment: m.name.clone(),
                table: m.table,
                slot: m.slot,
                inputs: m.inputs.clone(),
                outputs: m.outputs.clone(),
                deps: m.deps.clone(),
                ret: m.ret,
                body,
            }))])
        };
        apply_wrap(&mut f.body, &m.kind, &wrap, &m.name);
    }
    out
}

/// Replaces the segment's body block with `wrap(body)`.
fn apply_wrap(func_body: &mut Block, kind: &SegKind, wrap: &dyn Fn(Block) -> Block, name: &str) {
    match kind {
        SegKind::FuncBody => {
            let body = std::mem::take(func_body);
            *func_body = wrap(body);
        }
        SegKind::LoopBody(id) => {
            let found = wrap_in_block(func_body, *id, &mut |s| match &mut s.kind {
                StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. }
                | StmtKind::For { body, .. } => {
                    let b = std::mem::take(body);
                    *body = wrap(b);
                    true
                }
                _ => false,
            });
            assert!(found, "segment {name}: loop {id} not found");
        }
        SegKind::IfBranch(id, then) => {
            let then = *then;
            let found = wrap_in_block(func_body, *id, &mut |s| match &mut s.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    if then {
                        let b = std::mem::take(then_blk);
                        *then_blk = wrap(b);
                    } else if let Some(eb) = else_blk {
                        let b = std::mem::take(eb);
                        *eb = wrap(b);
                    } else {
                        return false;
                    }
                    true
                }
                _ => false,
            });
            assert!(found, "segment {name}: if-branch {id} not found");
        }
        SegKind::BareBlock(id) => {
            let found = wrap_in_block(func_body, *id, &mut |s| match &mut s.kind {
                StmtKind::Block(b) => {
                    let inner = std::mem::take(b);
                    *b = wrap(inner);
                    true
                }
                _ => false,
            });
            assert!(found, "segment {name}: bare block {id} not found");
        }
    }
}

/// Finds the statement with `id` anywhere under `block` and applies `f`.
fn wrap_in_block(block: &mut Block, id: NodeId, f: &mut impl FnMut(&mut Stmt) -> bool) -> bool {
    for s in &mut block.stmts {
        if s.id == id && f(s) {
            return true;
        }
        let hit = match &mut s.kind {
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                wrap_in_block(then_blk, id, f)
                    || else_blk.as_mut().is_some_and(|b| wrap_in_block(b, id, f))
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => wrap_in_block(body, id, f),
            StmtKind::Block(b) => wrap_in_block(b, id, f),
            StmtKind::Profile(p) => wrap_in_block(&mut p.body, id, f),
            StmtKind::Memo(m) => wrap_in_block(&mut m.body, id, f),
            _ => false,
        };
        if hit {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::segments;
    use minic::ast::OperandShape;

    const SRC: &str = "
        int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
        int quan(int val) {
            int i;
            for (i = 0; i < 15; i++)
                if (val < power2[i])
                    break;
            return i;
        }
        int main() {
            int s = 0;
            for (int v = 0; v < 50; v++) s += quan(v % 10 * 30);
            return s;
        }";

    fn val_operand() -> MemoOperand {
        MemoOperand {
            name: "val".into(),
            shape: OperandShape::Scalar,
            elem: ScalarKind::Int,
        }
    }

    #[test]
    fn probe_insertion_preserves_semantics() {
        let checked = minic::compile(SRC).unwrap();
        let segs = segments::enumerate(&checked);
        let quan_body = segs.iter().find(|s| s.name == "quan:body").unwrap();
        let probe = ProbeSpec::for_segment(quan_body, 0, vec![val_operand()]);
        let instrumented = insert_probes(&checked.program, &[probe]);
        let rechecked = minic::check(instrumented).expect("instrumented program checks");
        let module = vm::lower(&rechecked);

        let orig = vm::run(&vm::lower(&checked), vm::RunConfig::default()).unwrap();
        let inst = vm::run(&module, vm::RunConfig::default()).unwrap();
        assert_eq!(orig.ret, inst.ret);
        let profile = inst.profile.expect("profile collected");
        assert_eq!(profile.segs[0].n, 50);
        assert!(profile.segs[0].dip() <= 50);
    }

    #[test]
    fn memo_insertion_preserves_semantics() {
        let checked = minic::compile(SRC).unwrap();
        let segs = segments::enumerate(&checked);
        let quan_body = segs.iter().find(|s| s.name == "quan:body").unwrap();
        let memo = MemoSpec {
            func: quan_body.func,
            kind: quan_body.kind,
            name: quan_body.name.clone(),
            table: 0,
            slot: 0,
            inputs: vec![val_operand()],
            outputs: vec![],
            deps: vec![],
            ret: Some(ScalarKind::Int),
        };
        let transformed = insert_memos(&checked.program, &[memo]);
        let rechecked = minic::check(transformed).expect("transformed program checks");
        let module = vm::lower(&rechecked);
        let cfg = vm::RunConfig {
            tables: vec![
                memo_runtime::MemoTable::try_direct(&memo_runtime::TableSpec {
                    slots: 1024,
                    key_words: 1,
                    out_words: vec![1],
                })
                .expect("valid spec"),
            ],
            ..vm::RunConfig::default()
        };
        let orig = vm::run(&vm::lower(&checked), vm::RunConfig::default()).unwrap();
        let memo_run = vm::run(&module, cfg).unwrap();
        assert_eq!(orig.ret, memo_run.ret);
        assert!(memo_run.tables[0].stats().hits > 0);
    }

    #[test]
    fn loop_body_wrap_finds_nested_loop() {
        let src = "int main() {
            int acc = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) {
                    acc += i * j;
                }
            }
            return acc;
        }";
        let checked = minic::compile(src).unwrap();
        let segs = segments::enumerate(&checked);
        // The inner loop is the second LoopBody.
        let inner = segs
            .iter()
            .filter(|s| matches!(s.kind, SegKind::LoopBody(_)))
            .nth(1)
            .unwrap();
        let probe = ProbeSpec::for_segment(
            inner,
            0,
            vec![
                MemoOperand::scalar("i", ScalarKind::Int),
                MemoOperand::scalar("j", ScalarKind::Int),
            ],
        );
        let instrumented = insert_probes(&checked.program, &[probe]);
        let rechecked = minic::check(instrumented).expect("checks");
        let out = vm::run(&vm::lower(&rechecked), vm::RunConfig::default()).unwrap();
        assert_eq!(out.ret, 18);
        assert_eq!(out.profile.unwrap().segs[0].n, 12);
    }

    #[test]
    fn nested_probes_count_within() {
        // Probe both quan's body and main's loop body; quan executions
        // must be attributed to the loop probe.
        let checked = minic::compile(SRC).unwrap();
        let segs = segments::enumerate(&checked);
        let quan_body = segs.iter().find(|s| s.name == "quan:body").unwrap();
        let main_loop = segs
            .iter()
            .find(|s| matches!(s.kind, SegKind::LoopBody(_)) && s.name.starts_with("main"))
            .unwrap();
        let probes = vec![
            ProbeSpec::for_segment(
                main_loop,
                0,
                vec![MemoOperand::scalar("v", ScalarKind::Int)],
            ),
            ProbeSpec::for_segment(quan_body, 1, vec![val_operand()]),
        ];
        let instrumented = insert_probes(&checked.program, &probes);
        let rechecked = minic::check(instrumented).expect("checks");
        let out = vm::run(&vm::lower(&rechecked), vm::RunConfig::default()).unwrap();
        let profile = out.profile.unwrap();
        assert_eq!(profile.segs[1].within.get(&0), Some(&50));
        assert!((profile.nesting_factor(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn stale_segment_id_panics() {
        let checked = minic::compile(SRC).unwrap();
        let probe = ProbeSpec {
            func: 0,
            kind: SegKind::LoopBody(NodeId(9999)),
            name: "ghost".into(),
            seg_index: 0,
            inputs: vec![],
        };
        insert_probes(&checked.program, &[probe]);
    }
}
