//! The paper's "clean-up" module (§3.1):
//!
//! > "The clean-up module is implemented to ease our subsequent analyses.
//! > For example, each function call in a complex expression is split from
//! > the expression in order to simplify the interprocedural analysis."
//!
//! [`cleanup`] hoists calls nested inside larger expressions into fresh
//! temporaries declared just before the statement:
//!
//! ```text
//! x = f(a) + g(b) * 2;   ⇒   int __cse0 = f(a);
//!                            int __cse1 = g(b);
//!                            x = __cse0 + __cse1 * 2;
//! ```
//!
//! Hoisting must preserve the evaluation order of side effects, so a call
//! is only lifted when everything evaluated before it (in the VM's strict
//! left-to-right order) is side-effect-free, and never out of a
//! conditionally-evaluated position (`&&`/`||` right operands, ternary
//! branches, loop conditions and steps).

use minic::ast::{Block, Expr, ExprKind, Stmt, StmtKind, Type, UnOp};
use minic::sema::{Checked, Res};
use minic::span::Span;

/// Runs the clean-up pass; returns the rewritten program (unchecked —
/// re-run [`minic::check`]) and the number of calls that were split out.
pub fn cleanup(checked: &Checked) -> (minic::Program, usize) {
    let mut out = checked.program.clone();
    let mut cl = Cleaner {
        checked,
        counter: 0,
        splits: 0,
    };
    for f in &mut out.funcs {
        let body = std::mem::take(&mut f.body);
        f.body = cl.block(body);
    }
    (out, cl.splits)
}

struct Cleaner<'c> {
    checked: &'c Checked,
    counter: usize,
    splits: usize,
}

impl<'c> Cleaner<'c> {
    fn fresh_name(&mut self) -> String {
        let n = self.counter;
        self.counter += 1;
        format!("__cse{n}")
    }

    fn block(&mut self, b: Block) -> Block {
        let mut stmts = Vec::with_capacity(b.stmts.len());
        for s in b.stmts {
            self.stmt(s, &mut stmts);
        }
        Block::new(stmts)
    }

    /// Rewrites one statement, pushing hoisted temporaries first.
    fn stmt(&mut self, mut s: Stmt, out: &mut Vec<Stmt>) {
        match &mut s.kind {
            StmtKind::Expr(e) => {
                self.drain_hoists(e, /* keep_root */ true, out);
            }
            StmtKind::Decl { init: Some(e), .. } => {
                self.drain_hoists(e, true, out);
            }
            StmtKind::Return(Some(e)) => {
                self.drain_hoists(e, true, out);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                // The condition is evaluated exactly once: hoistable.
                self.drain_hoists(cond, true, out);
                let t = std::mem::take(then_blk);
                *then_blk = self.block(t);
                if let Some(eb) = else_blk {
                    let e = std::mem::take(eb);
                    *eb = self.block(e);
                }
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                // Conditions re-evaluate each iteration: leave them.
                let b = std::mem::take(body);
                *body = self.block(b);
            }
            StmtKind::For { init, body, .. } => {
                if let Some(init_stmt) = init.take() {
                    // The init runs once; split it like a normal statement,
                    // folding any extra temporaries before the loop.
                    let mut pre = Vec::new();
                    self.stmt(*init_stmt, &mut pre);
                    let rebuilt = pre.pop();
                    out.extend(pre);
                    *init = rebuilt.map(Box::new);
                }
                let b = std::mem::take(body);
                *body = self.block(b);
            }
            StmtKind::Block(b) => {
                let inner = std::mem::take(b);
                *b = self.block(inner);
            }
            StmtKind::Profile(p) => {
                let b = std::mem::take(&mut p.body);
                p.body = self.block(b);
            }
            StmtKind::Memo(m) => {
                let b = std::mem::take(&mut m.body);
                m.body = self.block(b);
            }
            _ => {}
        }
        out.push(s);
    }

    /// Repeatedly hoists the leftmost liftable call out of `e` until none
    /// remain, emitting `int/float __cseN = <call>;` declarations.
    fn drain_hoists(&mut self, e: &mut Expr, keep_root: bool, out: &mut Vec<Stmt>) {
        loop {
            let mut pure = true;
            let Some((call, ty, name)) = self.hoist_one(e, keep_root, &mut pure) else {
                break;
            };
            self.splits += 1;
            out.push(Stmt::new(
                StmtKind::Decl {
                    name,
                    ty,
                    init: Some(call),
                },
                Span::DUMMY,
            ));
        }
    }

    /// Finds the leftmost call in evaluation order that may be hoisted;
    /// replaces it in place with a temp read and returns (call, type, temp
    /// name). `pure` tracks whether everything evaluated so far is free of
    /// side effects.
    fn hoist_one(
        &mut self,
        e: &mut Expr,
        is_root: bool,
        pure: &mut bool,
    ) -> Option<(Expr, Type, String)> {
        let node_id = e.id;
        match &mut e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => None,
            ExprKind::Unary(_, a)
            | ExprKind::Cast(_, a)
            | ExprKind::Member(a, _)
            | ExprKind::Arrow(a, _) => self.hoist_one(a, false, pure),
            ExprKind::Binary(op, a, b) => {
                if matches!(op, minic::ast::BinOp::LogAnd | minic::ast::BinOp::LogOr) {
                    // Short-circuit: only the left operand is unconditional.
                    self.hoist_one(a, false, pure)
                } else {
                    self.hoist_one(a, false, pure)
                        .or_else(|| self.hoist_one(b, false, pure))
                }
            }
            ExprKind::Index(a, b) => self
                .hoist_one(a, false, pure)
                .or_else(|| self.hoist_one(b, false, pure)),
            ExprKind::Ternary(c, _, _) => {
                // Branches are conditional: only the condition is eligible.
                self.hoist_one(c, false, pure)
            }
            ExprKind::Assign(l, r) | ExprKind::AssignOp(_, l, r) => {
                let hit = self
                    .hoist_one(l, false, pure)
                    .or_else(|| self.hoist_one(r, false, pure));
                // The store is a side effect for anything evaluated later.
                *pure = false;
                hit
            }
            ExprKind::IncDec(_, a) => {
                let hit = self.hoist_one(a, false, pure);
                *pure = false;
                hit
            }
            ExprKind::Call(callee, args) => {
                // First look inside the arguments (they evaluate before
                // the call completes).
                for a in args.iter_mut() {
                    if let Some(hit) = self.hoist_one(a, false, pure) {
                        return Some(hit);
                    }
                }
                if is_root || !*pure {
                    // Already statement-level, or moving it would reorder
                    // side effects. The call itself is a side effect for
                    // whatever follows.
                    *pure = false;
                    return None;
                }
                // Void and non-arithmetic calls stay put (a void call can
                // only legally be a statement root anyway).
                let ty = match self.checked.info.expr_types.get(&node_id) {
                    Some(Type::Int) => Type::Int,
                    Some(Type::Float) => Type::Float,
                    _ => {
                        *pure = false;
                        return None;
                    }
                };
                // Builtins have effects of their own but assigning them to
                // a temp first is still order-preserving; however `print`
                // and `assert` are void (excluded above), and moving
                // `input()` is safe under the purity prefix. Keep them.
                let _ = (&callee,);
                let name = self.fresh_name();
                let call = std::mem::replace(e, Expr::synth(ExprKind::Var(name.clone())));
                Some((call, ty, name))
            }
        }
    }
}

/// Counts calls that remain nested inside larger, unconditionally
/// evaluated expressions (diagnostic used by tests).
pub fn nested_call_count(checked: &Checked) -> usize {
    let mut count = 0;
    for f in &checked.program.funcs {
        minic::visit::for_each_stmt(&f.body, |s| {
            let root: Option<&Expr> = match &s.kind {
                StmtKind::Expr(e) => Some(e),
                StmtKind::Decl { init: Some(e), .. } => Some(e),
                StmtKind::Return(Some(e)) => Some(e),
                StmtKind::If { cond, .. } => Some(cond),
                _ => None,
            };
            if let Some(root) = root {
                count += nested_calls_in(checked, root, true);
            }
        });
    }
    count
}

fn nested_calls_in(checked: &Checked, e: &Expr, is_root: bool) -> usize {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::Var(_) => 0,
        ExprKind::Unary(_, a)
        | ExprKind::Cast(_, a)
        | ExprKind::Member(a, _)
        | ExprKind::Arrow(a, _) => nested_calls_in(checked, a, false),
        ExprKind::Binary(op, a, b) => {
            if matches!(op, minic::ast::BinOp::LogAnd | minic::ast::BinOp::LogOr) {
                nested_calls_in(checked, a, false)
            } else {
                nested_calls_in(checked, a, false) + nested_calls_in(checked, b, false)
            }
        }
        ExprKind::Index(a, b) => {
            nested_calls_in(checked, a, false) + nested_calls_in(checked, b, false)
        }
        ExprKind::Ternary(c, _, _) => nested_calls_in(checked, c, false),
        ExprKind::Assign(l, r) | ExprKind::AssignOp(_, l, r) => {
            nested_calls_in(checked, l, false) + nested_calls_in(checked, r, false)
        }
        ExprKind::IncDec(_, a) => nested_calls_in(checked, a, false),
        ExprKind::Call(_, args) => {
            let own = usize::from(
                !is_root
                    && matches!(
                        checked.info.expr_types.get(&e.id),
                        Some(Type::Int) | Some(Type::Float)
                    )
                    && !matches!(direct_builtin(checked, e), Some(true)),
            );
            own + args
                .iter()
                .map(|a| nested_calls_in(checked, a, false))
                .sum::<usize>()
        }
    }
}

fn direct_builtin(checked: &Checked, call: &Expr) -> Option<bool> {
    if let ExprKind::Call(callee, _) = &call.kind {
        let mut c = callee.as_ref();
        while let ExprKind::Unary(UnOp::Deref, inner) = &c.kind {
            c = inner;
        }
        return Some(matches!(checked.info.res.get(&c.id), Some(Res::Builtin(_))));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm::RunConfig;

    fn roundtrip(src: &str, input: Vec<i64>) -> (String, String, usize) {
        let checked = minic::compile(src).expect("compiles");
        let (cleaned, splits) = cleanup(&checked);
        let recheck = minic::check(cleaned).expect("cleaned program checks");
        let orig = vm::run(
            &vm::lower(&checked),
            RunConfig {
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .expect("original runs");
        let new = vm::run(
            &vm::lower(&recheck),
            RunConfig {
                input,
                ..RunConfig::default()
            },
        )
        .expect("cleaned runs");
        (orig.output_text(), new.output_text(), splits)
    }

    #[test]
    fn splits_calls_out_of_arithmetic() {
        let src = "
            int f(int x) { return x * 2; }
            int g(int x) { return x + 10; }
            int main() { print(f(3) + g(4) * 2); return 0; }";
        let (a, b, splits) = roundtrip(src, vec![]);
        assert_eq!(a, b);
        assert_eq!(splits, 2);
        // The cleaned program has no nested calls left.
        let checked = minic::compile(src).unwrap();
        let (cleaned, _) = cleanup(&checked);
        let recheck = minic::check(cleaned).unwrap();
        assert_eq!(nested_call_count(&recheck), 0);
    }

    #[test]
    fn preserves_side_effect_order() {
        // g() observes the global that f() bumps; hoisting must not swap
        // them.
        let src = "
            int state = 0;
            int f() { state = state + 1; return state; }
            int g() { return state * 10; }
            int main() { print(f() + g()); print(state); return 0; }";
        let (a, b, splits) = roundtrip(src, vec![]);
        assert_eq!(a, b);
        assert!(splits >= 1);
    }

    #[test]
    fn does_not_hoist_past_side_effects() {
        // `x++ + f(x)`: f is preceded by a side effect — must stay.
        let src = "
            int f(int v) { return v * 3; }
            int main() { int x = 1; print(x++ + f(x)); return 0; }";
        let (a, b, splits) = roundtrip(src, vec![]);
        assert_eq!(a, b);
        assert_eq!(splits, 0, "impure prefix blocks hoisting");
    }

    #[test]
    fn does_not_hoist_conditional_calls() {
        // Hoisting g() out of the && RHS would make it run when x is 0.
        let src = "
            int calls = 0;
            int g() { calls = calls + 1; return 1; }
            int main() {
                int x = 0;
                int r = x != 0 && g();
                print(r);
                print(calls);
                return 0;
            }";
        let (a, b, splits) = roundtrip(src, vec![]);
        assert_eq!(a, b);
        assert_eq!(splits, 0);
        assert!(a.ends_with('0'), "g must not run: {a}");
    }

    #[test]
    fn does_not_hoist_out_of_loop_conditions() {
        let src = "
            int n = 0;
            int next() { n = n + 1; return n; }
            int main() {
                int s = 0;
                while (next() < 5) s = s + 1;
                print(s);
                print(n);
                return 0;
            }";
        let (a, b, splits) = roundtrip(src, vec![]);
        assert_eq!(a, b);
        assert_eq!(splits, 0, "loop conditions re-evaluate");
    }

    #[test]
    fn nested_calls_unnest_iteratively() {
        let src = "
            int f(int x) { return x + 1; }
            int main() { print(f(f(f(2))) * 2); return 0; }";
        let (a, b, splits) = roundtrip(src, vec![]);
        assert_eq!(a, b);
        assert_eq!(splits, 3, "all three calls become temporaries");
    }

    #[test]
    fn statement_level_calls_are_left_alone() {
        let src = "
            int g = 0;
            void bump(int d) { g = g + d; }
            int main() { bump(3); bump(4); print(g); return 0; }";
        let (_, _, splits) = roundtrip(src, vec![]);
        assert_eq!(splits, 0);
    }

    #[test]
    fn input_builtin_hoists_safely() {
        let src = "
            int main() {
                int s = input() * 2 + input();
                print(s);
                return 0;
            }";
        // 5*2 + 7 = 17 either way (left-to-right preserved).
        let (a, b, splits) = roundtrip(src, vec![5, 7]);
        assert_eq!(a, b);
        assert_eq!(a, "17");
        assert!(splits >= 1);
    }
}
