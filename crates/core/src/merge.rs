//! Hash-table merging (paper §2.5, Table 2).
//!
//! Segments with *identical input variables* share one table whose entries
//! carry a validity bit vector and one output group per segment — GNU Go's
//! eight `accumulate_influence` segments are the motivating case (without
//! merging, the transformed program exhausted the iPAQ's memory).

use analysis::inout::SegIo;
use memo_runtime::TableSpec;

/// One segment's placement in the table plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableAssignment {
    /// Runtime table index.
    pub table: usize,
    /// Output slot within the table (0 for unmerged).
    pub slot: usize,
}

/// The complete table plan for the selected segments.
#[derive(Debug, Clone)]
pub struct TablePlan {
    /// One spec per runtime table.
    pub specs: Vec<TableSpec>,
    /// Assignment per selected segment (parallel to the input list).
    pub assignments: Vec<TableAssignment>,
    /// Number of tables that host more than one segment.
    pub merged_tables: usize,
}

impl TablePlan {
    /// Total memory footprint of all planned tables.
    pub fn total_bytes(&self) -> usize {
        self.specs.iter().map(TableSpec::bytes).sum()
    }
}

/// Groups segments by input signature and sizes their tables.
///
/// `seg_ios[i]` and `dips[i]` describe selected segment `i`: its interface
/// and its profiled number of distinct input patterns. `bytes_cap`, if
/// set, caps each table's size (the paper's Figures 14/15 sweep).
pub fn plan_tables(seg_ios: &[&SegIo], dips: &[usize], bytes_cap: Option<usize>) -> TablePlan {
    assert_eq!(seg_ios.len(), dips.len());
    let mut specs: Vec<TableSpec> = Vec::new();
    let mut assignments: Vec<TableAssignment> = Vec::with_capacity(seg_ios.len());
    // Group indices by identical input signature.
    type Signature = Vec<(String, minic::ast::OperandShape, minic::ast::ScalarKind)>;
    let mut groups: Vec<(Signature, Vec<usize>)> = Vec::new();
    for (i, io) in seg_ios.iter().enumerate() {
        let sig = io.input_signature();
        match groups.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, members)) => members.push(i),
            None => groups.push((sig, vec![i])),
        }
    }

    assignments.resize(seg_ios.len(), TableAssignment { table: 0, slot: 0 });
    let mut merged_tables = 0;
    for (_, members) in &groups {
        let table = specs.len();
        let key_words = seg_ios[members[0]].key_words;
        let out_words: Vec<usize> = members.iter().map(|&i| seg_ios[i].out_words).collect();
        // The shared table must hold the union of the member DIPs.
        let dip: usize = members.iter().map(|&i| dips[i]).max().unwrap_or(1);
        let mut slots = TableSpec::recommended_slots(dip);
        if let Some(cap) = bytes_cap {
            let per = if members.len() == 1 {
                memo_runtime::DirectTable::entry_bytes(key_words, out_words[0])
            } else {
                memo_runtime::MergedTable::entry_bytes(key_words, &out_words)
            };
            // Round capped slot counts down to a power of two: structured
            // key streams resonate badly with arbitrary moduli.
            let fit = (cap / per).max(1);
            let fit_pow2 = if fit.is_power_of_two() {
                fit
            } else {
                fit.next_power_of_two() / 2
            };
            slots = slots.min(fit_pow2.max(1));
        }
        let spec = TableSpec {
            slots,
            key_words,
            out_words: out_words.clone(),
        };
        if members.len() > 1 {
            merged_tables += 1;
        }
        for (slot, &i) in members.iter().enumerate() {
            assignments[i] = TableAssignment { table, slot };
        }
        specs.push(spec);
    }
    TablePlan {
        specs,
        assignments,
        merged_tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::ast::{MemoOperand, OperandShape, ScalarKind};

    fn io(inputs: &[(&str, usize)], out_words: usize) -> SegIo {
        let inputs: Vec<MemoOperand> = inputs
            .iter()
            .map(|&(name, words)| MemoOperand {
                name: name.into(),
                shape: if words == 1 {
                    OperandShape::Scalar
                } else {
                    OperandShape::Array(words)
                },
                elem: ScalarKind::Int,
            })
            .collect();
        let key_words = inputs.iter().map(|o| o.words()).sum();
        SegIo {
            inputs,
            outputs: vec![],
            ret: Some(ScalarKind::Int),
            key_words,
            out_words,
            invariant_reads: vec![],
            global_inputs: vec![],
        }
    }

    #[test]
    fn identical_signatures_merge() {
        // Eight GNU-Go-style segments with the same four inputs.
        let one = io(&[("a", 1), ("b", 1), ("c", 1), ("d", 1)], 1);
        let ios: Vec<&SegIo> = (0..8).map(|_| &one).collect();
        let plan = plan_tables(&ios, &[1000; 8], None);
        assert_eq!(plan.specs.len(), 1);
        assert_eq!(plan.merged_tables, 1);
        assert_eq!(plan.specs[0].out_words.len(), 8);
        // Slots are distinct.
        for (i, a) in plan.assignments.iter().enumerate() {
            assert_eq!(a.table, 0);
            assert_eq!(a.slot, i);
        }
        // Merging must be smaller than eight separate tables.
        let merged_bytes = plan.total_bytes();
        let single = plan_tables(&ios[..1], &[1000], None).total_bytes();
        assert!(merged_bytes < single * 8);
    }

    #[test]
    fn different_signatures_stay_separate() {
        let a = io(&[("x", 1)], 1);
        let b = io(&[("y", 1)], 1);
        let c = io(&[("x", 1), ("y", 1)], 2);
        let plan = plan_tables(&[&a, &b, &c], &[10, 10, 10], None);
        assert_eq!(plan.specs.len(), 3);
        assert_eq!(plan.merged_tables, 0);
        assert!(plan.assignments.iter().all(|a| a.slot == 0));
    }

    #[test]
    fn byte_cap_limits_slots() {
        let a = io(&[("x", 1)], 1);
        let uncapped = plan_tables(&[&a], &[100_000], None);
        let capped = plan_tables(&[&a], &[100_000], Some(4096));
        assert!(capped.specs[0].slots < uncapped.specs[0].slots);
        assert!(capped.specs[0].bytes() <= 4096);
        // The cap never drops below one slot.
        let tiny = plan_tables(&[&a], &[100_000], Some(1));
        assert_eq!(tiny.specs[0].slots, 1);
    }

    #[test]
    fn dip_sizes_tables() {
        let a = io(&[("x", 1)], 1);
        let small = plan_tables(&[&a], &[31], None);
        let large = plan_tables(&[&a], &[46_283], None);
        assert!(small.specs[0].slots >= 31);
        assert!(large.specs[0].slots >= 46_283);
        assert!(large.specs[0].slots > small.specs[0].slots * 100);
    }
}
