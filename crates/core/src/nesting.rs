//! Nested-segment resolution (paper §2.3, Fig. 3).
//!
//! Profitable segments may nest (loops in loops, calls in loops, function
//! bodies calling other candidates). Memoizing both an outer and an inner
//! segment wastes table space — the paper keeps exactly one per nest:
//!
//! 1. build the interprocedural *nesting graph* (arc outer → inner);
//! 2. condense its SCCs (recursion), keeping the best-gain member;
//! 3. traverse the DAG bottom-up: compare the outer gain `g1` with
//!    `Σ n·g2` over its inner segments (formula 4) and mark the winner.
//!
//! We derive both the arcs and the `n` factors from the value-set
//! profiling run: segment *inner* is nested in *outer* exactly when inner
//! executions occurred while outer was active, and
//! `n = executions(inner under outer) / executions(outer)`.

use crate::costben::prefer_inner;
use flow::graph::DiGraph;
use vm::ProfileData;

/// The outcome of nesting resolution.
#[derive(Debug, Clone)]
pub struct NestingDecision {
    /// Indices (into the profiled-segment list) chosen for transformation.
    pub chosen: Vec<usize>,
    /// For each segment, the decided subtree gain per execution (the value
    /// compared by formula 4 at its parent).
    pub decided_gain: Vec<f64>,
}

/// Resolves nesting among `profitable` segments.
///
/// `gains[i]` is the per-execution gain `R·C − O` of segment `i`;
/// segments with non-positive gain must already be excluded from
/// `profitable`.
pub fn resolve(profile: &ProfileData, gains: &[f64], profitable: &[usize]) -> NestingDecision {
    let n = gains.len();
    let in_play: Vec<bool> = {
        let mut v = vec![false; n];
        for &i in profitable {
            v[i] = true;
        }
        v
    };

    // Nesting graph over all profiled segments (arcs through unprofitable
    // intermediates still order the profitable ones).
    let mut g = DiGraph::new(n);
    for inner in 0..n {
        for (&outer, &count) in &profile.segs[inner].within {
            if count > 0 && (outer as usize) != inner {
                g.add_edge(outer as usize, inner);
            }
        }
    }

    // Condense SCCs (recursive nests): only the best-gain in-play member
    // of each nontrivial SCC survives.
    let sccs = g.sccs();
    let mut alive = in_play.clone();
    for comp in &sccs.comps {
        if comp.len() <= 1 {
            continue;
        }
        let best = comp
            .iter()
            .copied()
            .filter(|&i| in_play[i])
            .max_by(|&a, &b| {
                let ta = gains[a] * profile.segs[a].n as f64;
                let tb = gains[b] * profile.segs[b].n as f64;
                ta.partial_cmp(&tb).expect("finite gains")
            });
        for &i in comp {
            if Some(i) != best {
                alive[i] = false;
            }
        }
    }

    // Condense and transitively reduce: profiling `within` counts record
    // *all* ancestors, which would double-count a grandchild's gain (once
    // directly and once inside its parent's decided gain).
    let dag = g.condense(&sccs).transitive_reduction();

    // Bottom-up (Tarjan emits components leaves-first): compute each
    // component's decided gain in per-own-execution units, comparing the
    // representative's own gain against Σ n·decided(child) (formula 4).
    let mut decided = vec![0.0f64; n];
    let mut winner = vec![false; n];
    let mut comp_rep = vec![usize::MAX; sccs.comps.len()];
    for (ci, comp) in sccs.comps.iter().enumerate() {
        let rep = comp.iter().copied().find(|&i| alive[i]).unwrap_or(comp[0]);
        comp_rep[ci] = rep;
        let mut inner_sum = 0.0;
        for &vc in dag.succs(ci) {
            let inner = comp_rep[vc];
            if decided[inner] > 0.0 {
                inner_sum += profile.nesting_factor(rep as u32, inner as u32) * decided[inner];
            }
        }
        let own = if alive[rep] { gains[rep] } else { 0.0 };
        if own > 0.0 && !prefer_inner(own, 1.0, inner_sum) {
            decided[rep] = own;
            winner[rep] = true;
        } else {
            decided[rep] = inner_sum;
        }
    }

    // Top-down over the DAG (ancestors first): the first winning,
    // uncovered component on each path is chosen; everything below a
    // chosen or covered component is covered.
    let order = dag.topo_order().expect("condensation is acyclic");
    let mut comp_covered = vec![false; dag.len()];
    let mut chosen = Vec::new();
    for &ci in &order {
        let rep = comp_rep[ci];
        if !comp_covered[ci] && winner[rep] && alive[rep] {
            chosen.push(rep);
            comp_covered[ci] = true; // cover descendants below
        }
        if comp_covered[ci] {
            for &vc in dag.succs(ci) {
                comp_covered[vc] = true;
            }
        }
    }

    // Shared-parent refinement: a segment that won against its own subtree
    // but was covered by a chosen ancestor may still run *outside* that
    // ancestor (G721's quan is called both from fmult and directly from
    // the sample loop). If a meaningful share of its executions is not
    // under any chosen ancestor, memoize it too — on the covered paths its
    // table is simply consulted less often.
    for u in 0..n {
        if !winner[u] || !alive[u] || chosen.contains(&u) {
            continue;
        }
        let total = profile.segs[u].n;
        if total == 0 {
            continue;
        }
        let covered_execs: u64 = chosen
            .iter()
            .map(|&a| {
                profile.segs[u]
                    .within
                    .get(&(a as u32))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        let uncovered = total.saturating_sub(covered_execs);
        if uncovered as f64 > 0.10 * total as f64 {
            chosen.push(u);
        }
    }

    chosen.sort_unstable();
    NestingDecision {
        chosen,
        decided_gain: decided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use vm::SegProfile;

    /// Builds a ProfileData where seg `i` ran `n[i]` times and
    /// `within[(outer, inner)] = count`.
    fn profile(ns: &[u64], within: &[(u32, u32, u64)]) -> ProfileData {
        let mut segs: Vec<SegProfile> = ns
            .iter()
            .map(|&n| SegProfile {
                n,
                ..SegProfile::default()
            })
            .collect();
        for &(outer, inner, count) in within {
            segs[inner as usize].within.insert(outer, count);
        }
        let _ = HashMap::<u32, u64>::new();
        ProfileData { segs }
    }

    #[test]
    fn inner_wins_when_n_times_gain_exceeds_outer() {
        // Fig. 3 flavor: outer 0 encloses inner 1; inner runs 30× per
        // outer with gain 2; outer gain 50 < 60.
        let p = profile(&[10, 300], &[(0, 1, 300)]);
        let d = resolve(&p, &[50.0, 2.0], &[0, 1]);
        assert_eq!(d.chosen, vec![1]);
    }

    #[test]
    fn outer_wins_when_gain_dominates() {
        let p = profile(&[10, 100], &[(0, 1, 100)]);
        let d = resolve(&p, &[50.0, 2.0], &[0, 1]);
        assert_eq!(d.chosen, vec![0], "50 > 10×2");
    }

    #[test]
    fn sequential_inner_segments_sum() {
        // Outer 0 encloses sequential 1 and 2 (paper: "the performance
        // gain from the outer code segment will be compared with the sum
        // of the gains from the two inner code segments").
        let p = profile(&[10, 100, 100], &[(0, 1, 100), (0, 2, 100)]);
        // Each inner: n=10, gain 3 → sum 60 > outer 50.
        let d = resolve(&p, &[50.0, 3.0, 3.0], &[0, 1, 2]);
        assert_eq!(d.chosen, vec![1, 2]);
        // With outer gain 70 the outer wins and covers both.
        let d2 = resolve(&p, &[70.0, 3.0, 3.0], &[0, 1, 2]);
        assert_eq!(d2.chosen, vec![0]);
    }

    #[test]
    fn three_level_nesting_picks_middle() {
        // 0 ⊃ 1 ⊃ 2; gains tuned so 1 beats both 2 (from below) and 0
        // (from above).
        // n(1 per 0) = 5, n(2 per 1) = 4.
        let p = profile(&[10, 50, 200], &[(0, 1, 50), (1, 2, 200), (0, 2, 200)]);
        // decided(2)=2; at 1: inner_sum = 4×2 = 8 < g1=20 → 1 wins, decided(1)=20.
        // at 0: inner_sum = 5×20 = 100 > g0=30 → inner wins.
        let d = resolve(&p, &[30.0, 20.0, 2.0], &[0, 1, 2]);
        assert_eq!(d.chosen, vec![1]);
    }

    #[test]
    fn unprofitable_middle_does_not_block() {
        // 0 ⊃ 1 ⊃ 2 but 1 is not profitable; 0 vs 2 directly.
        let p = profile(&[10, 50, 500], &[(0, 1, 50), (1, 2, 500), (0, 2, 500)]);
        // n(2 per 0) = 50 × gain 1 = 50 > g0 = 30 → choose 2.
        let d = resolve(&p, &[30.0, 0.0, 1.0], &[0, 2]);
        assert_eq!(d.chosen, vec![2]);
    }

    #[test]
    fn recursive_scc_keeps_best_total() {
        // Segments 0 and 1 are mutually nested (recursion). 1 has the
        // better total gain.
        let p = profile(&[100, 100], &[(0, 1, 100), (1, 0, 100)]);
        let d = resolve(&p, &[2.0, 5.0], &[0, 1]);
        assert_eq!(d.chosen, vec![1]);
    }

    #[test]
    fn independent_segments_all_chosen() {
        let p = profile(&[10, 10, 10], &[]);
        let d = resolve(&p, &[5.0, 5.0, 5.0], &[0, 1, 2]);
        assert_eq!(d.chosen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_profitable_list_chooses_nothing() {
        let p = profile(&[10], &[]);
        let d = resolve(&p, &[5.0], &[]);
        assert!(d.chosen.is_empty());
    }
}
