//! # compreuse — a compiler scheme for reusing intermediate computation results
//!
//! A from-scratch reproduction of Ding & Li, *"A Compiler Scheme for
//! Reusing Intermediate Computation Results"* (CGO 2004). The paper's
//! scheme — implemented there inside GCC 3.3 — finds code segments whose
//! inputs repeat at run time and rewrites them to consult a software hash
//! table (`check_hash` style, Fig. 2(b)) instead of recomputing.
//!
//! This crate is the scheme itself; the substrates live in sibling crates
//! (`minic` front end, `flow` CFGs, `analysis` dataflow, `memo-runtime`
//! tables, `vm` profiling interpreter):
//!
//! - [`cleanup`] — the call-splitting normalization (§3.1's clean-up module);
//! - [`costben`] — formulas 1–4 (§2.2);
//! - [`specialize`] — code specialization to shrink inputs (§2.4);
//! - [`nesting`] — nested-segment resolution over the condensed nesting
//!   graph (§2.3);
//! - [`merge`] — table merging for identical input sets (§2.5);
//! - [`transform`] — probe and memoization insertion (Fig. 2(b));
//! - [`subsegment`] — sub-segment exposure (the paper's §5 future work);
//! - [`pipeline`] — the end-to-end flow (Fig. 1).
//!
//! ## Quick start
//!
//! ```
//! use compreuse::{run_pipeline, PipelineConfig};
//!
//! let src = "
//!     int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128,
//!                       256, 512, 1024, 2048, 4096, 8192, 16384};
//!     int quan(int val) {
//!         int i;
//!         for (i = 0; i < 15; i++)
//!             if (val < power2[i])
//!                 break;
//!         return i;
//!     }
//!     int main() {
//!         int s = 0;
//!         for (int k = 0; k < 2000; k++)
//!             s += quan(k % 40 * 11);
//!         print(s);
//!         return 0;
//!     }";
//! let program = minic::parse(src)?;
//! let outcome = run_pipeline(&program, &PipelineConfig::default()).unwrap();
//! assert!(outcome.report.transformed >= 1, "quan gets memoized");
//!
//! // Execute both versions and compare.
//! let base = vm::run(&vm::lower(&outcome.baseline), vm::RunConfig::default()).unwrap();
//! let memo = vm::run(
//!     &vm::lower(&outcome.transformed),
//!     vm::RunConfig { tables: outcome.make_tables(), ..vm::RunConfig::default() },
//! ).unwrap();
//! assert_eq!(base.output_text(), memo.output_text());
//! assert!(memo.cycles < base.cycles, "reuse wins at 98% repetition");
//! # Ok::<(), minic::error::Diag>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cleanup;
pub mod costben;
pub mod merge;
pub mod nesting;
pub mod pipeline;
pub mod specialize;
pub mod subsegment;
pub mod transform;

pub use costben::CostBenefit;
pub use pipeline::{
    run_pipeline, PipelineConfig, PipelineError, Report, ReuseOutcome, SegDecision,
};
