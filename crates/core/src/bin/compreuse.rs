//! `compreuse` — command-line front end for the reuse pipeline.
//!
//! ```sh
//! compreuse program.mc                       # report decisions
//! compreuse program.mc --emit                # print transformed source
//! compreuse program.mc --run --input in.txt  # execute both versions
//! compreuse program.mc --opt o3 --input in.txt --run
//! ```
//!
//! The input file (one integer per line) feeds both the profiling runs and
//! — with `--run` — the execution comparison.

use compreuse::{run_pipeline, PipelineConfig};
use std::process::ExitCode;
use vm::{CostModel, OptLevel, RunConfig};

struct Cli {
    source_path: String,
    input_path: Option<String>,
    opt: OptLevel,
    emit: bool,
    run: bool,
    min_exec: u64,
    subsegments: bool,
    cleanup: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: compreuse <program.mc> [--input <ints.txt>] [--opt o0|o3] [--emit] [--run] [--min-exec N] [--subsegments] [--cleanup]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        source_path: String::new(),
        input_path: None,
        opt: OptLevel::O0,
        emit: false,
        run: false,
        min_exec: 32,
        subsegments: false,
        cleanup: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--input" => cli.input_path = Some(args.next().unwrap_or_else(|| usage())),
            "--opt" => {
                cli.opt = match args.next().as_deref() {
                    Some("o0") | Some("O0") => OptLevel::O0,
                    Some("o3") | Some("O3") => OptLevel::O3,
                    _ => usage(),
                }
            }
            "--emit" => cli.emit = true,
            "--run" => cli.run = true,
            "--subsegments" => cli.subsegments = true,
            "--cleanup" => cli.cleanup = true,
            "--min-exec" => {
                cli.min_exec = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if cli.source_path.is_empty() && !other.starts_with('-') => {
                cli.source_path = other.to_string()
            }
            _ => usage(),
        }
    }
    if cli.source_path.is_empty() {
        usage();
    }
    cli
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let source = match std::fs::read_to_string(&cli.source_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("compreuse: cannot read {}: {e}", cli.source_path);
            return ExitCode::FAILURE;
        }
    };
    let input: Vec<i64> = match &cli.input_path {
        None => Vec::new(),
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => text
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect(),
            Err(e) => {
                eprintln!("compreuse: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let program = match minic::parse(&source) {
        Ok(p) => p,
        Err(d) => {
            let map = minic::span::LineMap::new(&source);
            eprintln!("compreuse: {}", d.render(&map));
            return ExitCode::FAILURE;
        }
    };

    let outcome = match run_pipeline(
        &program,
        &PipelineConfig {
            cost: CostModel::for_level(cli.opt),
            profile_input: input.clone(),
            min_exec: cli.min_exec,
            enable_subsegments: cli.subsegments,
            enable_cleanup: cli.cleanup,
            ..PipelineConfig::default()
        },
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("compreuse: {e}");
            return ExitCode::FAILURE;
        }
    };

    let r = &outcome.report;
    println!(
        "segments: {} analyzed, {} profiled, {} transformed; {} merged table(s); {} table bytes",
        r.analyzed, r.profiled, r.transformed, r.merged_tables, r.total_table_bytes
    );
    for s in &r.specializations {
        println!(
            "specialized {} -> {} (bound {})",
            s.original,
            s.specialized,
            s.bound_params.join(", ")
        );
    }
    for d in &r.decisions {
        println!(
            "  {:<28} N={:<8} DIP={:<7} R={:>5.1}% C={:>8.0} O={:>5.0} gain={:>8.0}  {}",
            d.name,
            d.n,
            d.dip,
            d.reuse_rate * 100.0,
            d.measured_c,
            d.overhead_o,
            d.gain,
            if d.chosen { "TRANSFORMED" } else { "skipped" }
        );
    }
    if !r.rejects.is_empty() {
        println!("rejected segments:");
        for (name, why) in &r.rejects {
            println!("  {name}: {why}");
        }
    }

    if cli.emit {
        println!("\n/* ---- transformed program ---- */");
        println!(
            "{}",
            minic::pretty::print_program(&outcome.transformed.program)
        );
    }

    if cli.run {
        let tables = match outcome.try_make_tables() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("compreuse: invalid table spec: {e}");
                return ExitCode::FAILURE;
            }
        };
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                cost: CostModel::for_level(cli.opt),
                input: input.clone(),
                ..RunConfig::default()
            },
        );
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                cost: CostModel::for_level(cli.opt),
                input,
                tables,
                ..RunConfig::default()
            },
        );
        match (base, memo) {
            (Ok(b), Ok(m)) => {
                if b.output_text() != m.output_text() {
                    eprintln!("compreuse: BUG — outputs diverged");
                    return ExitCode::FAILURE;
                }
                println!("\noutput:\n{}", b.output_text());
                println!(
                    "original {:>12} cycles | memoized {:>12} cycles | speedup {:.2}x | energy saving {:.1}%",
                    b.cycles,
                    m.cycles,
                    b.seconds / m.seconds,
                    (1.0 - m.energy_joules / b.energy_joules) * 100.0
                );
            }
            (Err(t), _) | (_, Err(t)) => {
                eprintln!("compreuse: program trapped: {t}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
