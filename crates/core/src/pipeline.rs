//! The end-to-end compiler scheme (paper Fig. 1):
//!
//! ```text
//! source → [specialize §2.4] → enumerate segments → structural screen
//!        → input/output analysis (§2.1) → static O/C < 1 pre-filter
//!        → execution-frequency filter → value-set profiling
//!        → cost-benefit selection (formula 3) → nesting resolution (§2.3)
//!        → table merging (§2.5) → memoization transform (Fig. 2(b))
//! ```
//!
//! [`run_pipeline`] drives all stages and returns the transformed program,
//! the table specs to instantiate at run time, the profiling data (the
//! harness regenerates the paper's histogram figures from it), and a
//! [`Report`] with every decision (Tables 3 and 4).

use crate::costben::CostBenefit;
use crate::merge::{plan_tables, TableAssignment, TablePlan};
use crate::nesting;
use crate::specialize::{specialize, Specialization};
use crate::transform::{insert_memos, insert_probes, MemoSpec, ProbeSpec};
use analysis::deps::{plan_deps, shared_region_edges, DepEdge, DepPlan};
use analysis::granularity::{seg_granularity, SegCost};
use analysis::inout::{seg_io, SegIo};
use analysis::segments::{self, Reject};
use analysis::{Analyses, SegKind, Segment};
use memo_runtime::TableSpec;
use minic::ast::{NodeId, Program};
use minic::sema::Checked;
use std::collections::HashMap;
use std::fmt;
use vm::{CostModel, ProfileData, RunConfig};

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Cost model the decisions are made for (the paper profiles the same
    /// binary it measures).
    pub cost: CostModel,
    /// Input stream for the frequency and value-set profiling runs.
    pub profile_input: Vec<i64>,
    /// Segments executed fewer times than this are not value-profiled
    /// (the paper's first stage: "filter out code segments which are
    /// executed infrequently").
    pub min_exec: u64,
    /// Optional per-table byte cap (Figures 14/15 sweep).
    pub bytes_cap: Option<usize>,
    /// Apply the §3.1 clean-up normalization (call splitting) before
    /// anything else. Off by default: the analyses here handle nested
    /// calls directly, so clean-up only changes the program shape, but it
    /// is available for fidelity with the paper's module list.
    pub enable_cleanup: bool,
    /// Expose sub-segments (the paper's stated future work): statement
    /// ranges inside bodies whose whole-body segment is illegal (I/O,
    /// escaping control) are wrapped into bare blocks and become
    /// candidates of their own. Off by default for paper fidelity.
    pub enable_subsegments: bool,
    /// Apply the §2.4 specialization pass.
    pub enable_specialization: bool,
    /// Apply the §2.5 table merging (ablation toggle).
    pub enable_merging: bool,
    /// Apply the §2.3 nesting resolution (ablation toggle; when off, every
    /// profitable segment is transformed).
    pub enable_nesting: bool,
    /// Cycle budget for the profiling runs.
    pub max_profile_cycles: u64,
    /// Execution engine for the profiling runs. Both engines charge
    /// identical modelled cycles, so this only affects host wall-clock;
    /// the default ([`vm::Engine::Bytecode`]) is the fast one.
    pub engine: vm::Engine,
    /// Plan validated dependencies (red/green incremental reuse): large
    /// mutable global arrays read by ret-only segments move out of the
    /// hash key into fingerprinted dependency regions, and invariant
    /// global reads are fingerprinted as a guard. When off, every segment
    /// keeps its full §2.1 exact-match key and no fingerprints are
    /// planned.
    pub enable_validation: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            cost: CostModel::o0(),
            profile_input: Vec::new(),
            min_exec: 32,
            bytes_cap: None,
            enable_cleanup: false,
            enable_subsegments: false,
            enable_specialization: true,
            enable_merging: true,
            enable_nesting: true,
            max_profile_cycles: u64::MAX,
            engine: vm::Engine::default(),
            enable_validation: true,
        }
    }
}

/// Why the pipeline failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The program (or an intermediate transform) failed the front end.
    FrontEnd(String),
    /// A profiling run trapped.
    Trap(vm::Trap),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::FrontEnd(e) => write!(f, "front-end error: {e}"),
            PipelineError::Trap(t) => write!(f, "profiling run trapped: {t}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything known about one value-profiled segment.
#[derive(Debug, Clone)]
pub struct SegDecision {
    /// Segment name.
    pub name: String,
    /// Executions observed by the frequency run.
    pub exec_count: u64,
    /// Static granularity estimate (cycles).
    pub static_c: f64,
    /// Static overhead bound (cycles).
    pub static_o: f64,
    /// Profiled execution instances `N`.
    pub n: u64,
    /// Distinct input patterns `N_ds`.
    pub dip: usize,
    /// Raw reuse rate `R = 1 − N_ds/N`.
    pub reuse_rate: f64,
    /// Reuse rate after collision deduction at the planned table size.
    pub effective_rate: f64,
    /// Measured granularity `C` (cycles/execution).
    pub measured_c: f64,
    /// Hashing overhead `O` (cycles/probe).
    pub overhead_o: f64,
    /// Expected gain per execution, `R·C − O`.
    pub gain: f64,
    /// Formula 3 verdict.
    pub profitable: bool,
    /// Survived nesting resolution and was transformed.
    pub chosen: bool,
    /// Table placement, when chosen.
    pub assignment: Option<TableAssignment>,
    /// Key width in words (after dependency-driven key reduction).
    pub key_words: usize,
    /// Output width in words.
    pub out_words: usize,
    /// Fingerprint words stored per entry (0 when the segment has no
    /// validated dependencies).
    pub fp_words: usize,
    /// Whether the segment depends on mutable regions outside its key, so
    /// its entries need green validation to be trusted.
    pub green: bool,
}

/// Pipeline statistics (the paper's Table 4 row for a program).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Segments enumerated ("Analyzed CS").
    pub analyzed: usize,
    /// Segments passing structure + interface + pre-filter + frequency
    /// ("Profiled CS").
    pub profiled: usize,
    /// Segments transformed ("Transformed CS").
    pub transformed: usize,
    /// Per-segment rejection log.
    pub rejects: Vec<(String, Reject)>,
    /// Specializations applied.
    pub specializations: Vec<Specialization>,
    /// Decisions for every profiled segment.
    pub decisions: Vec<SegDecision>,
    /// Number of merged (multi-segment) tables.
    pub merged_tables: usize,
    /// Total planned table bytes.
    pub total_table_bytes: usize,
    /// Shared-region edges of the segment dependency graph: pairs of
    /// transformed segments whose stored results depend on the same
    /// tracked global region (a write there can invalidate both).
    pub dep_edges: Vec<DepEdge>,
}

/// The pipeline's product.
#[derive(Debug)]
pub struct ReuseOutcome {
    /// The (possibly specialized) but untransformed program — the exact
    /// baseline the transformation was derived from.
    pub baseline: Checked,
    /// The memoized program.
    pub transformed: Checked,
    /// Table specs to instantiate for [`vm::RunConfig::tables`].
    pub specs: Vec<TableSpec>,
    /// Value-set profiles of every profiled segment (drives the paper's
    /// histogram figures).
    pub profile: ProfileData,
    /// Per-table adaptive-guard policies: `predicted_collision_rate` is
    /// the worst `collision_deduction` among the segments sharing the
    /// table, at the planned size. Disabled (`enabled: false`) — the
    /// tables feed telemetry but never change state unless instantiated
    /// through [`ReuseOutcome::make_adaptive_tables`].
    pub policies: Vec<memo_runtime::GuardPolicy>,
    /// Fingerprint words per table and slot (`table_deps[t][s]`, 0 for
    /// exact-match slots): instantiated tables get their per-slot
    /// fingerprint widths declared before traffic.
    pub table_deps: Vec<Vec<usize>>,
    /// Decision log.
    pub report: Report,
    /// The mined specialization plan, when the pipeline ran with
    /// [`vm::Engine::Specialized`]: dispatch-trace hot pairs plus the
    /// dominant key of each top-k hottest chosen segment. `None` on the
    /// other engines (and legal to leave unused — the specialized engine
    /// without a plan is exactly the generic bytecode engine).
    pub spec_plan: Option<vm::specialize::SpecPlan>,
}

impl ReuseOutcome {
    fn tables_with_policies(
        &self,
        enabled: bool,
    ) -> Result<Vec<memo_runtime::MemoTable>, memo_runtime::SpecError> {
        self.specs
            .iter()
            .enumerate()
            .zip(&self.policies)
            .map(|((t, spec), policy)| {
                let mut table = if spec.out_words.len() > 1 {
                    memo_runtime::MemoTable::try_merged(spec)?
                } else {
                    memo_runtime::MemoTable::try_direct(spec)?
                };
                table.set_policy(memo_runtime::GuardPolicy {
                    enabled,
                    ..policy.clone()
                });
                for (slot, &fpw) in self.table_deps[t].iter().enumerate() {
                    if fpw > 0 {
                        table.set_deps(slot, fpw);
                    }
                }
                Ok(table)
            })
            .collect()
    }

    /// Instantiates the planned memo tables. The profile-derived guard
    /// policies are installed for telemetry but left disabled, so table
    /// behaviour matches the paper's static scheme exactly.
    ///
    /// # Errors
    ///
    /// Returns [`memo_runtime::SpecError`] when a planned spec is
    /// structurally invalid.
    pub fn try_make_tables(&self) -> Result<Vec<memo_runtime::MemoTable>, memo_runtime::SpecError> {
        self.tables_with_policies(false)
    }

    /// Instantiates the planned memo tables with the adaptive guard
    /// enabled: a table whose live collision rate stays above its
    /// profile-predicted threshold is resized or bypassed at run time.
    ///
    /// # Errors
    ///
    /// Returns [`memo_runtime::SpecError`] when a planned spec is
    /// structurally invalid.
    pub fn try_make_adaptive_tables(
        &self,
    ) -> Result<Vec<memo_runtime::MemoTable>, memo_runtime::SpecError> {
        self.tables_with_policies(true)
    }

    /// Instantiates the planned tables as a shareable, sharded store
    /// (`shards` lock shards per table, rounded up to a power of two) for
    /// concurrent probing through [`vm::RunConfig::shared_tables`]. Guard
    /// policies are installed per shard, disabled — matching
    /// [`ReuseOutcome::try_make_tables`].
    ///
    /// # Errors
    ///
    /// Returns [`memo_runtime::SpecError`] when a planned spec is
    /// structurally invalid.
    pub fn try_make_shared_tables(
        &self,
        shards: usize,
    ) -> Result<Vec<memo_runtime::ShardedTable>, memo_runtime::SpecError> {
        self.specs
            .iter()
            .enumerate()
            .zip(&self.policies)
            .map(|((t, spec), policy)| {
                let mut table = memo_runtime::ShardedTable::try_from_spec(spec, shards)?;
                table.set_policy(memo_runtime::GuardPolicy {
                    enabled: false,
                    ..policy.clone()
                });
                for (slot, &fpw) in self.table_deps[t].iter().enumerate() {
                    if fpw > 0 {
                        table.set_deps(slot, fpw);
                    }
                }
                Ok(table)
            })
            .collect()
    }

    /// Instantiates the planned memo tables, panicking on an invalid spec.
    ///
    /// # Panics
    ///
    /// Panics if a planned spec is structurally invalid (the pipeline
    /// never plans one); binaries use [`ReuseOutcome::try_make_tables`]
    /// and surface the error instead.
    pub fn make_tables(&self) -> Vec<memo_runtime::MemoTable> {
        self.try_make_tables()
            .unwrap_or_else(|e| panic!("pipeline planned an invalid table spec: {e}"))
    }

    /// Instantiates the planned memo tables with the adaptive guard
    /// enabled, panicking on an invalid spec.
    ///
    /// # Panics
    ///
    /// Panics if a planned spec is structurally invalid; binaries use
    /// [`ReuseOutcome::try_make_adaptive_tables`] instead.
    pub fn make_adaptive_tables(&self) -> Vec<memo_runtime::MemoTable> {
        self.try_make_adaptive_tables()
            .unwrap_or_else(|e| panic!("pipeline planned an invalid table spec: {e}"))
    }
}

/// Runs the complete computation-reuse pipeline on `program`.
///
/// # Errors
///
/// Returns [`PipelineError`] if the program fails the front end or a
/// profiling run traps.
pub fn run_pipeline(
    program: &Program,
    config: &PipelineConfig,
) -> Result<ReuseOutcome, PipelineError> {
    let mut checked0 =
        minic::check(program.clone()).map_err(|e| PipelineError::FrontEnd(e.to_string()))?;

    // Stage −1: clean-up normalization (§3.1), when requested.
    if config.enable_cleanup {
        let (cleaned, _splits) = crate::cleanup::cleanup(&checked0);
        checked0 = minic::check(cleaned).map_err(|e| PipelineError::FrontEnd(e.to_string()))?;
    }

    // Stage 0: specialization (§2.4).
    let (checked, specializations) = if config.enable_specialization {
        let an0 = Analyses::build(&checked0);
        let (prog, reports) = specialize(&checked0, &an0);
        if reports.is_empty() {
            (checked0, reports)
        } else {
            let rechecked =
                minic::check(prog).map_err(|e| PipelineError::FrontEnd(e.to_string()))?;
            (rechecked, reports)
        }
    } else {
        (checked0, Vec::new())
    };

    // Stage 0.5: sub-segment exposure (paper §5 future work), optional.
    let checked = if config.enable_subsegments {
        let an_pre = Analyses::build(&checked);
        let (prog, wrapped) = crate::subsegment::expose(&checked, &an_pre);
        if wrapped > 0 {
            minic::check(prog).map_err(|e| PipelineError::FrontEnd(e.to_string()))?
        } else {
            checked
        }
    } else {
        checked
    };

    let an = Analyses::build(&checked);
    let mut report = Report {
        specializations,
        ..Report::default()
    };

    // Stage 1: enumerate and screen.
    let segs = segments::enumerate(&checked);
    report.analyzed = segs.len();
    let mut candidates: Vec<(Segment, SegIo, SegCost, DepPlan)> = Vec::new();
    for seg in segs {
        if let Err(r) = segments::check_structure(&checked, &an.cg, &an.io, &seg) {
            report.rejects.push((seg.name.clone(), r));
            continue;
        }
        let mut io = match seg_io(&checked, &an, &seg) {
            Ok(io) => io,
            Err(r) => {
                report.rejects.push((seg.name.clone(), r));
                continue;
            }
        };
        // Dependency planning: move qualifying mutable reads out of the
        // key and fingerprint invariant reads. The reduced interface is
        // substituted into `io` so every later stage — granularity,
        // probes, value profiling, cost-benefit, and table planning —
        // sees the key the transformed program will actually hash.
        let plan = if config.enable_validation {
            let plan = plan_deps(&io);
            io.inputs = plan.key_inputs.clone();
            io.key_words = plan.key_words;
            plan
        } else {
            DepPlan {
                key_inputs: io.inputs.clone(),
                deps: Vec::new(),
                key_words: io.key_words,
            }
        };
        let cost = seg_granularity(&checked, &an, &seg, io.key_words, io.out_words);
        if !cost.passes_prefilter() {
            report
                .rejects
                .push((seg.name.clone(), Reject::OverheadDominates));
            continue;
        }
        candidates.push((seg, io, cost, plan));
    }

    // Stage 2: execution-frequency filter.
    let module = vm::lower(&checked);
    let freq = vm::run(
        &module,
        RunConfig {
            cost: config.cost.clone(),
            input: config.profile_input.clone(),
            max_cycles: config.max_profile_cycles,
            engine: config.engine,
            // The specialized tier mines its superinstructions from this
            // run's dispatch trace (no plan exists yet, so the run itself
            // executes on the generic bytecode path).
            record_trace: config.engine == vm::Engine::Specialized,
            ..RunConfig::default()
        },
    )
    .map_err(PipelineError::Trap)?;
    let loop_index: HashMap<NodeId, usize> = module
        .loop_origins
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let branch_index: HashMap<NodeId, usize> = module
        .branch_origins
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let exec_count = |seg: &Segment| -> u64 {
        match seg.kind {
            SegKind::FuncBody => freq.func_calls[seg.func],
            SegKind::LoopBody(id) => loop_index
                .get(&id)
                .map(|&i| freq.loop_counts[i])
                .unwrap_or(0),
            SegKind::IfBranch(id, then) => branch_index
                .get(&id)
                .map(|&i| freq.branch_counts[i * 2 + usize::from(!then)])
                .unwrap_or(0),
            SegKind::BareBlock(id) => {
                // A bare block runs as often as its innermost enclosing
                // loop iterates (or as often as the function is called).
                match crate::subsegment::enclosing_loop(&checked.program.funcs[seg.func].body, id) {
                    Some(loop_id) => loop_index
                        .get(&loop_id)
                        .map(|&i| freq.loop_counts[i])
                        .unwrap_or(0),
                    None => freq.func_calls[seg.func],
                }
            }
        }
    };
    let mut survivors: Vec<(Segment, SegIo, SegCost, DepPlan, u64)> = Vec::new();
    for (seg, io, cost, plan) in candidates {
        let count = exec_count(&seg);
        if count < config.min_exec {
            report.rejects.push((seg.name.clone(), Reject::ColdCode));
            continue;
        }
        survivors.push((seg, io, cost, plan, count));
    }
    report.profiled = survivors.len();

    // Stage 3: value-set profiling.
    let probes: Vec<ProbeSpec> = survivors
        .iter()
        .enumerate()
        .map(|(i, (seg, io, _, _, _))| ProbeSpec::for_segment(seg, i, io.inputs.clone()))
        .collect();
    let profile = if probes.is_empty() {
        ProfileData::default()
    } else {
        let instrumented = insert_probes(&checked.program, &probes);
        let ichecked =
            minic::check(instrumented).map_err(|e| PipelineError::FrontEnd(e.to_string()))?;
        let imodule = vm::lower(&ichecked);
        let out = vm::run(
            &imodule,
            RunConfig {
                cost: config.cost.clone(),
                input: config.profile_input.clone(),
                max_cycles: config.max_profile_cycles,
                engine: config.engine,
                ..RunConfig::default()
            },
        )
        .map_err(PipelineError::Trap)?;
        out.profile.unwrap_or_default()
    };

    // Stage 4: cost-benefit selection (formula 3).
    let mut decisions: Vec<SegDecision> = Vec::new();
    let mut gains: Vec<f64> = Vec::new();
    let mut profitable: Vec<usize> = Vec::new();
    for (i, (seg, io, cost, plan, count)) in survivors.iter().enumerate() {
        let sp = &profile.segs[i];
        let planned_slots = {
            let mut slots = TableSpec::recommended_slots(sp.dip());
            if let Some(cap) = config.bytes_cap {
                let per = memo_runtime::DirectTable::entry_bytes(io.key_words, io.out_words);
                let fit = (cap / per).max(1);
                let fit_pow2 = if fit.is_power_of_two() {
                    fit
                } else {
                    fit.next_power_of_two() / 2
                };
                slots = slots.min(fit_pow2.max(1));
            }
            slots
        };
        let effective = sp.effective_reuse_rate(planned_slots);
        let measured_c = sp.avg_cycles();
        // A validated segment pays the fingerprint probe on every access
        // (plus the record cost on misses, folded in as a probe-side
        // pessimism since formula 3 charges overhead per execution).
        let fp_overhead = if plan.fp_words() > 0 {
            (config.cost.fp_probe_cost(plan.fp_words())
                + config.cost.fp_record_cost(plan.fp_words())) as f64
        } else {
            0.0
        };
        let overhead_o = config.cost.memo_overhead(io.key_words, io.out_words) as f64 + fp_overhead;
        let cb = CostBenefit::new(measured_c, overhead_o, effective.clamp(0.0, 1.0));
        let gain = cb.gain();
        let is_profitable = cb.profitable();
        if is_profitable {
            profitable.push(i);
        }
        gains.push(gain);
        decisions.push(SegDecision {
            name: seg.name.clone(),
            exec_count: *count,
            static_c: cost.granularity_cycles,
            static_o: cost.overhead_cycles,
            n: sp.n,
            dip: sp.dip(),
            reuse_rate: sp.reuse_rate(),
            effective_rate: effective,
            measured_c,
            overhead_o,
            gain,
            profitable: is_profitable,
            chosen: false,
            assignment: None,
            key_words: io.key_words,
            out_words: io.out_words,
            fp_words: plan.fp_words(),
            green: plan.green(),
        });
    }

    // Stage 5: nesting resolution (§2.3).
    let chosen: Vec<usize> = if config.enable_nesting {
        nesting::resolve(&profile, &gains, &profitable).chosen
    } else {
        profitable.clone()
    };

    // Stage 6: table planning with merging (§2.5).
    let chosen_ios: Vec<&SegIo> = chosen.iter().map(|&i| &survivors[i].1).collect();
    let chosen_dips: Vec<usize> = chosen.iter().map(|&i| profile.segs[i].dip()).collect();
    let plan: TablePlan = if config.enable_merging {
        plan_tables(&chosen_ios, &chosen_dips, config.bytes_cap)
    } else {
        // Ablation: one table per segment.
        let mut specs = Vec::new();
        let mut assignments = Vec::new();
        for (io, &dip) in chosen_ios.iter().zip(&chosen_dips) {
            let single = plan_tables(&[io], &[dip], config.bytes_cap);
            assignments.push(TableAssignment {
                table: specs.len(),
                slot: 0,
            });
            specs.extend(single.specs);
        }
        TablePlan {
            specs,
            assignments,
            merged_tables: 0,
        }
    };

    // Stage 7: the memoization transform.
    let mut table_deps: Vec<Vec<usize>> = plan
        .specs
        .iter()
        .map(|spec| vec![0; spec.out_words.len()])
        .collect();
    let memos: Vec<MemoSpec> = chosen
        .iter()
        .enumerate()
        .map(|(k, &i)| {
            let (seg, io, _, dep_plan, _) = &survivors[i];
            let a = plan.assignments[k];
            decisions[i].chosen = true;
            decisions[i].assignment = Some(a);
            table_deps[a.table][a.slot] = dep_plan.fp_words();
            MemoSpec {
                func: seg.func,
                kind: seg.kind,
                name: seg.name.clone(),
                table: a.table,
                slot: a.slot,
                inputs: io.inputs.clone(),
                outputs: io.outputs.clone(),
                deps: dep_plan.deps.clone(),
                ret: io.ret,
            }
        })
        .collect();
    report.transformed = memos.len();
    report.merged_tables = plan.merged_tables;
    report.total_table_bytes = plan.total_bytes();
    report.dep_edges = shared_region_edges(
        &chosen
            .iter()
            .map(|&i| (survivors[i].0.name.clone(), survivors[i].3.clone()))
            .collect::<Vec<_>>(),
    );
    report.decisions = decisions;

    // Per-table guard policies: predict each table's collision rate as the
    // worst collision deduction (at the planned size) among the segments
    // assigned to it, so the run-time guard degrades a table only when it
    // does measurably worse than the profile promised.
    let mut policies: Vec<memo_runtime::GuardPolicy> = plan
        .specs
        .iter()
        .map(|_| memo_runtime::GuardPolicy {
            predicted_collision_rate: 0.0,
            ..memo_runtime::GuardPolicy::default()
        })
        .collect();
    for (k, &i) in chosen.iter().enumerate() {
        let a = plan.assignments[k];
        let predicted = profile.segs[i].collision_deduction(plan.specs[a.table].slots);
        let p = &mut policies[a.table];
        if predicted > p.predicted_collision_rate {
            p.predicted_collision_rate = predicted;
        }
        if let Some(cap) = config.bytes_cap {
            p.resize_bytes_cap = Some(cap);
        }
    }

    // Specialization-plan mining (§2.4): hot dispatch pairs from the
    // stage-2 trace, plus the dominant key of each of the hottest chosen
    // segments. A key qualifies as dominant when it recurred often
    // enough during profiling that baking its values into a cloned body
    // can pay; profiles of real programs spread hits over many keys, so
    // the bar is absolute recurrence, not a share of all executions.
    /// Minimum profiled recurrence for a key to count as dominant.
    const DOMINANT_MIN_RECURRENCE: u64 = 8;
    let spec_plan = if config.engine == vm::Engine::Specialized {
        let hot_pairs = freq
            .trace
            .as_ref()
            .map(|t| t.top_pairs(16, 64))
            .unwrap_or_default();
        let mut ranked: Vec<usize> = (0..chosen.len()).collect();
        ranked.sort_by_key(|&k| std::cmp::Reverse(survivors[chosen[k]].4));
        let mut dominants = Vec::new();
        for k in ranked {
            if dominants.len() >= 4 {
                break;
            }
            let sp = &profile.segs[chosen[k]];
            // Total order (count, then smaller key) keeps mining
            // deterministic across HashMap iteration orders.
            let Some((key, &count)) = sp
                .distinct
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            else {
                continue;
            };
            if sp.n == 0 || count < DOMINANT_MIN_RECURRENCE {
                continue;
            }
            let a = plan.assignments[k];
            dominants.push(vm::specialize::DominantKey {
                table: a.table as u32,
                slot: a.slot as u32,
                key: key.to_vec(),
            });
        }
        Some(vm::specialize::SpecPlan {
            hot_pairs,
            dominants,
        })
    } else {
        None
    };

    let transformed_prog = insert_memos(&checked.program, &memos);
    let transformed =
        minic::check(transformed_prog).map_err(|e| PipelineError::FrontEnd(e.to_string()))?;

    Ok(ReuseOutcome {
        baseline: checked,
        transformed,
        specs: plan.specs,
        profile,
        policies,
        table_deps,
        report,
        spec_plan,
    })
}
