//! End-to-end pipeline tests: profile → select → transform → execute,
//! asserting semantic preservation and the paper's decision behaviour.

use compreuse::{run_pipeline, PipelineConfig, ReuseOutcome};
use vm::{CostModel, RunConfig};

/// Runs the pipeline and both program versions; returns (outcome,
/// baseline run, memoized run).
fn full(
    src: &str,
    config: &PipelineConfig,
    input: Vec<i64>,
) -> (ReuseOutcome, vm::Outcome, vm::Outcome) {
    let program = minic::parse(src).expect("parse");
    let outcome = run_pipeline(&program, config).expect("pipeline");
    let base = vm::run(
        &vm::lower(&outcome.baseline),
        RunConfig {
            cost: config.cost.clone(),
            input: input.clone(),
            ..RunConfig::default()
        },
    )
    .expect("baseline run");
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            cost: config.cost.clone(),
            input,
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    )
    .expect("memoized run");
    (outcome, base, memo)
}

const QUAN_G721: &str = "
    int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
    int quan(int val, int *table, int size) {
        int i;
        for (i = 0; i < size; i++)
            if (val < table[i])
                break;
        return i;
    }
    int main() {
        int s = 0;
        while (!eof()) {
            int sample = input();
            s += quan(sample, power2, 15);
        }
        print(s);
        return 0;
    }";

fn repeating_input(n: usize, distinct: i64) -> Vec<i64> {
    (0..n).map(|i| (i as i64 * 7919) % distinct * 13).collect()
}

#[test]
fn g721_shape_specializes_and_wins() {
    let input = repeating_input(3000, 40);
    let config = PipelineConfig {
        profile_input: input.clone(),
        ..PipelineConfig::default()
    };
    let (outcome, base, memo) = full(QUAN_G721, &config, input);
    // Specialization fired (table/size bound away)...
    assert_eq!(outcome.report.specializations.len(), 1);
    assert_eq!(
        outcome.report.specializations[0].bound_params,
        vec!["table", "size"]
    );
    // ...and the specialized quan body got memoized.
    assert!(outcome.report.transformed >= 1);
    let quan_dec = outcome
        .report
        .decisions
        .iter()
        .find(|d| d.name.contains("quan__spec"))
        .expect("specialized quan was profiled");
    assert!(quan_dec.chosen, "{quan_dec:?}");
    assert!(quan_dec.reuse_rate > 0.95);
    assert_eq!(quan_dec.key_words, 1);

    assert_eq!(base.output_text(), memo.output_text());
    assert!(
        memo.cycles < base.cycles,
        "speedup expected: {} vs {}",
        memo.cycles,
        base.cycles
    );
}

#[test]
fn low_reuse_input_is_not_transformed() {
    // Every sample distinct → R ≈ 0 → formula 3 rejects.
    let input: Vec<i64> = (0..2000).map(|i| i * 3 + 1).collect();
    let config = PipelineConfig {
        profile_input: input.clone(),
        ..PipelineConfig::default()
    };
    let (outcome, base, memo) = full(QUAN_G721, &config, input);
    let quan_dec = outcome
        .report
        .decisions
        .iter()
        .find(|d| d.name.contains("quan"))
        .expect("profiled");
    assert!(!quan_dec.profitable, "all-distinct input cannot profit");
    assert!(!quan_dec.chosen);
    // With nothing (or little) transformed, costs stay comparable.
    assert_eq!(base.output_text(), memo.output_text());
}

#[test]
fn nesting_prefers_the_better_segment() {
    // An outer driver loop in a helper function encloses a hot inner
    // function; the inner has high reuse, the outer sees distinct inputs
    // (loop counter) → pipeline must memoize inner, not outer.
    let src = "
        int helper(int x) {
            int acc = 0;
            for (int i = 0; i < 30; i++) acc += x * i;
            return acc;
        }
        int wrapper(int k, int x) {
            int s = 0;
            for (int i = 0; i < 8; i++) s += helper(x);
            return s + k;
        }
        int main() {
            int s = 0;
            for (int k = 0; k < 300; k++) {
                s += wrapper(k, k % 5);
            }
            print(s);
            return 0;
        }";
    let config = PipelineConfig::default();
    let (outcome, base, memo) = full(src, &config, vec![]);
    let helper_dec = outcome
        .report
        .decisions
        .iter()
        .find(|d| d.name == "helper:body")
        .expect("helper profiled");
    let wrapper_dec = outcome
        .report
        .decisions
        .iter()
        .find(|d| d.name == "wrapper:body");
    assert!(helper_dec.chosen, "helper has 5 DIPs over 2400 calls");
    if let Some(w) = wrapper_dec {
        assert!(
            !w.chosen,
            "wrapper must lose to 8×helper per formula 4: {w:?}"
        );
    }
    assert_eq!(base.output_text(), memo.output_text());
    assert!(memo.cycles < base.cycles);
}

#[test]
fn merging_groups_identical_inputs() {
    // Two segments keyed on the same variables: one merged table.
    let src = "
        int out_a; int out_b;
        void fa(int x, int y) {
            int t = 0;
            for (int i = 0; i < 40; i++) t += x * i + y;
            out_a = t;
        }
        void fb(int x, int y) {
            int t = 1;
            for (int i = 0; i < 40; i++) t += x * i - y;
            out_b = t;
        }
        int main() {
            int s = 0;
            for (int k = 0; k < 500; k++) {
                int x = k % 4;
                int y = k % 3;
                fa(x, y);
                fb(x, y);
                s += out_a + out_b;
            }
            print(s);
            return 0;
        }";
    let config = PipelineConfig::default();
    let (outcome, base, memo) = full(src, &config, vec![]);
    assert_eq!(
        outcome.report.merged_tables, 1,
        "{:?}",
        outcome.report.decisions
    );
    assert_eq!(outcome.specs.len(), 1);
    assert_eq!(outcome.specs[0].out_words.len(), 2);
    assert_eq!(base.output_text(), memo.output_text());
    assert!(memo.cycles < base.cycles);

    // Ablation: merging off → two tables, more bytes.
    let config_off = PipelineConfig {
        enable_merging: false,
        ..PipelineConfig::default()
    };
    let program = minic::parse(src).unwrap();
    let unmerged = run_pipeline(&program, &config_off).unwrap();
    assert_eq!(unmerged.specs.len(), 2);
    assert!(unmerged.report.total_table_bytes > outcome.report.total_table_bytes);
}

#[test]
fn cold_code_is_not_profiled() {
    let src = "
        int rare(int x) {
            int acc = 0;
            for (int i = 0; i < 50; i++) acc += x * i;
            return acc;
        }
        int main() {
            int s = rare(1) + rare(1);
            for (int i = 0; i < 100; i++) s += i;
            print(s);
            return 0;
        }";
    let config = PipelineConfig {
        min_exec: 32,
        ..PipelineConfig::default()
    };
    let program = minic::parse(src).unwrap();
    let outcome = run_pipeline(&program, &config).unwrap();
    assert!(
        outcome
            .report
            .rejects
            .iter()
            .any(|(name, r)| name == "rare:body" && matches!(r, analysis::Reject::ColdCode)),
        "{:?}",
        outcome.report.rejects
    );
    assert!(!outcome
        .report
        .decisions
        .iter()
        .any(|d| d.name == "rare:body"));
}

#[test]
fn report_counts_are_consistent() {
    let input = repeating_input(2000, 25);
    let config = PipelineConfig {
        profile_input: input.clone(),
        ..PipelineConfig::default()
    };
    let program = minic::parse(QUAN_G721).unwrap();
    let outcome = run_pipeline(&program, &config).unwrap();
    let r = &outcome.report;
    assert!(r.analyzed >= r.profiled);
    assert!(r.profiled >= r.transformed);
    assert_eq!(r.decisions.len(), r.profiled);
    assert_eq!(
        r.decisions.iter().filter(|d| d.chosen).count(),
        r.transformed
    );
    assert_eq!(r.analyzed, r.profiled + r.rejects.len());
    // Chosen segments have assignments; others do not.
    for d in &r.decisions {
        assert_eq!(d.chosen, d.assignment.is_some());
    }
}

#[test]
fn o3_decisions_can_differ_from_o0() {
    // A segment profitable at O0 can become unprofitable at O3 (smaller
    // C, same O). Construct a borderline segment.
    let src = "
        int f(int x) {
            int acc = 0;
            for (int i = 0; i < 4; i++) acc += x + i;
            return acc;
        }
        int main() {
            int s = 0;
            for (int k = 0; k < 2000; k++) s += f(k % 8);
            print(s);
            return 0;
        }";
    let program = minic::parse(src).unwrap();
    let o0 = run_pipeline(
        &program,
        &PipelineConfig {
            cost: CostModel::o0(),
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let o3 = run_pipeline(
        &program,
        &PipelineConfig {
            cost: CostModel::o3(),
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let g0 = o0.report.decisions.iter().find(|d| d.name == "f:body");
    let g3 = o3.report.decisions.iter().find(|d| d.name == "f:body");
    if let (Some(g0), Some(g3)) = (g0, g3) {
        assert!(
            g0.measured_c > g3.measured_c,
            "O3 shrinks the measured granularity"
        );
        assert!((g0.overhead_o - g3.overhead_o).abs() < 1e-9);
    }
}

#[test]
fn transformed_program_pretty_prints_check_hash() {
    let input = repeating_input(2000, 25);
    let config = PipelineConfig {
        profile_input: input,
        ..PipelineConfig::default()
    };
    let program = minic::parse(QUAN_G721).unwrap();
    let outcome = run_pipeline(&program, &config).unwrap();
    let text = minic::pretty::print_program(&outcome.transformed.program);
    assert!(text.contains("check_hash("), "{text}");
    assert!(text.contains("computation reuse"), "{text}");
}

#[test]
fn bytes_cap_shrinks_tables() {
    let input = repeating_input(4000, 512);
    let base_cfg = PipelineConfig {
        profile_input: input.clone(),
        ..PipelineConfig::default()
    };
    let capped_cfg = PipelineConfig {
        profile_input: input,
        bytes_cap: Some(1024),
        ..PipelineConfig::default()
    };
    let program = minic::parse(QUAN_G721).unwrap();
    let full_size = run_pipeline(&program, &base_cfg).unwrap();
    let capped = run_pipeline(&program, &capped_cfg).unwrap();
    if !capped.specs.is_empty() && !full_size.specs.is_empty() {
        assert!(capped.specs[0].bytes() <= 1024);
        assert!(capped.specs[0].slots < full_size.specs[0].slots);
    }
}
