//! Failure injection: when the baseline program traps, the memoized
//! program must trap the same way (memoization may only skip *pure*
//! recomputation, never mask or introduce a fault).

use compreuse::{run_pipeline, PipelineConfig};
use vm::RunConfig;

/// Runs both versions; returns (baseline result, memoized result).
fn both(
    src: &str,
    profile_input: Vec<i64>,
    run_input: Vec<i64>,
) -> (Result<vm::Outcome, vm::Trap>, Result<vm::Outcome, vm::Trap>) {
    let program = minic::parse(src).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline (profiling input must be trap-free)");
    let base = vm::run(
        &vm::lower(&outcome.baseline),
        RunConfig {
            input: run_input.clone(),
            ..RunConfig::default()
        },
    );
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input: run_input,
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    );
    (base, memo)
}

#[test]
fn division_trap_reproduces_in_memoized_version() {
    // hot() divides by (x - 13); profiling avoids 13, the real run hits it.
    let src = "
        int hot(int x) {
            int acc = 0;
            for (int i = 1; i < 20; i++) acc += (x * i) / (x - 13);
            return acc;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + hot(input())) & 65535;
            print(s);
            return 0;
        }";
    let profile: Vec<i64> = (0..3000).map(|i| i % 10).collect(); // never 13
    let mut run: Vec<i64> = (0..500).map(|i| i % 10).collect();
    run.push(13); // trap here
    let (base, memo) = both(src, profile, run);
    let bt = base.expect_err("baseline must trap");
    let mt = memo.expect_err("memoized must trap identically");
    assert_eq!(bt, mt);
    assert_eq!(bt, vm::Trap::DivByZero);
}

#[test]
fn trap_free_prefix_outputs_agree() {
    // Before the trap, both versions must have produced the same printed
    // prefix — check by running the trap-free prefix separately.
    let src = "
        int hot(int x) {
            int acc = 1;
            for (int i = 1; i < 15; i++) acc = (acc + x * i) % 1000;
            return acc;
        }
        int main() {
            while (!eof()) print(hot(input()) % (input() + 1));
            return 0;
        }";
    // Pairs (x, d); d = -1 divides by zero.
    let profile: Vec<i64> = (0..2000).flat_map(|i| [i % 6, 3]).collect();
    let good: Vec<i64> = (0..100).flat_map(|i| [i % 6, 3]).collect();
    let (b1, m1) = both(src, profile.clone(), good);
    let (b1, m1) = (b1.unwrap(), m1.unwrap());
    assert_eq!(b1.output_text(), m1.output_text());

    let mut bad: Vec<i64> = (0..100).flat_map(|i| [i % 6, 3]).collect();
    bad.extend([2, -1]); // second input makes the modulus zero
    let (b2, m2) = both(src, profile, bad);
    assert_eq!(b2.unwrap_err(), m2.unwrap_err());
}

#[test]
fn assert_outside_segments_still_fires() {
    // assert() makes a segment illegal (I/O-like), so it stays outside
    // memoized regions and must fire identically.
    let src = "
        int hot(int x) {
            int acc = 0;
            for (int i = 0; i < 25; i++) acc += (x + i) % 97;
            return acc;
        }
        int main() {
            int s = 0;
            while (!eof()) {
                int v = input();
                s = (s + hot(v % 8)) & 65535;
                assert(s >= 0 && v < 1000);
            }
            print(s);
            return 0;
        }";
    let profile: Vec<i64> = (0..2000).map(|i| i % 8).collect();
    let mut run: Vec<i64> = (0..200).map(|i| i % 8).collect();
    run.push(5000); // assertion fails
    let (base, memo) = both(src, profile, run);
    assert_eq!(base.unwrap_err(), vm::Trap::AssertFailed);
    assert_eq!(memo.unwrap_err(), vm::Trap::AssertFailed);
}

#[test]
fn cycle_limit_applies_to_both() {
    let src = "
        int hot(int x) {
            int acc = 0;
            for (int i = 0; i < 50; i++) acc += x * i;
            return acc;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + hot(input() % 4)) & 65535;
            print(s);
            return 0;
        }";
    let profile: Vec<i64> = (0..2000).map(|i| i % 4).collect();
    let program = minic::parse(src).unwrap();
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: profile.clone(),
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    let tiny_budget = RunConfig {
        input: profile.clone(),
        max_cycles: 10_000,
        ..RunConfig::default()
    };
    let base = vm::run(&vm::lower(&outcome.baseline), tiny_budget);
    assert_eq!(base.unwrap_err(), vm::Trap::CycleLimit);
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input: profile,
            tables: outcome.make_tables(),
            max_cycles: 10_000,
            ..RunConfig::default()
        },
    );
    assert_eq!(memo.unwrap_err(), vm::Trap::CycleLimit);
}
