//! Property test: the memoization transform is semantics-preserving on
//! randomized programs and inputs.
//!
//! Programs are generated from a template family — a hot function with a
//! random arithmetic body (always terminating, trap-free by construction)
//! driven by a random input stream — then pushed through the full pipeline
//! and executed against the baseline.

use compreuse::{run_pipeline, PipelineConfig};
use proptest::prelude::*;
use vm::RunConfig;

/// A random straight-line arithmetic expression over `x`, `i`, and `acc`,
/// guaranteed division-free (no trap source).
fn arb_body_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("i".to_string()),
        Just("acc".to_string()),
        (1i64..100).prop_map(|v| v.to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("^"),
                Just("&"),
                Just("|")
            ],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

fn program_with(body_expr: &str, iters: u8, modulus: u32) -> String {
    format!(
        "
        int hot(int x) {{
            int acc = 1;
            for (int i = 0; i < {iters}; i++) {{
                acc = (acc + {body_expr}) % {modulus};
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            int s = 0;
            while (!eof()) s = (s + hot(input())) & 1048575;
            print(s);
            return 0;
        }}"
    )
}

/// A richer trap-free family: the hot function may index a global table
/// (masked index), contain a nested loop, and branch on parity.
fn rich_program(body_expr: &str, iters: u8, modulus: u32, variant: u8) -> String {
    let inner = match variant % 3 {
        0 => format!("acc = (acc + {body_expr}) % {modulus};"),
        1 => {
            format!("for (int j = 0; j < 3; j++) {{ acc = (acc + {body_expr} + j) % {modulus}; }}")
        }
        _ => format!(
            "if ((acc & 1) == 0) {{ acc = (acc + {body_expr}) % {modulus}; }} \
             else {{ acc = (acc + tab[(x + i) & 15]) % {modulus}; }}"
        ),
    };
    format!(
        "
        int tab[16] = {{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}};
        int hot(int x) {{
            int acc = tab[x & 15];
            for (int i = 0; i < {iters}; i++) {{
                {inner}
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            int s = 0;
            while (!eof()) s = (s + hot(input())) & 1048575;
            print(s);
            return 0;
        }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rich_random_programs_preserve_semantics(
        body in arb_body_expr(),
        iters in 4u8..24,
        modulus in 17u32..50_000,
        variant in 0u8..3,
        distinct in 3i64..120,
        n in 400usize..2_500,
    ) {
        let src = rich_program(&body, iters, modulus, variant);
        let input: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig { input: input.clone(), ..RunConfig::default() },
        )
        .expect("baseline");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        prop_assert_eq!(base.output_text(), memo.output_text());
    }

    #[test]
    fn pipeline_preserves_semantics_on_random_programs(
        body in arb_body_expr(),
        iters in 8u8..40,
        modulus in 17u32..100_000,
        distinct in 3i64..200,
        n in 500usize..4_000,
    ) {
        let src = program_with(&body, iters, modulus);
        let input: Vec<i64> = (0..n).map(|i| (i as i64 * 31) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig { input: input.clone(), ..RunConfig::default() },
        )
        .expect("baseline");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        prop_assert_eq!(base.output_text(), memo.output_text());
        // With few distinct inputs and a nontrivial body, hot() is
        // normally chosen; when it is, the memoized run must not lose.
        if outcome.report.transformed > 0 && base.cycles > 0 {
            let d = outcome.report.decisions.iter().find(|d| d.chosen);
            prop_assert!(d.is_some());
        }
    }

    /// Formula-1/2 algebra: the measured table hit ratio matches the
    /// profiled effective reuse rate when the table is big enough.
    #[test]
    fn measured_hits_match_profiled_reuse(distinct in 4i64..400) {
        let src = program_with("(x * 13)", 20, 9973);
        let n = 6_000usize;
        let input: Vec<i64> = (0..n).map(|i| (i as i64 * 7) % distinct).collect();
        let program = minic::parse(&src).expect("parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig { profile_input: input.clone(), ..PipelineConfig::default() },
        )
        .expect("pipeline");
        let Some(d) = outcome.report.decisions.iter().find(|d| d.name == "hot:body") else {
            return Ok(());
        };
        if !d.chosen {
            return Ok(());
        }
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        let hit = memo.tables[d.assignment.unwrap().table].stats().hit_ratio();
        prop_assert!(
            (hit - d.effective_rate).abs() < 0.02,
            "hit ratio {} vs profiled effective rate {}",
            hit,
            d.effective_rate
        );
    }
}
