//! Adaptive-degradation integration tests: a forced-collision access
//! stream must flip a table to `Bypassed` (and back through probation)
//! without ever changing program outputs.

use compreuse::{run_pipeline, PipelineConfig};
use memo_runtime::{GuardPolicy, MemoTable, TableSpec, TableState};
use vm::RunConfig;

/// Small epochs so the guard reacts within a test-sized run.
fn aggressive(policy: &GuardPolicy) -> GuardPolicy {
    GuardPolicy {
        enabled: true,
        epoch_len: 64,
        margin: 0.10,
        k_epochs: 2,
        bypass_epochs: 2,
        max_resizes: 0,
        ..policy.clone()
    }
}

#[test]
fn forced_collisions_bypass_and_reenable_a_raw_table() {
    let spec = TableSpec {
        slots: 4,
        key_words: 1,
        out_words: vec![1],
    };
    let mut table = MemoTable::try_direct(&spec).expect("valid spec");
    table.set_policy(aggressive(&GuardPolicy::default()));

    // The table's contract, bypassed or not: a hit only ever returns what
    // was recorded for that exact key. `f` is the pure function being
    // memoized; every lookup that hits must agree with it.
    let f = |k: u64| k.wrapping_mul(0x9E37) ^ 0x5EED;
    let check = |table: &mut MemoTable, k: u64| {
        let mut out = Vec::new();
        if table.lookup(0, &[k], &mut out) {
            assert_eq!(out, vec![f(k)], "hit returned another key's outputs");
        } else {
            table.record(0, &[k], &[f(k)]);
        }
    };

    // Phase 1 — adversarial: all-distinct keys, every record collides.
    let mut k = 0u64;
    while table.state() != TableState::Bypassed {
        check(&mut table, k);
        k += 1;
        assert!(k < 100_000, "guard never bypassed the table");
    }
    let flips: Vec<&str> = table
        .telemetry()
        .transitions()
        .iter()
        .map(|t| t.to.name())
        .collect();
    assert!(flips.contains(&"bypassed"));

    // Phase 2 — benign: a tiny working set. The bypassed table first
    // spins through its bypass epochs, probes in probation, and re-enables.
    let mut spins = 0u64;
    while table.state() != TableState::Active {
        check(&mut table, spins % 4);
        spins += 1;
        assert!(spins < 100_000, "guard never re-enabled the table");
    }
    let names: Vec<&str> = table
        .telemetry()
        .transitions()
        .iter()
        .map(|t| t.to.name())
        .collect();
    assert!(names.contains(&"probation"), "transitions: {names:?}");
    assert_eq!(*names.last().unwrap(), "active");

    // Re-enabled table serves correct hits again.
    let mut out = Vec::new();
    table.record(0, &[7], &[f(7)]);
    assert!(table.lookup(0, &[7], &mut out));
    assert_eq!(out, vec![f(7)]);
}

#[test]
fn bypassed_program_output_matches_baseline() {
    // Profile with a repetitive input (high predicted reuse, low predicted
    // collisions), then execute on an adversarial all-distinct input that
    // thrashes the table. With the adaptive guard enabled the table
    // degrades to `Bypassed` mid-run; outputs must still match the
    // baseline exactly.
    let src = "
        int mix(int x) {
            int t = x;
            for (int i = 0; i < 40; i++) t = (t * 31 + i) % 65536;
            return t;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + mix(input())) & 65535;
            print(s);
            return 0;
        }";
    let profile_input: Vec<i64> = (0..4_000).map(|i| i % 5).collect();
    let adversarial: Vec<i64> = (0..12_000).collect();

    let program = minic::parse(src).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    assert!(outcome.report.transformed >= 1, "mix must be memoized");

    let base = vm::run(
        &vm::lower(&outcome.baseline),
        RunConfig {
            input: adversarial.clone(),
            ..RunConfig::default()
        },
    )
    .expect("baseline");

    let mut tables = outcome.make_adaptive_tables();
    for t in &mut tables {
        let p = aggressive(t.policy());
        t.set_policy(p);
    }
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input: adversarial,
            tables,
            ..RunConfig::default()
        },
    )
    .expect("memoized");

    assert_eq!(
        base.output_text(),
        memo.output_text(),
        "bypass must not change program results"
    );
    let states: Vec<&str> = memo
        .tables
        .iter()
        .flat_map(|t| t.telemetry().transitions())
        .map(|tr| tr.to.name())
        .collect();
    assert!(
        states.contains(&"bypassed"),
        "adversarial input should trip the guard; transitions: {states:?}"
    );
    let bypassed_lookups: u64 = memo
        .tables
        .iter()
        .map(|t| t.telemetry().bypassed_total())
        .sum();
    assert!(bypassed_lookups > 0, "some lookups must have been bypassed");
}

#[test]
fn disabled_guard_is_inert_on_the_same_adversarial_run() {
    // The same thrashing run through `make_tables` (guard disabled) must
    // never change state: observation alone cannot perturb the paper's
    // static scheme.
    let src = "
        int mix(int x) {
            int t = x;
            for (int i = 0; i < 40; i++) t = (t * 31 + i) % 65536;
            return t;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + mix(input())) & 65535;
            print(s);
            return 0;
        }";
    let program = minic::parse(src).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: (0..4_000).map(|i| i % 5).collect(),
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input: (0..12_000).collect(),
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    )
    .expect("memoized");
    for t in &memo.tables {
        assert_eq!(t.state(), TableState::Active);
        assert!(t.telemetry().transitions().is_empty());
        assert_eq!(t.telemetry().bypassed_total(), 0);
    }
}
