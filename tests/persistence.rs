//! Snapshot persistence at the public API (DESIGN.md §8i).
//!
//! A property test drives arbitrary store contents — mixed exact and
//! dependency-fingerprinted segments, random key streams, admission on
//! or off — through a snapshot/restore round trip and requires the
//! restored store to be observationally identical: same statistics,
//! same hit/miss verdict and payload for every probe shape (exact,
//! green-validated, forced red). Regression tests then feed corrupt,
//! truncated, and version-bumped snapshots to both the word-level API
//! and a full `ReuseService`, requiring a clean cold start — never a
//! panic, never a partial import.

use memo_runtime::{
    restore_words, snapshot_words, ShardedTable, SnapshotError, TableSpec, SNAPSHOT_VERSION,
};
use proptest::prelude::*;

/// One generated segment: payload width and fingerprint width (0 =
/// exact-match segment).
type SegPlan = (usize, usize);

/// Builds a store for `slots`/`shards` with the given segment plan and
/// admission setting, applying `set_deps` for fingerprinted segments.
fn build_store(slots: usize, shards: usize, segs: &[SegPlan], admission: bool) -> ShardedTable {
    let spec = TableSpec {
        slots,
        key_words: 1,
        out_words: segs.iter().map(|(w, _)| *w).collect(),
    };
    let mut store = ShardedTable::try_from_spec(&spec, shards).expect("generated spec is valid");
    for (seg, (_, fp)) in segs.iter().enumerate() {
        if *fp > 0 {
            store.set_deps(seg, *fp);
        }
    }
    store.set_admission(admission);
    store
}

/// Replays `keys` into `store`: fingerprinted segments record through
/// `record_dep`, exact segments through `record`, and every record is
/// preceded by a lookup so the stream accrues hits, misses, collisions,
/// and evictions (whatever the generated geometry produces — the round
/// trip must preserve all of it, collisions included).
fn populate(store: &ShardedTable, segs: &[SegPlan], keys: &[(u64, usize)]) {
    let mut out = Vec::new();
    for &(key, pick) in keys {
        let seg = pick % segs.len();
        let (width, fp_words) = segs[seg];
        store.lookup(seg, &[key], &mut out);
        let vals: Vec<u64> = (0..width as u64).map(|i| key.wrapping_mul(7) + i).collect();
        if fp_words > 0 {
            let fp: Vec<u64> = (0..fp_words as u64).map(|i| key ^ (i + 1)).collect();
            store.record_dep(seg, &[key], &vals, &fp);
        } else {
            store.record(seg, &[key], &vals);
        }
    }
}

/// Probes every key in all three shapes — exact lookup, green-validated
/// `lookup_dep`, and forced-red `lookup_dep` — returning the verdicts
/// and payloads as one comparable trace.
fn probe_trace(
    store: &ShardedTable,
    segs: &[SegPlan],
    keys: &[(u64, usize)],
) -> Vec<(bool, Vec<u64>)> {
    let mut trace = Vec::new();
    for &(key, pick) in keys {
        let seg = pick % segs.len();
        let mut out = Vec::new();
        let hit = store.lookup(seg, &[key], &mut out);
        trace.push((hit, out.clone()));
        let mut accept = |_fp: &[u64]| true;
        out.clear();
        let green = store.lookup_dep(seg, &[key], &mut out, true, Some(&mut accept));
        trace.push((green, out.clone()));
        out.clear();
        let red = store.lookup_dep(seg, &[key], &mut out, true, None);
        trace.push((red, out));
    }
    trace
}

fn seg_strategy() -> impl Strategy<Value = Vec<SegPlan>> {
    prop::collection::vec((1usize..=2, 0usize..=2), 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip property: for arbitrary geometry and contents, the
    /// restored store is observationally identical to the original —
    /// statistics carry over through the baseline, and every probe
    /// (exact, green, forced red) returns the same verdict and payload.
    #[test]
    fn snapshot_round_trip_is_observationally_identical(
        slots_pick in 0usize..3,
        shards_pick in 0usize..3,
        segs in seg_strategy(),
        keys in prop::collection::vec((0u64..512, 0usize..8), 1..80),
        admission in prop::bool::ANY,
    ) {
        let slots = [32, 64, 128][slots_pick];
        let shards = [1, 2, 4][shards_pick];
        let original = build_store(slots, shards, &segs, admission);
        populate(&original, &segs, &keys);

        let words = snapshot_words(&[&original]);
        let mut restored = build_store(slots, shards, &segs, admission);
        restore_words(&mut [&mut restored], &words).expect("round trip restores");

        prop_assert_eq!(restored.stats(), original.stats());
        let want = probe_trace(&original, &segs, &keys);
        let got = probe_trace(&restored, &segs, &keys);
        prop_assert_eq!(got, want);
        // Both traces mutated the counters identically, so the stores
        // still agree after the probes.
        prop_assert_eq!(restored.stats(), original.stats());
    }
}

/// A store, its snapshot words, and the key set that filled it — the
/// fixture for the corruption regressions.
fn snapshot_fixture() -> (Vec<SegPlan>, Vec<(u64, usize)>, Vec<u64>) {
    let segs = vec![(1, 0), (2, 2)];
    let keys: Vec<(u64, usize)> = (0..24u64).map(|k| (k * 5 + 1, k as usize)).collect();
    let store = build_store(64, 2, &segs, false);
    populate(&store, &segs, &keys);
    (segs, keys, snapshot_words(&[&store]))
}

/// Recomputes the trailing checksum word after a deliberate mutation so
/// a test reaches the validation stage it targets instead of tripping
/// the checksum first.
fn fix_checksum(words: &mut [u64]) {
    let n = words.len();
    let sum = words[..n - 1]
        .iter()
        .fold(0u64, |acc, w| acc.wrapping_add(*w));
    words[n - 1] = sum;
}

/// After a refused restore the target must still be a working cold
/// store: empty, recordable, probeable.
fn assert_cold_and_working(store: &ShardedTable) {
    let mut out = Vec::new();
    store.record(0, &[3], &[42]);
    assert!(store.lookup(0, &[3], &mut out), "cold store still records");
    assert_eq!(out, vec![42]);
}

#[test]
fn truncated_snapshots_are_refused() {
    let (segs, _keys, words) = snapshot_fixture();
    for cut in [1usize, 7, words.len() / 2] {
        let mut target = build_store(64, 2, &segs, false);
        let short = &words[..words.len() - cut];
        let err = restore_words(&mut [&mut target], short).expect_err("truncation must fail");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated | SnapshotError::ChecksumMismatch
            ),
            "unexpected error for truncation by {cut}: {err}"
        );
        assert_cold_and_working(&target);
    }
}

#[test]
fn bitflipped_snapshots_are_refused() {
    let (segs, _keys, words) = snapshot_fixture();
    for pos in [0usize, 2, words.len() / 2, words.len() - 1] {
        let mut bad = words.clone();
        bad[pos] ^= 1 << 17;
        let mut target = build_store(64, 2, &segs, false);
        let err = restore_words(&mut [&mut target], &bad).expect_err("bit flip must fail");
        // Which stage catches the flip depends on the word hit; the
        // contract is only that *some* stage does, without a panic.
        let _ = err.to_string();
        assert_cold_and_working(&target);
    }
}

#[test]
fn version_bumped_snapshots_are_refused() {
    let (segs, _keys, mut words) = snapshot_fixture();
    words[1] = SNAPSHOT_VERSION + 1;
    fix_checksum(&mut words);
    let mut target = build_store(64, 2, &segs, false);
    let err = restore_words(&mut [&mut target], &words).expect_err("future version must fail");
    assert!(
        matches!(err, SnapshotError::UnsupportedVersion(v) if v == SNAPSHOT_VERSION + 1),
        "unexpected error: {err}"
    );
    assert_cold_and_working(&target);
}

#[test]
fn geometry_mismatches_are_refused() {
    let (segs, _keys, words) = snapshot_fixture();
    // Same word stream, different target geometry: more slots.
    let mut wrong = build_store(128, 2, &segs, false);
    let err = restore_words(&mut [&mut wrong], &words).expect_err("slot mismatch must fail");
    assert!(
        matches!(
            err,
            SnapshotError::GeometryMismatch(_) | SnapshotError::Corrupt(_)
        ),
        "unexpected error: {err}"
    );
    assert_cold_and_working(&wrong);
}

/// End-to-end through `ReuseService`: warm a tiny service, snapshot it,
/// "restart" by resetting the stores, restore, and require the restored
/// service to answer the same batch with identical fingerprints at a
/// warm hit ratio. Then corrupt the file on disk and require the next
/// restore to cold-start cleanly.
#[test]
fn service_restores_warm_and_cold_starts_on_corruption() {
    use bench::serve::{build_service, ServeOpts};

    let ws = vec![workloads::by_name("UNEPIC").expect("workload exists")];
    let opts = ServeOpts {
        scale: 0.05,
        requests_per_workload: 4,
        ..ServeOpts::default()
    };
    let (mut svc, requests) = build_service(&ws, &opts, 2);
    let baseline: Vec<u64> = svc.run_private_sequential(&requests).fingerprints();
    let cold = svc.run(&requests);
    let warm = svc.run(&requests);
    assert_eq!(warm.fingerprints(), baseline, "warm answers match");

    let path = std::env::temp_dir().join(format!(
        "compreuse-persistence-it-{}.snap",
        std::process::id()
    ));
    svc.snapshot_to(&path).expect("snapshot writes");
    svc.reset_stores().expect("reset rebuilds stores");
    assert!(svc.restore_from(&path).is_restored(), "restore succeeds");
    let restored = svc.run(&requests);
    assert_eq!(restored.fingerprints(), baseline, "restored answers match");
    assert!(
        restored.hit_ratio() >= warm.hit_ratio() - 0.05,
        "restored batch resumes warm: {:.4} vs {:.4}",
        restored.hit_ratio(),
        warm.hit_ratio()
    );
    assert!(
        restored.hit_ratio() > cold.hit_ratio(),
        "restored batch beats cold: {:.4} vs {:.4}",
        restored.hit_ratio(),
        cold.hit_ratio()
    );

    // Corrupt the file; the service must cold-start, not panic, and the
    // cold run must still produce the baseline answers.
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite");
    svc.reset_stores().expect("reset");
    let outcome = svc.restore_from(&path);
    assert!(!outcome.is_restored(), "corrupt file cold-starts");
    let after = svc.run(&requests);
    assert_eq!(after.fingerprints(), baseline, "cold answers still match");
    let _ = std::fs::remove_file(&path);
}
