//! Cross-crate end-to-end tests: source text → pipeline → execution,
//! asserting semantic preservation on adversarial programs and the
//! paper-level invariants on the bundled workloads.

use compreuse::{run_pipeline, PipelineConfig};
use vm::{CostModel, OptLevel, RunConfig};

/// Runs the pipeline and both program versions; asserts identical output;
/// returns (baseline cycles, memo cycles, transformed count).
fn roundtrip(src: &str, input: Vec<i64>) -> (u64, u64, usize) {
    let program = minic::parse(src).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: input.clone(),
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    let base = vm::run(
        &vm::lower(&outcome.baseline),
        RunConfig {
            input: input.clone(),
            ..RunConfig::default()
        },
    )
    .expect("baseline");
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input,
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    )
    .expect("memoized");
    assert_eq!(
        base.output_text(),
        memo.output_text(),
        "transformation must preserve semantics:\n{src}"
    );
    (base.cycles, memo.cycles, outcome.report.transformed)
}

#[test]
fn memoized_function_with_internal_control_flow() {
    // Multiple returns, breaks, nested loops inside the reused body.
    let src = "
        int classify(int x) {
            if (x < 0) return -1;
            int acc = 0;
            for (int i = 0; i < 30; i++) {
                acc += (x + i) % 7;
                if (acc > 50) break;
            }
            while (acc > 9) acc -= 9;
            return acc;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + classify(input() % 40 - 5)) & 65535;
            print(s);
            return 0;
        }";
    let input: Vec<i64> = (0..20_000).map(|i| i % 37).collect();
    let (b, m, t) = roundtrip(src, input);
    assert!(t >= 1);
    assert!(m < b);
}

#[test]
fn segment_reading_and_writing_same_global() {
    // An accumulator-style global is both input and output of the segment.
    let src = "
        int state = 3;
        int crank(int x) {
            int t = state;
            for (int i = 0; i < 25; i++) t = (t * 31 + x) % 65536;
            state = t;
            return t & 255;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + crank(input() % 4)) & 1048575;
            print(s);
            print(state);
            return 0;
        }";
    // state varies, so (x, state) pairs rarely repeat → likely no
    // transform; semantics must hold regardless.
    let input: Vec<i64> = (0..5_000).map(|i| i % 4).collect();
    roundtrip(src, input);
}

#[test]
fn float_segment_bit_exact_replay() {
    // Float outputs must be restored bit-exactly from the table.
    let src = "
        float lut(int x) {
            float acc = 0.5;
            for (int i = 0; i < 40; i++) {
                acc = acc * 1.0009765625 + (float)x * 0.015625;
            }
            return acc;
        }
        int main() {
            float total = 0.0;
            while (!eof()) total = total + lut(input() % 12);
            print(total);
            return 0;
        }";
    let input: Vec<i64> = (0..30_000).map(|i| (i * 5) % 12).collect();
    let (b, m, t) = roundtrip(src, input);
    assert!(t >= 1, "12 DIPs over 30k calls must be memoized");
    assert!(m < b);
}

#[test]
fn recursive_function_memoizes_safely() {
    let src = "
        int weird(int n) {
            if (n < 2) return n + 1;
            int acc = 0;
            for (int i = 0; i < 12; i++) acc += (n + i) % 9;
            return acc + weird(n - 3) % 16;
        }
        int main() {
            int s = 0;
            while (!eof()) s = (s + weird(input() % 30)) & 1048575;
            print(s);
            return 0;
        }";
    let input: Vec<i64> = (0..8_000).map(|i| i % 30).collect();
    let (b, m, _) = roundtrip(src, input);
    assert!(m <= b, "memoized recursion must not slow down: {m} vs {b}");
}

#[test]
fn block_in_block_out_through_pointers() {
    let src = "
        int buf[16];
        int mix[16];
        void stir(int *p) {
            for (int r = 0; r < 6; r++) {
                for (int i = 0; i < 16; i++) {
                    p[i] = (p[i] * 5 + p[(i + 1) % 16]) % 4096;
                }
            }
        }
        int main() {
            int s = 0;
            while (!eof()) {
                for (int i = 0; i < 16; i++) buf[i] = input() % 8;
                stir(buf);
                for (int i = 0; i < 16; i++) s = (s + buf[i]) & 1048575;
            }
            print(s);
            return 0;
        }";
    // Blocks drawn from a tiny alphabet repeat heavily.
    let input: Vec<i64> = (0..3_000 * 16).map(|i| (i / 16) % 5).collect();
    let (b, m, t) = roundtrip(src, input);
    assert_eq!(t, 1, "stir's body is the reused block segment");
    assert!(m < b);
    // `mix` exists to ensure unrelated globals are untouched by analysis.
    let _ = ();
}

#[test]
fn workloads_preserve_semantics_under_both_cost_models() {
    for w in workloads::all_eleven() {
        let input = (w.default_input)(0.01);
        let program = minic::parse(&w.source).expect("parse");
        for opt in [OptLevel::O0, OptLevel::O3] {
            let outcome = run_pipeline(
                &program,
                &PipelineConfig {
                    cost: CostModel::for_level(opt),
                    profile_input: input.clone(),
                    ..PipelineConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{} pipeline failed: {e}", w.name));
            let base = vm::run(
                &vm::lower(&outcome.baseline),
                RunConfig {
                    cost: CostModel::for_level(opt),
                    input: input.clone(),
                    ..RunConfig::default()
                },
            )
            .expect("baseline");
            let memo = vm::run(
                &vm::lower(&outcome.transformed),
                RunConfig {
                    cost: CostModel::for_level(opt),
                    input: input.clone(),
                    tables: outcome.make_tables(),
                    ..RunConfig::default()
                },
            )
            .expect("memoized");
            assert_eq!(
                base.output_text(),
                memo.output_text(),
                "{} diverged under {opt}",
                w.name
            );
        }
    }
}

#[test]
fn transformation_decided_on_one_input_is_safe_on_another() {
    // Profile on default inputs, run on alternates (the Table 10
    // scenario) — decisions may be stale but never unsound.
    for w in workloads::main_seven() {
        let profile_input = (w.default_input)(0.01);
        let run_input = (w.alt_input)(0.01);
        let program = minic::parse(&w.source).expect("parse");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input,
                ..PipelineConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} pipeline failed: {e}", w.name));
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                input: run_input.clone(),
                ..RunConfig::default()
            },
        )
        .expect("baseline");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input: run_input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        assert_eq!(
            base.output_text(),
            memo.output_text(),
            "{} diverged on alternate inputs",
            w.name
        );
    }
}

#[test]
fn tiny_tables_change_performance_not_semantics() {
    // A 1-slot table thrashes but must stay correct.
    let w = workloads::unepic::unepic();
    let input = (w.default_input)(0.02);
    let program = minic::parse(&w.source).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: input.clone(),
            bytes_cap: Some(1),
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    let base = vm::run(
        &vm::lower(&outcome.baseline),
        RunConfig {
            input: input.clone(),
            ..RunConfig::default()
        },
    )
    .expect("baseline");
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input,
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    )
    .expect("memoized");
    assert_eq!(base.output_text(), memo.output_text());
    if let Some(t) = memo.tables.first() {
        assert!(t.bytes() < 256, "cap respected: {}", t.bytes());
    }
}
