//! Property test: the tree-walking and bytecode engines produce identical
//! [`vm::Outcome`]s — output, return value, modelled cycles/energy, table
//! statistics — on randomized MiniC programs, including trap parity when
//! the program faults.

use compreuse::{run_pipeline, PipelineConfig};
use proptest::prelude::*;
use vm::{Engine, RunConfig};

/// A random arithmetic expression over `x`, `i`, and `acc`. With
/// `div_by` set, a division by `(x - div_by)` is injected so specific
/// inputs trap.
fn arb_body_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("i".to_string()),
        Just("acc".to_string()),
        (1i64..100).prop_map(|v| v.to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("^"),
                Just("&"),
                Just("|")
            ],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

fn program_with(body_expr: &str, iters: u8, modulus: u32, div_by: Option<i64>) -> String {
    let step = match div_by {
        Some(k) => format!("acc = (acc + {body_expr}) % {modulus} + x / (x - {k});"),
        None => format!("acc = (acc + {body_expr}) % {modulus};"),
    };
    format!(
        "
        int hot(int x) {{
            int acc = 1;
            for (int i = 0; i < {iters}; i++) {{
                {step}
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            int s = 0;
            while (!eof()) s = (s + hot(input())) & 1048575;
            print(s);
            return 0;
        }}"
    )
}

/// Everything an [`vm::Outcome`] observes, as a deterministic string.
fn fingerprint(o: &vm::Outcome) -> String {
    let stats: Vec<_> = o.tables.iter().map(|t| *t.stats()).collect();
    format!(
        "out={:?} ret={} cycles={} energy={} words={} calls={:?} loops={:?} branches={:?} \
         tables={stats:?}",
        o.output_text(),
        o.ret,
        o.cycles,
        o.energy_joules.to_bits(),
        o.table_words,
        o.func_calls,
        o.loop_counts,
        o.branch_counts,
    )
}

/// Runs `module` under one engine.
fn run_one(
    module: &vm::Module,
    input: &[i64],
    tables: Vec<memo_runtime::MemoTable>,
    engine: Engine,
) -> Result<vm::Outcome, vm::Trap> {
    vm::run(
        module,
        RunConfig {
            input: input.to_vec(),
            tables,
            engine,
            ..RunConfig::default()
        },
    )
}

/// Both engines on both program versions must agree bit-for-bit (or trap
/// identically).
fn assert_engines_agree(outcome: &compreuse::ReuseOutcome, input: &[i64]) {
    for module in [
        vm::lower(&outcome.baseline),
        vm::lower(&outcome.transformed),
    ] {
        let tree = run_one(&module, input, outcome.make_tables(), Engine::Tree);
        let bc = run_one(&module, input, outcome.make_tables(), Engine::Bytecode);
        match (tree, bc) {
            (Ok(a), Ok(b)) => assert_eq!(fingerprint(&a), fingerprint(&b)),
            (Err(a), Err(b)) => assert_eq!(a, b, "engines trapped differently"),
            (a, b) => panic!(
                "engines diverged: tree={:?} bytecode={:?}",
                a.map(|o| o.output_text()),
                b.map(|o| o.output_text())
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_agree_on_random_programs(
        body in arb_body_expr(),
        iters in 4u8..24,
        modulus in 17u32..50_000,
        distinct in 3i64..120,
        n in 300usize..1_500,
    ) {
        let src = program_with(&body, iters, modulus, None);
        let input: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        assert_engines_agree(&outcome, &input);
    }

    #[test]
    fn engines_trap_identically(
        body in arb_body_expr(),
        iters in 4u8..16,
        modulus in 17u32..10_000,
        distinct in 3i64..40,
        trap_at in 0usize..400,
    ) {
        // hot() divides by (x - 7); profiling avoids 7, the run input
        // injects it at a random position, so both engines must trap at
        // exactly the same point with exactly the same trap.
        let src = program_with(&body, iters, modulus, Some(7));
        let profile: Vec<i64> =
            (0..1_000).map(|i| 8 + (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: profile.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline (profile input is trap-free)");
        let mut run = profile;
        run.insert(trap_at.min(run.len()), 7); // div-by-zero here
        assert_engines_agree(&outcome, &run);
    }
}
