//! Property test: the tree-walking, bytecode, and profile-guided
//! specialized engines produce identical [`vm::Outcome`]s — output,
//! return value, modelled cycles/energy, table statistics — on
//! randomized MiniC programs, including trap parity when the program
//! faults and deopt parity when a specialization guard fails mid-run.

use compreuse::{run_pipeline, PipelineConfig};
use proptest::prelude::*;
use std::sync::Arc;
use vm::{Engine, RunConfig};

const ENGINES: [Engine; 3] = [Engine::Tree, Engine::Bytecode, Engine::Specialized];

/// A random arithmetic expression over `x`, `i`, and `acc`. With
/// `div_by` set, a division by `(x - div_by)` is injected so specific
/// inputs trap.
fn arb_body_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("i".to_string()),
        Just("acc".to_string()),
        (1i64..100).prop_map(|v| v.to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("^"),
                Just("&"),
                Just("|")
            ],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

fn program_with(body_expr: &str, iters: u8, modulus: u32, div_by: Option<i64>) -> String {
    let step = match div_by {
        Some(k) => format!("acc = (acc + {body_expr}) % {modulus} + x / (x - {k});"),
        None => format!("acc = (acc + {body_expr}) % {modulus};"),
    };
    format!(
        "
        int hot(int x) {{
            int acc = 1;
            for (int i = 0; i < {iters}; i++) {{
                {step}
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            int s = 0;
            while (!eof()) s = (s + hot(input())) & 1048575;
            print(s);
            return 0;
        }}"
    )
}

/// Everything an [`vm::Outcome`] observes, as a deterministic string.
fn fingerprint(o: &vm::Outcome) -> String {
    let stats: Vec<_> = o.tables.iter().map(|t| *t.stats()).collect();
    format!(
        "out={:?} ret={} cycles={} energy={} words={} calls={:?} loops={:?} branches={:?} \
         tables={stats:?}",
        o.output_text(),
        o.ret,
        o.cycles,
        o.energy_joules.to_bits(),
        o.table_words,
        o.func_calls,
        o.loop_counts,
        o.branch_counts,
    )
}

/// Runs `module` under one engine. The plan is ignored by every engine
/// except [`Engine::Specialized`].
fn run_one(
    module: &vm::Module,
    input: &[i64],
    tables: Vec<memo_runtime::MemoTable>,
    engine: Engine,
    plan: Option<Arc<vm::SpecPlan>>,
) -> Result<vm::Outcome, vm::Trap> {
    vm::run(
        module,
        RunConfig {
            input: input.to_vec(),
            tables,
            engine,
            spec_plan: plan,
            ..RunConfig::default()
        },
    )
}

/// All engines on both program versions must agree bit-for-bit (or trap
/// identically). The specialized tier runs the pipeline's mined plan
/// when there is one.
fn assert_engines_agree(outcome: &compreuse::ReuseOutcome, input: &[i64]) {
    let plan = outcome.spec_plan.clone().map(Arc::new);
    for module in [
        vm::lower(&outcome.baseline),
        vm::lower(&outcome.transformed),
    ] {
        let runs: Vec<Result<vm::Outcome, vm::Trap>> = ENGINES
            .iter()
            .map(|&e| run_one(&module, input, outcome.make_tables(), e, plan.clone()))
            .collect();
        for pair in runs.windows(2) {
            match (&pair[0], &pair[1]) {
                (Ok(a), Ok(b)) => assert_eq!(fingerprint(a), fingerprint(b)),
                (Err(a), Err(b)) => assert_eq!(a, b, "engines trapped differently"),
                (a, b) => panic!(
                    "engines diverged: {:?} vs {:?}",
                    a.as_ref().map(|o| o.output_text()),
                    b.as_ref().map(|o| o.output_text())
                ),
            }
        }
    }
}

/// A profiling input dominated by one recurring operand value: `dom`
/// appears on two of every three calls, the rest cycle over `distinct`
/// other values. This is the shape the specializer mines — the plan
/// bakes `dom` into a cloned segment body behind a guard.
fn dominant_input(dom: i64, distinct: i64, n: usize) -> Vec<i64> {
    (0..n)
        .map(|i| {
            if i % 3 != 0 {
                dom
            } else {
                dom + 1 + (i as i64 * 13) % distinct
            }
        })
        .collect()
}

/// Like [`program_with`] but with a 32-word global array the hot
/// function reads and the driver loop occasionally mutates: large enough
/// for §8g key reduction and written between `hot` calls, so `hot`'s
/// memo key drops the array and its entries carry *mutable* dependency
/// fingerprints — probes must validate them against the chunk epochs,
/// promoting still-valid entries green and forcing stale ones red.
fn dep_program_with(body_expr: &str, iters: u8, modulus: u32) -> String {
    format!(
        "
        int lut[32];
        int hot(int x) {{
            int acc = 1;
            for (int i = 0; i < {iters}; i++) {{
                acc = (acc + lut[(x + i) % 32] + {body_expr}) % {modulus};
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            for (int i = 0; i < 32; i++) lut[i] = i * 3 + 1;
            int s = 0;
            int t = 0;
            while (!eof()) {{
                s = (s + hot(input())) & 1048575;
                t = t + 1;
                if (t % 64 == 0) lut[t % 32] = lut[t % 32] + 1;
            }}
            print(s);
            return 0;
        }}"
    )
}

/// Chains two runs of `module` under one engine: a cold run on `input_a`
/// populating fresh tables, then a warm run on `input_b` reusing them —
/// the configuration where dependency validation promotes entries green.
fn run_chained(
    module: &vm::Module,
    outcome: &compreuse::ReuseOutcome,
    input_a: &[i64],
    input_b: &[i64],
    engine: Engine,
) -> (vm::Outcome, vm::Outcome) {
    let plan = outcome.spec_plan.clone().map(Arc::new);
    let cold =
        run_one(module, input_a, outcome.make_tables(), engine, plan.clone()).expect("cold run");
    let warm = run_one(module, input_b, cold.tables.clone(), engine, plan).expect("warm run");
    (cold, warm)
}

/// A fixed instance of the dependency-keyed template, deterministic
/// enough to assert green hits actually happen: the warm run re-probes
/// keys recorded cold, the `lut` fingerprints still hold (main rebuilds
/// the array identically), so entries promote green — and the answers
/// must equal the from-scratch baseline bit for bit on both engines.
#[test]
fn green_promoted_warm_run_matches_from_scratch() {
    let src = dep_program_with("(x * 7 + i)", 12, 7919);
    let input_a: Vec<i64> = (0..600).map(|i| (i * 13) % 40).collect();
    // Perturbed rerun: overlapping key set, shifted mix.
    let input_b: Vec<i64> = (0..600).map(|i| (i * 11) % 40).collect();
    let program = minic::parse(&src).expect("template parses");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: input_a.clone(),
            min_exec: 8,
            engine: Engine::Specialized,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    assert!(
        outcome.table_deps.iter().flatten().any(|&fpw| fpw > 0),
        "template should plan at least one dependency-keyed segment"
    );
    let base = vm::lower(&outcome.baseline);
    let memo = vm::lower(&outcome.transformed);
    let base_b = run_one(&base, &input_b, vec![], Engine::Tree, None).expect("baseline");
    let chains: Vec<(vm::Outcome, vm::Outcome)> = ENGINES
        .iter()
        .map(|&e| run_chained(&memo, &outcome, &input_a, &input_b, e))
        .collect();
    let (tree_cold, tree_warm) = &chains[0];
    // §8e: the warm, green-promoted run computes the from-scratch answer.
    assert_eq!(tree_warm.output_text(), base_b.output_text());
    assert_eq!(tree_warm.ret, base_b.ret);
    // Engine parity holds for the whole chain, green stats included.
    for (cold, warm) in &chains[1..] {
        assert_eq!(fingerprint(tree_cold), fingerprint(cold));
        assert_eq!(fingerprint(tree_warm), fingerprint(warm));
    }
    let green: u64 = tree_warm.tables.iter().map(|t| t.stats().green_hits).sum();
    assert!(green > 0, "warm run promoted no entries green");
}

/// Deterministic deopt regression (§8j): a segment specialized on a
/// dominant operand `v`, probed only with values `v' != v`, must fall
/// back to the generic body exactly once per probe, charge the same
/// modelled cycles as the generic engine, and never record a table
/// entry under the baked (specialized) key.
#[test]
fn deopt_falls_back_once_per_probe() {
    let dom = 5i64;
    let src = program_with("(x * 3 + i)", 10, 4093, None);
    let profile = dominant_input(dom, 20, 600);
    let program = minic::parse(&src).expect("template parses");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: profile,
            min_exec: 8,
            engine: Engine::Specialized,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    let plan = outcome.spec_plan.clone().map(Arc::new).expect("mined plan");
    assert!(
        !plan.dominants.is_empty(),
        "dominant-operand template must mine a dominant key"
    );
    let memo = vm::lower(&outcome.transformed);
    // Every probe value differs from the baked dominant: each repeats, so
    // the table hits after the first occurrence; every *miss* evaluates
    // the guard and must deopt.
    let probe_input: Vec<i64> = (0..400).map(|i| dom + 30 + (i % 10)).collect();
    let spec = run_one(
        &memo,
        &probe_input,
        outcome.make_tables(),
        Engine::Specialized,
        Some(plan),
    )
    .expect("specialized run");
    let generic = run_one(
        &memo,
        &probe_input,
        outcome.make_tables(),
        Engine::Bytecode,
        None,
    )
    .expect("generic run");
    // Identical cycle charges and table statistics (fingerprint covers
    // cycles, energy bits, and per-table stats).
    assert_eq!(fingerprint(&spec), fingerprint(&generic));
    assert_eq!(spec.cycles, generic.cycles);
    let s = spec.spec.expect("specialized run reports SpecStats");
    assert!(s.cloned_segments > 0, "plan must clone the hot segment");
    assert!(s.guard_probes > 0, "misses at the specialized site probe");
    assert_eq!(s.guard_hits, 0, "no probe carried the dominant value");
    assert_eq!(s.deopts, s.guard_probes, "exactly one fallback per probe");
    // No specialized-keyed entry leaked into the tables: a follow-up
    // generic run probing the dominant value must behave identically on
    // the specialized run's tables and on the generic run's tables —
    // both miss the baked key first, then record and reuse it.
    let dom_probe: Vec<i64> = vec![dom; 8];
    let after_spec = run_one(
        &memo,
        &dom_probe,
        spec.tables.clone(),
        Engine::Bytecode,
        None,
    )
    .expect("warm");
    let after_generic = run_one(
        &memo,
        &dom_probe,
        generic.tables.clone(),
        Engine::Bytecode,
        None,
    )
    .expect("warm");
    assert_eq!(fingerprint(&after_spec), fingerprint(&after_generic));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_agree_on_random_programs(
        body in arb_body_expr(),
        iters in 4u8..24,
        modulus in 17u32..50_000,
        distinct in 3i64..120,
        n in 300usize..1_500,
    ) {
        let src = program_with(&body, iters, modulus, None);
        let input: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                min_exec: 8,
                engine: Engine::Specialized,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        assert_engines_agree(&outcome, &input);
    }

    #[test]
    fn deopt_equals_generic(
        body in arb_body_expr(),
        iters in 4u8..16,
        modulus in 17u32..10_000,
        dom in 1i64..40,
        distinct in 3i64..40,
        n in 200usize..800,
    ) {
        // Profile with a dominant operand so the plan bakes `dom`, then
        // run on values that never carry it: every guard evaluation
        // fails mid-run, and the specialized observables must equal a
        // from-scratch generic bytecode run bit for bit.
        let src = program_with(&body, iters, modulus, None);
        let profile = dominant_input(dom, distinct, n);
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: profile,
                min_exec: 8,
                engine: Engine::Specialized,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let plan = outcome.spec_plan.clone().map(Arc::new);
        let memo = vm::lower(&outcome.transformed);
        let probe: Vec<i64> =
            (0..n).map(|i| dom + 1 + (i as i64 * 7) % distinct).collect();
        let spec = run_one(
            &memo, &probe, outcome.make_tables(), Engine::Specialized, plan,
        )
        .expect("specialized run");
        let generic = run_one(
            &memo, &probe, outcome.make_tables(), Engine::Bytecode, None,
        )
        .expect("generic run");
        prop_assert_eq!(fingerprint(&spec), fingerprint(&generic));
        if let Some(s) = spec.spec {
            if s.cloned_segments > 0 {
                prop_assert_eq!(s.guard_hits, 0);
                prop_assert_eq!(s.deopts, s.guard_probes);
            }
        }
    }

    #[test]
    fn green_validated_equals_from_scratch(
        body in arb_body_expr(),
        iters in 4u8..16,
        modulus in 17u32..10_000,
        distinct in 3i64..60,
        n in 200usize..800,
        shift in 1i64..13,
    ) {
        // Cold run on input_a records dependency-fingerprinted entries;
        // the warm run on a perturbed input_b revalidates them. Whatever
        // mix of green hits and red recomputes results, the output must
        // equal a from-scratch baseline on input_b, and both engines
        // must agree on every observable (§8e/§8g).
        let src = dep_program_with(&body, iters, modulus);
        let input_a: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % distinct).collect();
        let input_b: Vec<i64> = (0..n).map(|i| (i as i64 * shift) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input_a.clone(),
                min_exec: 8,
                engine: Engine::Specialized,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let base = vm::lower(&outcome.baseline);
        let memo = vm::lower(&outcome.transformed);
        let base_b = run_one(&base, &input_b, vec![], Engine::Tree, None).expect("baseline");
        let chains: Vec<(vm::Outcome, vm::Outcome)> = ENGINES
            .iter()
            .map(|&e| run_chained(&memo, &outcome, &input_a, &input_b, e))
            .collect();
        let (tree_cold, tree_warm) = &chains[0];
        prop_assert_eq!(tree_warm.output_text(), base_b.output_text());
        prop_assert_eq!(tree_warm.ret, base_b.ret);
        for (cold, warm) in &chains[1..] {
            prop_assert_eq!(fingerprint(tree_cold), fingerprint(cold));
            prop_assert_eq!(fingerprint(tree_warm), fingerprint(warm));
        }
    }

    #[test]
    fn engines_trap_identically(
        body in arb_body_expr(),
        iters in 4u8..16,
        modulus in 17u32..10_000,
        distinct in 3i64..40,
        trap_at in 0usize..400,
    ) {
        // hot() divides by (x - 7); profiling avoids 7, the run input
        // injects it at a random position, so both engines must trap at
        // exactly the same point with exactly the same trap.
        let src = program_with(&body, iters, modulus, Some(7));
        let profile: Vec<i64> =
            (0..1_000).map(|i| 8 + (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: profile.clone(),
                min_exec: 8,
                engine: Engine::Specialized,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline (profile input is trap-free)");
        let mut run = profile;
        run.insert(trap_at.min(run.len()), 7); // div-by-zero here
        assert_engines_agree(&outcome, &run);
    }
}
