//! Property test: the tree-walking and bytecode engines produce identical
//! [`vm::Outcome`]s — output, return value, modelled cycles/energy, table
//! statistics — on randomized MiniC programs, including trap parity when
//! the program faults.

use compreuse::{run_pipeline, PipelineConfig};
use proptest::prelude::*;
use vm::{Engine, RunConfig};

/// A random arithmetic expression over `x`, `i`, and `acc`. With
/// `div_by` set, a division by `(x - div_by)` is injected so specific
/// inputs trap.
fn arb_body_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("i".to_string()),
        Just("acc".to_string()),
        (1i64..100).prop_map(|v| v.to_string()),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("^"),
                Just("&"),
                Just("|")
            ],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

fn program_with(body_expr: &str, iters: u8, modulus: u32, div_by: Option<i64>) -> String {
    let step = match div_by {
        Some(k) => format!("acc = (acc + {body_expr}) % {modulus} + x / (x - {k});"),
        None => format!("acc = (acc + {body_expr}) % {modulus};"),
    };
    format!(
        "
        int hot(int x) {{
            int acc = 1;
            for (int i = 0; i < {iters}; i++) {{
                {step}
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            int s = 0;
            while (!eof()) s = (s + hot(input())) & 1048575;
            print(s);
            return 0;
        }}"
    )
}

/// Everything an [`vm::Outcome`] observes, as a deterministic string.
fn fingerprint(o: &vm::Outcome) -> String {
    let stats: Vec<_> = o.tables.iter().map(|t| *t.stats()).collect();
    format!(
        "out={:?} ret={} cycles={} energy={} words={} calls={:?} loops={:?} branches={:?} \
         tables={stats:?}",
        o.output_text(),
        o.ret,
        o.cycles,
        o.energy_joules.to_bits(),
        o.table_words,
        o.func_calls,
        o.loop_counts,
        o.branch_counts,
    )
}

/// Runs `module` under one engine.
fn run_one(
    module: &vm::Module,
    input: &[i64],
    tables: Vec<memo_runtime::MemoTable>,
    engine: Engine,
) -> Result<vm::Outcome, vm::Trap> {
    vm::run(
        module,
        RunConfig {
            input: input.to_vec(),
            tables,
            engine,
            ..RunConfig::default()
        },
    )
}

/// Both engines on both program versions must agree bit-for-bit (or trap
/// identically).
fn assert_engines_agree(outcome: &compreuse::ReuseOutcome, input: &[i64]) {
    for module in [
        vm::lower(&outcome.baseline),
        vm::lower(&outcome.transformed),
    ] {
        let tree = run_one(&module, input, outcome.make_tables(), Engine::Tree);
        let bc = run_one(&module, input, outcome.make_tables(), Engine::Bytecode);
        match (tree, bc) {
            (Ok(a), Ok(b)) => assert_eq!(fingerprint(&a), fingerprint(&b)),
            (Err(a), Err(b)) => assert_eq!(a, b, "engines trapped differently"),
            (a, b) => panic!(
                "engines diverged: tree={:?} bytecode={:?}",
                a.map(|o| o.output_text()),
                b.map(|o| o.output_text())
            ),
        }
    }
}

/// Like [`program_with`] but with a 32-word global array the hot
/// function reads and the driver loop occasionally mutates: large enough
/// for §8g key reduction and written between `hot` calls, so `hot`'s
/// memo key drops the array and its entries carry *mutable* dependency
/// fingerprints — probes must validate them against the chunk epochs,
/// promoting still-valid entries green and forcing stale ones red.
fn dep_program_with(body_expr: &str, iters: u8, modulus: u32) -> String {
    format!(
        "
        int lut[32];
        int hot(int x) {{
            int acc = 1;
            for (int i = 0; i < {iters}; i++) {{
                acc = (acc + lut[(x + i) % 32] + {body_expr}) % {modulus};
                acc = acc < 0 ? -acc : acc;
            }}
            return acc;
        }}
        int main() {{
            for (int i = 0; i < 32; i++) lut[i] = i * 3 + 1;
            int s = 0;
            int t = 0;
            while (!eof()) {{
                s = (s + hot(input())) & 1048575;
                t = t + 1;
                if (t % 64 == 0) lut[t % 32] = lut[t % 32] + 1;
            }}
            print(s);
            return 0;
        }}"
    )
}

/// Chains two runs of `module` under one engine: a cold run on `input_a`
/// populating fresh tables, then a warm run on `input_b` reusing them —
/// the configuration where dependency validation promotes entries green.
fn run_chained(
    module: &vm::Module,
    outcome: &compreuse::ReuseOutcome,
    input_a: &[i64],
    input_b: &[i64],
    engine: Engine,
) -> (vm::Outcome, vm::Outcome) {
    let cold = run_one(module, input_a, outcome.make_tables(), engine).expect("cold run");
    let warm = run_one(module, input_b, cold.tables.clone(), engine).expect("warm run");
    (cold, warm)
}

/// A fixed instance of the dependency-keyed template, deterministic
/// enough to assert green hits actually happen: the warm run re-probes
/// keys recorded cold, the `lut` fingerprints still hold (main rebuilds
/// the array identically), so entries promote green — and the answers
/// must equal the from-scratch baseline bit for bit on both engines.
#[test]
fn green_promoted_warm_run_matches_from_scratch() {
    let src = dep_program_with("(x * 7 + i)", 12, 7919);
    let input_a: Vec<i64> = (0..600).map(|i| (i * 13) % 40).collect();
    // Perturbed rerun: overlapping key set, shifted mix.
    let input_b: Vec<i64> = (0..600).map(|i| (i * 11) % 40).collect();
    let program = minic::parse(&src).expect("template parses");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: input_a.clone(),
            min_exec: 8,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    assert!(
        outcome.table_deps.iter().flatten().any(|&fpw| fpw > 0),
        "template should plan at least one dependency-keyed segment"
    );
    let base = vm::lower(&outcome.baseline);
    let memo = vm::lower(&outcome.transformed);
    let base_b = run_one(&base, &input_b, vec![], Engine::Tree).expect("baseline");
    let (tree_cold, tree_warm) = run_chained(&memo, &outcome, &input_a, &input_b, Engine::Tree);
    let (bc_cold, bc_warm) = run_chained(&memo, &outcome, &input_a, &input_b, Engine::Bytecode);
    // §8e: the warm, green-promoted run computes the from-scratch answer.
    assert_eq!(tree_warm.output_text(), base_b.output_text());
    assert_eq!(tree_warm.ret, base_b.ret);
    // Engine parity holds for the whole chain, green stats included.
    assert_eq!(fingerprint(&tree_cold), fingerprint(&bc_cold));
    assert_eq!(fingerprint(&tree_warm), fingerprint(&bc_warm));
    let green: u64 = tree_warm.tables.iter().map(|t| t.stats().green_hits).sum();
    assert!(green > 0, "warm run promoted no entries green");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_agree_on_random_programs(
        body in arb_body_expr(),
        iters in 4u8..24,
        modulus in 17u32..50_000,
        distinct in 3i64..120,
        n in 300usize..1_500,
    ) {
        let src = program_with(&body, iters, modulus, None);
        let input: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        assert_engines_agree(&outcome, &input);
    }

    #[test]
    fn green_validated_equals_from_scratch(
        body in arb_body_expr(),
        iters in 4u8..16,
        modulus in 17u32..10_000,
        distinct in 3i64..60,
        n in 200usize..800,
        shift in 1i64..13,
    ) {
        // Cold run on input_a records dependency-fingerprinted entries;
        // the warm run on a perturbed input_b revalidates them. Whatever
        // mix of green hits and red recomputes results, the output must
        // equal a from-scratch baseline on input_b, and both engines
        // must agree on every observable (§8e/§8g).
        let src = dep_program_with(&body, iters, modulus);
        let input_a: Vec<i64> = (0..n).map(|i| (i as i64 * 13) % distinct).collect();
        let input_b: Vec<i64> = (0..n).map(|i| (i as i64 * shift) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input_a.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let base = vm::lower(&outcome.baseline);
        let memo = vm::lower(&outcome.transformed);
        let base_b = run_one(&base, &input_b, vec![], Engine::Tree).expect("baseline");
        let (tree_cold, tree_warm) =
            run_chained(&memo, &outcome, &input_a, &input_b, Engine::Tree);
        let (bc_cold, bc_warm) =
            run_chained(&memo, &outcome, &input_a, &input_b, Engine::Bytecode);
        prop_assert_eq!(tree_warm.output_text(), base_b.output_text());
        prop_assert_eq!(tree_warm.ret, base_b.ret);
        prop_assert_eq!(fingerprint(&tree_cold), fingerprint(&bc_cold));
        prop_assert_eq!(fingerprint(&tree_warm), fingerprint(&bc_warm));
    }

    #[test]
    fn engines_trap_identically(
        body in arb_body_expr(),
        iters in 4u8..16,
        modulus in 17u32..10_000,
        distinct in 3i64..40,
        trap_at in 0usize..400,
    ) {
        // hot() divides by (x - 7); profiling avoids 7, the run input
        // injects it at a random position, so both engines must trap at
        // exactly the same point with exactly the same trap.
        let src = program_with(&body, iters, modulus, Some(7));
        let profile: Vec<i64> =
            (0..1_000).map(|i| 8 + (i as i64 * 13) % distinct).collect();
        let program = minic::parse(&src).expect("template parses");
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: profile.clone(),
                min_exec: 8,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline (profile input is trap-free)");
        let mut run = profile;
        run.insert(trap_at.min(run.len()), 7); // div-by-zero here
        assert_engines_agree(&outcome, &run);
    }
}
