//! Quickstart: memoize the paper's `quan` example end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Takes the paper's Figure 4 program (the *original* three-argument
//! `quan`), runs the full pipeline — specialization, profiling,
//! cost-benefit, transformation — and executes both versions, printing the
//! decision log, the `check_hash`-style transformed source, and the
//! speedup.

use compreuse::{run_pipeline, PipelineConfig};
use vm::RunConfig;

const SOURCE: &str = "
    int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128,
                      256, 512, 1024, 2048, 4096, 8192, 16384};

    int quan(int val, int *table, int size) {
        int i;
        for (i = 0; i < size; i++)
            if (val < table[i])
                break;
        return (i);
    }

    int main() {
        int s = 0;
        while (!eof()) {
            int sample = input();
            s = (s + quan(sample, power2, 15)) & 1048575;
        }
        print(s);
        return 0;
    }";

fn main() {
    // A value-local input stream: 60k samples drawn from ~900 values.
    let input: Vec<i64> = (0..60_000).map(|i| (i * 7919) % 900 * 18).collect();

    println!("== running the computation-reuse pipeline ==");
    let program = minic::parse(SOURCE).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: input.clone(),
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");

    for s in &outcome.report.specializations {
        println!(
            "specialized {} -> {} (bound: {})",
            s.original,
            s.specialized,
            s.bound_params.join(", ")
        );
    }
    for d in &outcome.report.decisions {
        println!(
            "segment {:<18} N={:<7} DIP={:<6} R={:.1}% C={:.0}cyc O={:.0}cyc gain={:.0} -> {}",
            d.name,
            d.n,
            d.dip,
            d.reuse_rate * 100.0,
            d.measured_c,
            d.overhead_o,
            d.gain,
            if d.chosen { "TRANSFORM" } else { "skip" }
        );
    }

    println!("\n== transformed source (paper Fig. 2(b) style) ==");
    let text = minic::pretty::print_program(&outcome.transformed.program);
    for line in text.lines().filter(|l| !l.trim().is_empty()).take(30) {
        println!("{line}");
    }

    println!("\n== executing both versions ==");
    let base = vm::run(
        &vm::lower(&outcome.baseline),
        RunConfig {
            input: input.clone(),
            ..RunConfig::default()
        },
    )
    .expect("baseline");
    let memo = vm::run(
        &vm::lower(&outcome.transformed),
        RunConfig {
            input,
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    )
    .expect("memoized");

    assert_eq!(
        base.output_text(),
        memo.output_text(),
        "semantics preserved"
    );
    let stats = memo.tables[0].stats();
    println!("output (both versions): {}", base.output_text());
    println!(
        "original:  {:>12} cycles ({:.4} modelled seconds)",
        base.cycles, base.seconds
    );
    println!(
        "memoized:  {:>12} cycles ({:.4} modelled seconds)",
        memo.cycles, memo.seconds
    );
    println!(
        "table:     {} accesses, {:.1}% hits, {} bytes",
        stats.accesses,
        stats.hit_ratio() * 100.0,
        memo.tables[0].bytes()
    );
    println!("speedup:   {:.2}x", base.seconds / memo.seconds);
}
