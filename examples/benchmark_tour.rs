//! Benchmark tour: run any of the paper's workloads end to end.
//!
//! ```sh
//! cargo run --release --example benchmark_tour -- UNEPIC 0.2
//! cargo run --release --example benchmark_tour -- GNUGO
//! cargo run --release --example benchmark_tour          # all seven
//! ```
//!
//! For each selected workload: runs the pipeline (profiling on the default
//! inputs), prints its Table-3-style factor row next to the paper's
//! published numbers, then executes baseline and transformed programs
//! under both O0 and O3 cost models.

use compreuse::{run_pipeline, PipelineConfig};
use vm::{CostModel, OptLevel, RunConfig};
use workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let selected: Vec<Workload> = match args.first() {
        Some(name) => vec![workloads::by_name(name).unwrap_or_else(|| {
            panic!("unknown workload {name}; try G721_encode, MPEG2_decode, RASTA, UNEPIC, GNUGO")
        })],
        None => workloads::main_seven(),
    };

    for w in selected {
        tour(&w, scale);
    }
}

fn tour(w: &Workload, scale: f64) {
    println!(
        "\n=== {} (hot: {}; {} source lines) ===",
        w.name,
        w.hot_functions,
        w.code_lines()
    );
    let input = (w.default_input)(scale);
    let program = minic::parse(&w.source).expect("workload parses");

    for opt in [OptLevel::O0, OptLevel::O3] {
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                cost: CostModel::for_level(opt),
                profile_input: input.clone(),
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");

        let r = &outcome.report;
        println!(
            "[{opt}] segments: {} analyzed, {} profiled, {} transformed ({} merged tables, {} table bytes)",
            r.analyzed, r.profiled, r.transformed, r.merged_tables, r.total_table_bytes
        );
        if let Some(d) = r.decisions.iter().filter(|d| d.chosen).max_by(|a, b| {
            (a.gain * a.n as f64)
                .partial_cmp(&(b.gain * b.n as f64))
                .expect("finite")
        }) {
            println!(
                "[{opt}] dominant segment {}: N={} DIP={} R={:.1}% key={}w out={}w",
                d.name,
                d.n,
                d.dip,
                d.reuse_rate * 100.0,
                d.key_words,
                d.out_words
            );
            if let Some(t3) = w.paper.table3 {
                println!(
                    "[{opt}] paper reports: DIP={} R={:.1}% table {}",
                    t3.dip, t3.reuse_pct, t3.table_size
                );
            }
        }

        let cost = CostModel::for_level(opt);
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                cost: cost.clone(),
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .expect("baseline run");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                cost,
                input: input.clone(),
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized run");
        assert_eq!(
            base.output_text(),
            memo.output_text(),
            "semantics preserved"
        );
        let paper_speedup = match opt {
            OptLevel::O0 => w.paper.speedup_o0,
            OptLevel::O3 => w.paper.speedup_o3,
        };
        println!(
            "[{opt}] {:.3}s -> {:.3}s  speedup {:.2}x (paper {:.2}x)  energy {:.2}J -> {:.2}J (saving {:.1}%)",
            base.seconds,
            memo.seconds,
            base.seconds / memo.seconds,
            paper_speedup,
            base.energy_joules,
            memo.energy_joules,
            (1.0 - memo.energy_joules / base.energy_joules) * 100.0
        );
    }
}
