//! Warm starts from a store snapshot (DESIGN.md §8i).
//!
//! ```sh
//! cargo run --release --example warm_start
//! ```
//!
//! A freshly started reuse service pays the cold-store tax: its first
//! requests all miss and execute in full. This example serves a batch to
//! warm the shared stores, snapshots them to disk, simulates a restart
//! by resetting the service to empty stores, restores from the snapshot,
//! and serves the batch again — printing the hit ratio of the *first
//! decile* (the first 10% of requests) for the cold, warm, and restored
//! runs. The restored service resumes at the warm ratio immediately;
//! every answer is checked against the sequential baseline, so the
//! shortcut is provably behavior-preserving. A deliberately corrupted
//! snapshot at the end shows the failure mode: a clean cold start, never
//! a panic.

use bench::serve::{build_service, run_deciles, ServeOpts};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let ws = vec![
        workloads::by_name("UNEPIC").expect("workload"),
        workloads::by_name("RASTA").expect("workload"),
    ];
    let opts = ServeOpts {
        scale,
        requests_per_workload: 10,
        ..ServeOpts::default()
    };
    println!("preparing {} workloads at scale {scale}...", ws.len());
    let (mut svc, requests) = build_service(&ws, &opts, 2);
    let baseline = svc.run_private_sequential(&requests).fingerprints();

    let cold = run_deciles(&svc, &requests);
    let warm = run_deciles(&svc, &requests);

    let path =
        std::env::temp_dir().join(format!("compreuse-warm-start-{}.snap", std::process::id()));
    svc.snapshot_to(&path).expect("snapshot writes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("snapshot: {} ({bytes} bytes)", path.display());

    // "Restart": drop every store back to empty, then restore.
    svc.reset_stores().expect("reset");
    assert!(svc.restore_from(&path).is_restored(), "snapshot restores");
    let restored = run_deciles(&svc, &requests);

    for (run, label) in [(&cold, "cold"), (&warm, "warm"), (&restored, "restored")] {
        assert_eq!(run.fingerprints, baseline, "{label} answers match baseline");
        println!(
            "{label:>8}: first decile {:.4}   overall {:.4}",
            run.first_decile(),
            run.overall()
        );
    }
    println!(
        "warm start recovers {:+.4} first-decile hit ratio over cold",
        restored.first_decile() - cold.first_decile()
    );

    // Failure mode: flip one byte mid-file and restore again. The
    // service refuses the snapshot and cold-starts — still correct,
    // just slower for the first decile.
    let mut raw = std::fs::read(&path).expect("read snapshot");
    let mid = raw.len() / 2;
    raw[mid] ^= 0x01;
    std::fs::write(&path, &raw).expect("rewrite");
    svc.reset_stores().expect("reset");
    let outcome = svc.restore_from(&path);
    assert!(!outcome.is_restored(), "corrupt snapshot must be refused");
    println!("corrupt snapshot -> {outcome:?} (clean cold start)");
    let after = svc.run(&requests);
    assert_eq!(after.fingerprints(), baseline, "cold answers still match");
    let _ = std::fs::remove_file(&path);
}
