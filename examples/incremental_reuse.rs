//! Incremental reuse: a perturbed rerun hitting green entries.
//!
//! ```sh
//! cargo run --release --example incremental_reuse
//! ```
//!
//! A scoring function reads a 64-word board; the driver occasionally
//! places a stone between calls. Exact matching would put the whole
//! board in the memo key, so every placement retires *all* stored
//! entries. The dependency planner (DESIGN.md §8g) instead keys the
//! segment on its scalar argument and records a fingerprint of the
//! board chunks each entry actually read; probes revalidate it against
//! the VM's content-chained chunk epochs. This example runs a cold
//! pass, then a perturbed warm pass over the same table, and shows the
//! warm probes splitting into green promotions (board region untouched
//! since recording) and stale reds (a placement landed in a chunk the
//! entry read) — with the answers bit-identical to recomputing from
//! scratch either way.

use compreuse::{run_pipeline, PipelineConfig};
use vm::RunConfig;

const SOURCE: &str = "
    int board[64];

    int score(int pos) {
        int acc = 0;
        for (int i = 0; i < 8; i++)
            acc = acc * 31 + board[(pos + i * 3) % 64];
        return acc < 0 ? -acc : acc;
    }

    int main() {
        for (int i = 0; i < 64; i++) board[i] = (i * 37) % 5;
        int s = 0;
        int t = 0;
        while (!eof()) {
            s = (s + score(input())) & 1048575;
            t = t + 1;
            if (t % 96 == 0) board[(t * 7) % 64] = (t / 96) % 5;
        }
        print(s);
        return 0;
    }";

fn totals(o: &vm::Outcome) -> (u64, u64, u64, u64) {
    o.tables.iter().fold((0, 0, 0, 0), |t, tab| {
        let s = tab.stats();
        (
            t.0 + s.accesses,
            t.1 + s.hits,
            t.2 + s.green_hits,
            t.3 + s.stale_reds,
        )
    })
}

/// Prints one pass's probe breakdown. `prev` subtracts the accumulated
/// counters of the pass the table was inherited from.
fn stats_line(label: &str, o: &vm::Outcome, prev: Option<&vm::Outcome>) {
    let (mut acc, mut hits, mut green, mut stale) = totals(o);
    if let Some(p) = prev {
        let (a, h, g, s) = totals(p);
        acc -= a;
        hits -= h;
        green -= g;
        stale -= s;
    }
    println!(
        "{label:<6} {acc:>5} probes: {hits:>5} hits ({green} promoted green), \
         {stale} stale red, {} cold red",
        acc - hits - stale
    );
}

fn main() {
    // 1 200 positions from a 48-value pool; the perturbed rerun draws the
    // same pool in a different order, so warm probes re-find cold keys.
    let cold_input: Vec<i64> = (0..1_200).map(|i| (i * 13) % 48).collect();
    let warm_input: Vec<i64> = (0..1_200).map(|i| (i * 29) % 48).collect();

    println!("== planning with dependency validation (DESIGN.md 8g) ==");
    let program = minic::parse(SOURCE).expect("parse");
    let outcome = run_pipeline(
        &program,
        &PipelineConfig {
            profile_input: cold_input.clone(),
            min_exec: 8,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline");
    for d in outcome.report.decisions.iter().filter(|d| d.chosen) {
        println!(
            "segment {:<12} key={}w fp={}w green={} (board moved out of the key)",
            d.name, d.key_words, d.fp_words, d.green
        );
    }
    for e in &outcome.report.dep_edges {
        println!(
            "dep edge: {} <-> {} share region {} (mutable={})",
            e.a, e.b, e.region, e.mutable
        );
    }

    let memo = vm::lower(&outcome.transformed);
    let base = vm::lower(&outcome.baseline);

    println!("\n== cold pass, then a perturbed warm pass over the same table ==");
    let cold = vm::run(
        &memo,
        RunConfig {
            input: cold_input,
            tables: outcome.make_tables(),
            ..RunConfig::default()
        },
    )
    .expect("cold run");
    let warm = vm::run(
        &memo,
        RunConfig {
            input: warm_input.clone(),
            tables: cold.tables.clone(),
            ..RunConfig::default()
        },
    )
    .expect("warm run");
    stats_line("cold", &cold, None);
    stats_line("warm", &warm, Some(&cold));

    // §8e/§8g: a green-promoted run computes the from-scratch answer.
    let scratch = vm::run(
        &base,
        RunConfig {
            input: warm_input,
            ..RunConfig::default()
        },
    )
    .expect("baseline");
    assert_eq!(warm.output_text(), scratch.output_text());
    assert_eq!(warm.ret, scratch.ret);
    println!(
        "\nwarm output {} == from-scratch baseline {}  (validation never \
         changes an answer)",
        warm.output_text().trim(),
        scratch.output_text().trim()
    );
    let green: u64 = warm.tables.iter().map(|t| t.stats().green_hits).sum();
    assert!(green > 0, "expected green promotions on the warm pass");
}
