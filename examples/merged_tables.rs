//! Merged hash tables (paper §2.5), on the GNU Go workload.
//!
//! ```sh
//! cargo run --release --example merged_tables
//! ```
//!
//! GNU Go's eight `accumulate_influence` segments share their four input
//! variables; the paper merges their tables into one (Table 2's layout)
//! because eight separate tables exhausted the iPAQ's 32 MB. This example
//! runs the pipeline twice — merging on and off — and compares memory,
//! speedup, and per-slot hit statistics.

use compreuse::{run_pipeline, PipelineConfig};
use vm::RunConfig;

fn main() {
    let w = workloads::gnugo::gnugo();
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let input = (w.default_input)(scale);
    let program = minic::parse(&w.source).expect("workload parses");

    let mut results = Vec::new();
    for merging in [true, false] {
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                enable_merging: merging,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .expect("baseline");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input: input.clone(),
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        assert_eq!(base.output_text(), memo.output_text());
        results.push((merging, outcome, base, memo));
    }

    for (merging, outcome, base, memo) in &results {
        let label = if *merging { "MERGED  " } else { "UNMERGED" };
        println!(
            "{label}: {} tables, {:>9} bytes, speedup {:.2}x",
            outcome.specs.len(),
            outcome.report.total_table_bytes,
            base.seconds / memo.seconds
        );
        if *merging {
            if let Some(t) = memo.tables[0].as_merged() {
                println!(
                    "          one table, {} segments share each key; vs separate tables: {} -> {} bytes",
                    t.segment_count(),
                    t.unmerged_bytes(),
                    t.bytes()
                );
                for slot in 0..t.segment_count() {
                    let s = t.slot_stats(slot);
                    println!(
                        "          slot {slot}: {:>8} accesses, {:>5.1}% hits",
                        s.accesses,
                        s.hit_ratio() * 100.0
                    );
                }
            }
        }
    }

    let saved =
        results[1].1.report.total_table_bytes as f64 / results[0].1.report.total_table_bytes as f64;
    println!("\nmerging shrinks table memory by {saved:.2}x on this workload —");
    println!("the paper's fix for the iPAQ running out of memory on GNU Go.");
}
