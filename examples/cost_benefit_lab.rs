//! Cost-benefit lab: watch formula 3 flip as the input's reuse rate moves.
//!
//! ```sh
//! cargo run --release --example cost_benefit_lab
//! ```
//!
//! The same program — a moderately expensive `transform(x)` — is profiled
//! against input streams of decreasing value locality. The pipeline keeps
//! transforming it while `R > O/C` (paper formula 3) and stops once the
//! repetition no longer pays for the hashing overhead; this example prints
//! the whole decision curve, including the measured break-even point.

use compreuse::{run_pipeline, CostBenefit, PipelineConfig};
use vm::RunConfig;

const SOURCE: &str = "
    int transform(int x) {
        int acc = x;
        for (int k = 0; k < 24; k++) {
            acc = acc + ((x + k) * (k | 3)) % 1009;
            acc = acc & 1048575;
        }
        return acc;
    }
    int main() {
        int s = 0;
        while (!eof()) {
            s = (s + transform(input())) & 1048575;
        }
        print(s);
        return 0;
    }";

/// Builds a stream of `n` values drawn from `distinct` values.
fn stream(n: usize, distinct: i64) -> Vec<i64> {
    (0..n)
        .map(|i| (i as i64 * 2654435761 % distinct) * 3 + 1)
        .collect()
}

fn main() {
    let program = minic::parse(SOURCE).expect("parse");
    let n = 40_000usize;

    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "distinct", "R", "O/C", "gain/exec", "decision", "speedup", "tbl bytes", "hit%"
    );
    for distinct in [50i64, 400, 2_000, 8_000, 16_000, 24_000, 32_000, 40_000] {
        let input = stream(n, distinct);
        let outcome = run_pipeline(
            &program,
            &PipelineConfig {
                profile_input: input.clone(),
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let d = outcome
            .report
            .decisions
            .iter()
            .find(|d| d.name == "transform:body")
            .expect("profiled");
        // Re-derive the formula-3 numbers to show the algebra.
        let cb = CostBenefit::new(d.measured_c, d.overhead_o, d.effective_rate);
        debug_assert_eq!(cb.profitable(), d.profitable);

        let base = vm::run(
            &vm::lower(&outcome.baseline),
            RunConfig {
                input: input.clone(),
                ..RunConfig::default()
            },
        )
        .expect("baseline");
        let memo = vm::run(
            &vm::lower(&outcome.transformed),
            RunConfig {
                input,
                tables: outcome.make_tables(),
                ..RunConfig::default()
            },
        )
        .expect("memoized");
        assert_eq!(base.output_text(), memo.output_text());

        let (bytes, hit) = memo
            .tables
            .first()
            .map(|t| (t.bytes(), t.stats().hit_ratio() * 100.0))
            .unwrap_or((0, 0.0));
        println!(
            "{:<10} {:>7.1}% {:>8.3} {:>9.1} {:>9} {:>8.2}x {:>10} {:>7.1}%",
            distinct,
            d.reuse_rate * 100.0,
            d.overhead_o / d.measured_c,
            d.gain,
            if d.chosen { "REUSE" } else { "leave" },
            base.seconds / memo.seconds,
            bytes,
            hit,
        );
    }
    println!("\nformula 3: transform iff R > O/C — the flip happens exactly where the two columns cross.");
}
